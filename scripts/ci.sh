#!/usr/bin/env bash
# One-command CI: lint, autograd contract check, tier-1 tests,
# smoke-scale suite + benches, bench gate.
#
#   scripts/ci.sh            # full pipeline (writes fresh benches to a tmp dir)
#   SKIP_BENCH=1 scripts/ci.sh   # lint + tests only (no bench regeneration)
#
# The bench stage regenerates BENCH_*.json at smoke scale — the same
# scale the committed baselines in benchmarks/baselines/ were recorded
# at — and gates the fresh numbers with `repro report bench`.

set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH=src

echo "==> repro lint"
python -m repro lint

echo "==> repro check (autograd contracts)"
python -m repro check

echo "==> tier-1 tests (default scale)"
python -m pytest -x -q

echo "==> test suite at smoke scale"
REPRO_SCALE=smoke python -m pytest -x -q

if [[ "${SKIP_BENCH:-0}" != "1" ]]; then
    BENCH_DIR="$(mktemp -d)"
    trap 'rm -rf "$BENCH_DIR"' EXIT
    echo "==> smoke-scale benchmarks -> $BENCH_DIR"
    REPRO_SCALE=smoke REPRO_BENCH_DIR="$BENCH_DIR" \
        python -m pytest benchmarks/ --benchmark-only --benchmark-disable-gc -q

    echo "==> bench regression gate"
    python -m repro report bench --bench-dir "$BENCH_DIR"

    # Publish the fresh payloads to the repo root so the bench
    # trajectory (wall-clock + kernel byte counters) is tracked across
    # PRs, not just inside the throwaway tmp dir.
    echo "==> publishing fresh BENCH_*.json to repo root"
    cp "$BENCH_DIR"/BENCH_*.json .
fi

echo "CI OK"
