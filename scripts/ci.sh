#!/usr/bin/env bash
# One-command CI: lint, autograd contract check, tier-1 tests,
# smoke-scale suite + benches, bench gate.
#
#   scripts/ci.sh            # full pipeline (writes fresh benches to a tmp dir)
#   SKIP_BENCH=1 scripts/ci.sh   # lint + tests only (no bench regeneration)
#
# The bench stage regenerates BENCH_*.json at smoke scale — the same
# scale the committed baselines in benchmarks/baselines/ were recorded
# at — and gates the fresh numbers with `repro report bench`.

set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH=src

# Every CLI entry point below appends a provenance manifest to the
# (gitignored) live run ledger; count the store up front so the ledger
# stage at the bottom can assert this CI run actually left a trail.
LEDGER=benchmarks/history/runs.jsonl
LEDGER_BEFORE=0
[[ -f "$LEDGER" ]] && LEDGER_BEFORE="$(wc -l < "$LEDGER")"

echo "==> repro lint"
python -m repro lint

echo "==> repro check (autograd contracts)"
python -m repro check

echo "==> tier-1 tests (default scale)"
python -m pytest -x -q

echo "==> test suite at smoke scale"
REPRO_SCALE=smoke python -m pytest -x -q

# Parallel orchestrator smoke through the CLI: the same sweep runs
# in-process and on two spawned workers, and the digest line — a
# SHA-256 over every seed-derived output — must match exactly. This is
# the bit-identical-merge contract (DESIGN.md section 12) checked end
# to end, CLI included, on every CI run.
echo "==> parallel sweep smoke (repro sweep --workers 2)"
SWEEP_SEQ="$(REPRO_SCALE=smoke python -m repro sweep cora --methods sane random --workers 0)"
SWEEP_PAR="$(REPRO_SCALE=smoke python -m repro sweep cora --methods sane random --workers 2)"
echo "$SWEEP_PAR"
DIGEST_SEQ="$(grep '^digest:' <<<"$SWEEP_SEQ")"
DIGEST_PAR="$(grep '^digest:' <<<"$SWEEP_PAR")"
[[ "$DIGEST_SEQ" == "$DIGEST_PAR" ]] || {
    echo "sweep digest mismatch: sequential=$DIGEST_SEQ workers-2=$DIGEST_PAR" >&2
    exit 1
}

if [[ "${SKIP_BENCH:-0}" != "1" ]]; then
    BENCH_DIR="$(mktemp -d)"
    trap 'rm -rf "$BENCH_DIR"' EXIT
    echo "==> smoke-scale benchmarks -> $BENCH_DIR"
    REPRO_SCALE=smoke REPRO_BENCH_DIR="$BENCH_DIR" \
        python -m pytest benchmarks/ --benchmark-only --benchmark-disable-gc -q

    echo "==> bench regression gate"
    python -m repro report bench --bench-dir "$BENCH_DIR"

    # End-to-end serving path through the CLI (not the pytest bench):
    # export an artifact, serve it with the load generator, and gate
    # the emitted payload against its committed smoke baseline. The
    # bench is named serve_cli because it serves a different model (a
    # GAT baseline — trains fast, still exercises both scatter kernel
    # families) than the pytest bench's fixed genotype, so the two
    # payloads gate against separate baselines. The serve_cli baseline
    # lives in baselines/cli/ so the directory-scan gate above (which
    # treats a committed baseline with no fresh payload as a
    # regression) only pairs against pytest-emitted benches. Own temp
    # dir so the pytest bench output above is not clobbered.
    SERVE_DIR="$(mktemp -d)"
    trap 'rm -rf "$BENCH_DIR" "$SERVE_DIR"' EXIT
    echo "==> serve smoke (repro export + repro serve --bench) -> $SERVE_DIR"
    REPRO_SCALE=smoke python -m repro export baseline gat cora \
        --out "$SERVE_DIR/artifact.json"
    # 256 requests/level so p99 is the 3rd-largest sample instead of
    # the max; the looser time tolerance reflects that sub-millisecond
    # smoke latencies still jitter far more than long-running benches.
    # The run also exercises the live-telemetry surfaces end to end:
    # a request trace, an ephemeral /metrics scrape endpoint (port
    # printed on stdout, server lingers until our scrape lands), and
    # the offline `report serve` dashboard over the recorded trace.
    REPRO_SCALE=smoke REPRO_BENCH_DIR="$SERVE_DIR" \
        python -u -m repro serve "$SERVE_DIR/artifact.json" --bench \
        --bench-name serve_cli --requests 256 \
        --trace "$SERVE_DIR/serve-trace.jsonl" \
        --export-port 0 --export-linger 60 \
        > "$SERVE_DIR/serve-stdout.txt" &
    SERVE_PID=$!
    # Scrape only after the sweep is done ("bench:" printed): the
    # per-stage gauges are published by finalize(), and --export-linger
    # keeps the endpoint up until our scrape lands.
    for _ in $(seq 1 300); do
        grep -q '^bench:' "$SERVE_DIR/serve-stdout.txt" 2>/dev/null && break
        kill -0 "$SERVE_PID" 2>/dev/null || break
        sleep 1
    done
    EXPORT_URL="$(sed -n 's/^exporter:  //p' "$SERVE_DIR/serve-stdout.txt")"
    [[ -n "$EXPORT_URL" ]] || { echo "serve --export-port printed no exporter URL" >&2; cat "$SERVE_DIR/serve-stdout.txt"; exit 1; }
    echo "==> scraping $EXPORT_URL"
    curl --silent --show-error --retry 10 --retry-delay 1 \
        --retry-connrefused "$EXPORT_URL" > "$SERVE_DIR/exposition.txt"
    wait "$SERVE_PID"
    cat "$SERVE_DIR/serve-stdout.txt"
    # The scrape must parse as text exposition and carry the per-stage
    # gauges plus the SLO counters.
    python - "$SERVE_DIR/exposition.txt" <<'PYEOF'
import sys
from repro.obs import parse_exposition
samples = parse_exposition(open(sys.argv[1], encoding="utf-8").read())
required = [
    "serve_stage_queue_wait_p99_s", "serve_stage_forward_p99_s",
    "serve_stage_resolve_p50_s", "serve_requests", "serve_errors",
    "serve_deadline_exceeded",
]
missing = [name for name in required if name not in samples]
assert not missing, f"scrape missing {missing}; got {sorted(samples)}"
print(f"exposition ok: {len(samples)} samples")
PYEOF
    echo "==> repro report serve"
    python -m repro report serve "$SERVE_DIR/serve-trace.jsonl" --top 3
    python -m repro report bench --baselines benchmarks/baselines/cli \
        --time-tolerance 1.5 "$SERVE_DIR/BENCH_serve_cli.json"

    # Publish the fresh payloads to the repo root so the bench
    # trajectory (wall-clock + kernel byte counters) is tracked across
    # PRs, not just inside the throwaway tmp dir.
    echo "==> publishing fresh BENCH_*.json to repo root"
    cp "$BENCH_DIR"/BENCH_*.json .
fi

# Run-ledger stage: the pipeline above must have left provenance
# manifests behind, and the committed seed history must still pass the
# cross-run trend gate (search epoch time, serve tail latency, kernel
# bandwidth). The gate runs even under SKIP_BENCH=1 — it reads the
# committed baseline, not this run's output.
echo "==> run ledger"
LEDGER_AFTER=0
[[ -f "$LEDGER" ]] && LEDGER_AFTER="$(wc -l < "$LEDGER")"
LEDGER_NEW=$((LEDGER_AFTER - LEDGER_BEFORE))
echo "ledger: $LEDGER_NEW new manifest(s) in $LEDGER"
# lint + check + two sweeps under SKIP_BENCH=1; the bench/export/serve
# stages push the full pipeline well past five.
LEDGER_MIN=5
[[ "${SKIP_BENCH:-0}" == "1" ]] && LEDGER_MIN=4
if [[ "$LEDGER_NEW" -lt "$LEDGER_MIN" ]]; then
    echo "run ledger gained only $LEDGER_NEW manifest(s); expected >= $LEDGER_MIN" >&2
    exit 1
fi
# The new tail must cover the entry points this script exercised.
python - "$LEDGER" "$LEDGER_NEW" <<'PYEOF'
import json
import os
import sys

lines = open(sys.argv[1], encoding="utf-8").read().splitlines()
tail = lines[-int(sys.argv[2]):]
commands = {json.loads(line)["command"] for line in tail}
expected = {"lint", "check", "sweep"}
if os.environ.get("SKIP_BENCH", "0") != "1":
    expected |= {"export", "serve", "bench"}
missing = expected - commands
assert not missing, f"ledger tail missing commands {sorted(missing)}; got {sorted(commands)}"
print(f"ledger commands ok: {sorted(commands)}")
PYEOF
python -m repro runs list --last 12

echo "==> run trend gate (committed seed history)"
python -m repro runs trend \
    search.epoch_ms serve.latency.p99_s kernel.scatter_sum.effective_gbps \
    --gate --history benchmarks/history/seed.jsonl

echo "CI OK"
