#!/usr/bin/env bash
# One-command CI: lint, autograd contract check, tier-1 tests,
# smoke-scale suite + benches, bench gate.
#
#   scripts/ci.sh            # full pipeline (writes fresh benches to a tmp dir)
#   SKIP_BENCH=1 scripts/ci.sh   # lint + tests only (no bench regeneration)
#
# The bench stage regenerates BENCH_*.json at smoke scale — the same
# scale the committed baselines in benchmarks/baselines/ were recorded
# at — and gates the fresh numbers with `repro report bench`.

set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH=src

echo "==> repro lint"
python -m repro lint

echo "==> repro check (autograd contracts)"
python -m repro check

echo "==> tier-1 tests (default scale)"
python -m pytest -x -q

echo "==> test suite at smoke scale"
REPRO_SCALE=smoke python -m pytest -x -q

if [[ "${SKIP_BENCH:-0}" != "1" ]]; then
    BENCH_DIR="$(mktemp -d)"
    trap 'rm -rf "$BENCH_DIR"' EXIT
    echo "==> smoke-scale benchmarks -> $BENCH_DIR"
    REPRO_SCALE=smoke REPRO_BENCH_DIR="$BENCH_DIR" \
        python -m pytest benchmarks/ --benchmark-only --benchmark-disable-gc -q

    echo "==> bench regression gate"
    python -m repro report bench --bench-dir "$BENCH_DIR"

    # End-to-end serving path through the CLI (not the pytest bench):
    # export an artifact, serve it with the load generator, and gate
    # the emitted payload against its committed smoke baseline. The
    # bench is named serve_cli because it serves a different model (a
    # GAT baseline — trains fast, still exercises both scatter kernel
    # families) than the pytest bench's fixed genotype, so the two
    # payloads gate against separate baselines. The serve_cli baseline
    # lives in baselines/cli/ so the directory-scan gate above (which
    # treats a committed baseline with no fresh payload as a
    # regression) only pairs against pytest-emitted benches. Own temp
    # dir so the pytest bench output above is not clobbered.
    SERVE_DIR="$(mktemp -d)"
    trap 'rm -rf "$BENCH_DIR" "$SERVE_DIR"' EXIT
    echo "==> serve smoke (repro export + repro serve --bench) -> $SERVE_DIR"
    REPRO_SCALE=smoke python -m repro export baseline gat cora \
        --out "$SERVE_DIR/artifact.json"
    # 256 requests/level so p99 is the 3rd-largest sample instead of
    # the max; the looser time tolerance reflects that sub-millisecond
    # smoke latencies still jitter far more than long-running benches.
    REPRO_SCALE=smoke REPRO_BENCH_DIR="$SERVE_DIR" \
        python -m repro serve "$SERVE_DIR/artifact.json" --bench \
        --bench-name serve_cli --requests 256
    python -m repro report bench --baselines benchmarks/baselines/cli \
        --time-tolerance 1.5 "$SERVE_DIR/BENCH_serve_cli.json"

    # Publish the fresh payloads to the repo root so the bench
    # trajectory (wall-clock + kernel byte counters) is tracked across
    # PRs, not just inside the throwaway tmp dir.
    echo "==> publishing fresh BENCH_*.json to repo root"
    cp "$BENCH_DIR"/BENCH_*.json .
fi

echo "CI OK"
