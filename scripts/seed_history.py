#!/usr/bin/env python3
"""Regenerate the committed CI seed history (benchmarks/history/seed.jsonl).

The trend gate in scripts/ci.sh needs history to compare a fresh run
against; a brand-new checkout has none. This script writes a small,
fully deterministic ledger — fake clock, synthetic git revisions,
hand-pinned metric values with realistic jitter — that stands in for
"the last six healthy CI runs". Regenerate only when the manifest
schema version changes:

    PYTHONPATH=src python scripts/seed_history.py
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.obs.runs import SEED_HISTORY_NAME, RunLedger, build_manifest  # noqa: E402

OUT = (
    pathlib.Path(__file__).resolve().parent.parent
    / "benchmarks" / "history" / SEED_HISTORY_NAME
)

# Six healthy runs' worth of pinned values (±~2% jitter around a flat
# baseline — the shape the gate must call "ok").
SEARCH_EPOCH_MS = [101.4, 98.7, 100.9, 99.2, 102.1, 100.3]
SEARCH_TEST_SCORE = [0.891, 0.888, 0.893, 0.890, 0.889, 0.892]
SERVE_P50_S = [0.00212, 0.00208, 0.00215, 0.00210, 0.00207, 0.00213]
SERVE_P99_S = [0.00391, 0.00402, 0.00396, 0.00388, 0.00405, 0.00394]
SERVE_RPS = [4550.0, 4620.0, 4480.0, 4590.0, 4640.0, 4530.0]
SCATTER_GBPS = [5.42, 5.51, 5.38, 5.47, 5.55, 5.44]

BASE_T = 1_754_000_000.0  # fixed epoch; one synthetic run per day


def _env(i: int) -> dict:
    return {
        "scale": "smoke",
        "seed": 0,
        "kernels": "fused",
        "workers": 0,
        # Synthetic revisions: each seed entry pretends to be a
        # different commit, so content-derived run ids differ.
        "git_rev": f"{0x5eed000000 + i:012x}",
        "python": "3.11.0",
    }


def main() -> int:
    OUT.parent.mkdir(parents=True, exist_ok=True)
    if OUT.exists():
        OUT.unlink()
    ledger = RunLedger(OUT)
    for i in range(6):
        clock = lambda i=i: BASE_T + i * 86_400.0
        ledger.append(
            build_manifest(
                "search",
                {"dataset": "cora", "layers": 3, "epsilon": 0.0,
                 "scale": "smoke"},
                env=_env(i),
                metrics={
                    "search.epoch_ms": SEARCH_EPOCH_MS[i],
                    "search.test_score": SEARCH_TEST_SCORE[i],
                },
                outputs={"ci_seed": i},
                clock=clock,
            )
        )
        ledger.append(
            build_manifest(
                "serve",
                {"bench": True, "bench_name": "serve_cli", "max_batch": 64,
                 "scale": "smoke"},
                env=_env(i),
                metrics={
                    "serve.latency.p50_s": SERVE_P50_S[i],
                    "serve.latency.p99_s": SERVE_P99_S[i],
                    "serve.rps": SERVE_RPS[i],
                },
                outputs={"ci_seed": i},
                clock=clock,
            )
        )
        ledger.append(
            build_manifest(
                "bench",
                {"name": "parallel_search", "scale": "smoke"},
                env=_env(i),
                metrics={
                    "kernel.scatter_sum.effective_gbps": SCATTER_GBPS[i],
                },
                outputs={"ci_seed": i},
                clock=clock,
            )
        )
    print(f"wrote {len(ledger.read())} manifests to {OUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
