"""Setup shim for environments without the wheel package.

Metadata lives in pyproject.toml; this file only enables
``python setup.py develop`` style installs offline.
"""

from setuptools import setup

setup()
