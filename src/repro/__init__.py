"""repro — a from-scratch reproduction of SANE (ICDE 2021).

"Search to Aggregate NEighborhood for Graph Neural Network"
(Zhao, Yao, Tu), rebuilt in pure numpy: autograd engine, GNN layer
library, the SANE differentiable search, trial-and-error NAS
baselines, synthetic benchmark datasets and the full experiment
harness for every table and figure of the paper.

Quickstart::

    from repro.core import SearchSpace, SaneSearcher, SearchConfig, retrain
    from repro.graph import load_dataset

    graph = load_dataset("cora")
    searcher = SaneSearcher(SearchSpace(num_layers=3), graph,
                            SearchConfig(epochs=40), seed=0)
    result = searcher.search()
    print(result.architecture)                 # the derived GNN
    print(retrain(result.architecture, graph)) # retrained from scratch
"""

__version__ = "1.0.0"

from repro import (
    autograd,
    core,
    experiments,
    gnn,
    graph,
    graphclf,
    kg,
    nas,
    nn,
    obs,
    train,
)

__all__ = [
    "autograd",
    "nn",
    "graph",
    "gnn",
    "core",
    "nas",
    "kg",
    "train",
    "experiments",
    "graphclf",
    "obs",
    "__version__",
]
