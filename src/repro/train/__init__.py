"""Training loops and evaluation metrics."""

from repro.train.trainer import (
    TrainConfig,
    TrainResult,
    fit,
    train_inductive,
    train_transductive,
)
from repro.train.metrics import accuracy, micro_f1, mean_std, format_mean_std

__all__ = [
    "TrainConfig",
    "TrainResult",
    "fit",
    "train_inductive",
    "train_transductive",
    "accuracy",
    "micro_f1",
    "mean_std",
    "format_mean_std",
]
