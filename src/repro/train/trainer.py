"""Training loops for transductive and inductive node classification.

The paper trains every model full-batch with Adam and early-stops on
validation performance before reporting test numbers; both loops here
follow that protocol. Losses: cross-entropy for single-label tasks,
sigmoid BCE for the multi-label inductive task (Section III-B "we
focus on the node classification task, thus cross-entropy loss is
used").
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import obs
from repro.autograd import functional as F
from repro.autograd import no_grad
from repro.obs import events, health
from repro.graph.data import Graph, MultiGraphDataset
from repro.gnn.common import GraphCache
from repro.nn.module import Module
from repro.nn.optim import Adam, clip_grad_norm
from repro.train.metrics import accuracy, micro_f1

__all__ = ["TrainConfig", "TrainResult", "train_transductive", "train_inductive", "fit"]


@dataclasses.dataclass
class TrainConfig:
    """Hyper-parameters of one training run.

    Defaults follow Appendix C: Adam, lr 5e-3, dropout is owned by the
    model, L2 norm 5e-4, with validation-based early stopping.
    """

    epochs: int = 200
    lr: float = 5e-3
    weight_decay: float = 5e-4
    patience: int = 30
    grad_clip: float = 5.0

    def replace(self, **updates) -> "TrainConfig":
        return dataclasses.replace(self, **updates)


@dataclasses.dataclass
class TrainResult:
    """Outcome of a run: scores at the best-validation epoch."""

    val_score: float
    test_score: float
    train_score: float
    best_epoch: int
    train_time: float
    history: list[tuple[float, float]] = dataclasses.field(default_factory=list)


def train_transductive(
    model: Module, graph: Graph, config: TrainConfig | None = None
) -> TrainResult:
    """Full-batch transductive training with early stopping.

    The model is left loaded with its best-validation weights so the
    caller can keep using it (e.g. Figure 2 renders the final model).
    """
    config = config or TrainConfig()
    cache = GraphCache(graph)
    optimizer = Adam(model.parameters(), lr=config.lr, weight_decay=config.weight_decay)
    labels = graph.labels
    train_mask = graph.mask("train")
    val_mask = graph.mask("val")
    test_mask = graph.mask("test")

    best = {"val": -1.0, "test": 0.0, "train": 0.0, "epoch": 0, "state": None}
    best_val_loss = np.inf
    history: list[tuple[float, float]] = []
    events.emit("train_start", mode="transductive", epochs=config.epochs)
    train_span = obs.span("train", kind="train", mode="transductive").start()
    monitor = health.get_monitor()
    since_best = 0
    for epoch in range(config.epochs):
        with obs.span("epoch", index=epoch):
            model.train()
            optimizer.zero_grad()
            weight_before = (
                [p.data.copy() for p in model.parameters()]
                if monitor is not None
                else None
            )
            with obs.span("forward"):
                logits = model(graph.features, cache)
                loss = F.cross_entropy(logits[train_mask], labels[train_mask])
            with obs.span("backward"):
                loss.backward()
            clip_grad_norm(model.parameters(), config.grad_clip)
            optimizer.step()
            if monitor is not None:
                monitor.observe_epoch(
                    epoch,
                    weight_params=model.parameters(),
                    weight_before=weight_before,
                )

            model.eval()
            with obs.span("eval"), no_grad():
                eval_logits_t = model(graph.features, cache)
                val_loss = F.cross_entropy(
                    eval_logits_t[val_mask], labels[val_mask]
                ).item()
            eval_logits = eval_logits_t.numpy()
            val_score = accuracy(eval_logits, labels, val_mask)
            history.append((loss.item(), val_score))
            events.emit(
                "train_epoch",
                epoch=epoch,
                train_loss=loss.item(),
                val_loss=val_loss,
                val_score=val_score,
            )
            # Tie-break equal scores by validation loss so early stopping is
            # not fooled by long plateaus (e.g. an all-negative start).
            improved = val_score > best["val"] or (
                val_score == best["val"] and val_loss < best_val_loss
            )
            if improved:
                best_val_loss = min(best_val_loss, val_loss)
                best.update(
                    val=val_score,
                    test=accuracy(eval_logits, labels, test_mask),
                    train=accuracy(eval_logits, labels, train_mask),
                    epoch=epoch,
                    state=model.state_dict(),
                )
                since_best = 0
            else:
                since_best += 1
                if since_best >= config.patience:
                    break

    if best["state"] is not None:
        model.load_state_dict(best["state"])
    train_span.finish()
    events.emit(
        "train_end",
        best_epoch=best["epoch"],
        val_score=best["val"],
        test_score=best["test"],
        epochs_run=len(history),
    )
    return TrainResult(
        val_score=best["val"],
        test_score=best["test"],
        train_score=best["train"],
        best_epoch=best["epoch"],
        train_time=train_span.duration,
        history=history,
    )


def train_inductive(
    model: Module, dataset: MultiGraphDataset, config: TrainConfig | None = None
) -> TrainResult:
    """Inductive training: optimise on training graphs, score unseen ones."""
    config = config or TrainConfig()
    optimizer = Adam(model.parameters(), lr=config.lr, weight_decay=config.weight_decay)
    caches = {id(g): GraphCache(g) for g in dataset.all_graphs}

    best = {"val": -1.0, "test": 0.0, "train": 0.0, "epoch": 0, "state": None}
    best_val_loss = np.inf
    history: list[tuple[float, float]] = []
    events.emit("train_start", mode="inductive", epochs=config.epochs)
    train_span = obs.span("train", kind="train", mode="inductive").start()
    monitor = health.get_monitor()
    since_best = 0
    for epoch in range(config.epochs):
        with obs.span("epoch", index=epoch):
            model.train()
            epoch_loss = 0.0
            weight_before = (
                [p.data.copy() for p in model.parameters()]
                if monitor is not None
                else None
            )
            for graph in dataset.train_graphs:
                optimizer.zero_grad()
                with obs.span("forward"):
                    logits = model(graph.features, caches[id(graph)])
                    loss = F.binary_cross_entropy_with_logits(
                        logits, graph.labels.astype(np.float64)
                    )
                with obs.span("backward"):
                    loss.backward()
                clip_grad_norm(model.parameters(), config.grad_clip)
                optimizer.step()
                epoch_loss += loss.item()
            if monitor is not None:
                monitor.observe_epoch(
                    epoch,
                    weight_params=model.parameters(),
                    weight_before=weight_before,
                )

            with obs.span("eval"):
                val_score, val_loss = _score_graphs(model, dataset.val_graphs, caches)
            history.append((epoch_loss / len(dataset.train_graphs), val_score))
            events.emit(
                "train_epoch",
                epoch=epoch,
                train_loss=epoch_loss / len(dataset.train_graphs),
                val_loss=val_loss,
                val_score=val_score,
            )
            improved = val_score > best["val"] or (
                val_score == best["val"] and val_loss < best_val_loss
            )
            if improved:
                best_val_loss = min(best_val_loss, val_loss)
                best.update(
                    val=val_score,
                    test=_score_graphs(model, dataset.test_graphs, caches)[0],
                    train=_score_graphs(model, dataset.train_graphs, caches)[0],
                    epoch=epoch,
                    state=model.state_dict(),
                )
                since_best = 0
            else:
                since_best += 1
                if since_best >= config.patience:
                    break

    if best["state"] is not None:
        model.load_state_dict(best["state"])
    train_span.finish()
    events.emit(
        "train_end",
        best_epoch=best["epoch"],
        val_score=best["val"],
        test_score=best["test"],
        epochs_run=len(history),
    )
    return TrainResult(
        val_score=best["val"],
        test_score=best["test"],
        train_score=best["train"],
        best_epoch=best["epoch"],
        train_time=train_span.duration,
        history=history,
    )


def _score_graphs(
    model: Module, graphs: list[Graph], caches: dict
) -> tuple[float, float]:
    """(micro-F1, mean BCE loss) pooled over multi-label graphs."""
    model.eval()
    all_logits = []
    all_labels = []
    with no_grad():
        for graph in graphs:
            logits = model(graph.features, caches[id(graph)]).numpy()
            all_logits.append(logits)
            all_labels.append(graph.labels)
    logits = np.concatenate(all_logits)
    labels = np.concatenate(all_labels)
    loss = float(
        np.mean(np.logaddexp(0.0, logits) - logits * labels.astype(np.float64))
    )
    return micro_f1(logits, labels), loss


def fit(model: Module, data, config: TrainConfig | None = None) -> TrainResult:
    """Dispatch on data type: Graph → transductive, MultiGraphDataset → inductive."""
    if isinstance(data, Graph):
        return train_transductive(model, data, config)
    if isinstance(data, MultiGraphDataset):
        return train_inductive(model, data, config)
    raise TypeError(f"cannot train on {type(data).__name__}")
