"""Evaluation metrics: accuracy (transductive) and micro-F1 (inductive).

The paper reports mean classification accuracy on the citation graphs
and micro-F1 on PPI (Table VI), each over five repeats with standard
deviation — :func:`mean_std` formats those aggregates.
"""

from __future__ import annotations

import numpy as np

__all__ = ["accuracy", "micro_f1", "mean_std", "format_mean_std"]


def accuracy(logits: np.ndarray, labels: np.ndarray, mask: np.ndarray | None = None) -> float:
    """Fraction of correct argmax predictions (optionally masked)."""
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    predictions = logits.argmax(axis=-1)
    correct = predictions == labels
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        if not mask.any():
            raise ValueError("empty evaluation mask")
        correct = correct[mask]
    return float(correct.mean())


def micro_f1(logits: np.ndarray, labels: np.ndarray, threshold: float = 0.0) -> float:
    """Micro-averaged F1 for multi-label prediction.

    Predictions are ``logit > threshold`` (0 corresponds to a 0.5
    sigmoid probability). Degenerate cases (no positives anywhere)
    return 0.
    """
    logits = np.asarray(logits)
    labels = np.asarray(labels).astype(bool)
    predictions = logits > threshold
    true_positive = float(np.sum(predictions & labels))
    false_positive = float(np.sum(predictions & ~labels))
    false_negative = float(np.sum(~predictions & labels))
    denom = 2 * true_positive + false_positive + false_negative
    if denom == 0:
        return 0.0
    return 2 * true_positive / denom


def mean_std(values: list[float]) -> tuple[float, float]:
    array = np.asarray(values, dtype=np.float64)
    if array.size == 0:
        raise ValueError("mean_std of empty list")
    return float(array.mean()), float(array.std())


def format_mean_std(values: list[float]) -> str:
    """Render ``0.8926 (0.0123)`` in the paper's table style."""
    mean, std = mean_std(values)
    return f"{mean:.4f} ({std:.4f})"
