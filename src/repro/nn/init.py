"""Weight initialisation schemes.

All initialisers take an explicit ``numpy.random.Generator`` so every
model build is reproducible from a seed — the paper repeats every
search/retrain five times with different seeds and reports mean ± std.
"""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "xavier_normal", "kaiming_uniform", "zeros", "uniform"]


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform init (the PyG default for GNN weights)."""
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    fan_in, fan_out = _fans(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    fan_in, __ = _fans(shape)
    bound = np.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def uniform(shape: tuple[int, ...], rng: np.random.Generator, bound: float) -> np.ndarray:
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("cannot compute fans of a scalar shape")
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[0] * receptive
    fan_out = shape[1] * receptive
    return fan_in, fan_out
