"""Learning-rate schedules.

DARTS (the search algorithm SANE builds on) anneals the weight
learning rate with a cosine schedule during supernet training; the
searcher enables this via ``SearchConfig.w_lr_schedule``. Schedulers
mutate ``optimizer.lr`` in place — call :meth:`step` once per epoch.
"""

from __future__ import annotations

import math

from repro.nn.optim import Optimizer

__all__ = ["LRScheduler", "StepLR", "CosineAnnealingLR", "create_scheduler"]


class LRScheduler:
    """Base class tracking the epoch count and the initial rate."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        """Advance one epoch; returns the new learning rate."""
        self.epoch += 1
        self.optimizer.lr = self._rate(self.epoch)
        return self.optimizer.lr

    def _rate(self, epoch: int) -> float:
        raise NotImplementedError


class StepLR(LRScheduler):
    """Multiply the rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5):
        super().__init__(optimizer)
        if step_size < 1:
            raise ValueError("step_size must be >= 1")
        self.step_size = step_size
        self.gamma = gamma

    def _rate(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class CosineAnnealingLR(LRScheduler):
    """Anneal from the base rate to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0):
        super().__init__(optimizer)
        if t_max < 1:
            raise ValueError("t_max must be >= 1")
        self.t_max = t_max
        self.eta_min = eta_min

    def _rate(self, epoch: int) -> float:
        progress = min(epoch, self.t_max) / self.t_max
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (
            1.0 + math.cos(math.pi * progress)
        )


def create_scheduler(
    name: str | None, optimizer: Optimizer, epochs: int
) -> LRScheduler | None:
    """Build a scheduler by name (``None`` or ``'constant'`` → none)."""
    if name is None or name == "constant":
        return None
    if name == "cosine":
        return CosineAnnealingLR(optimizer, t_max=epochs, eta_min=1e-4)
    if name == "step":
        return StepLR(optimizer, step_size=max(1, epochs // 3))
    raise ValueError(f"unknown lr schedule {name!r}")
