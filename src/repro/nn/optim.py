"""Gradient-descent optimisers: SGD (momentum) and Adam.

The paper trains model weights with Adam (learning rate 5e-3, L2 norm
5e-4 for the baselines; searched values in Table XII), and updates the
architecture parameters ``alpha`` with a separate Adam instance — the
bi-level loop in :mod:`repro.core.search` therefore holds two
:class:`Optimizer` objects over disjoint parameter sets.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


class Optimizer:
    """Base optimiser over an explicit parameter list."""

    def __init__(self, params: list[Parameter], lr: float, weight_decay: float = 0.0):
        params = list(params)
        if not params:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = params
        self.lr = lr
        self.weight_decay = weight_decay

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def _grad_of(self, param: Parameter) -> np.ndarray | None:
        if param.grad is None:
            return None
        grad = param.grad
        if self.weight_decay:
            grad = grad + self.weight_decay * param.data
        return grad


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr, weight_decay)
        self.momentum = momentum
        self._velocity: dict[int, np.ndarray] = {}

    def step(self) -> None:
        for param in self.params:
            grad = self._grad_of(param)
            if grad is None:
                continue
            if self.momentum:
                velocity = self._velocity.get(id(param))
                if velocity is None:
                    velocity = np.zeros_like(param.data)
                velocity = self.momentum * velocity + grad
                self._velocity[id(param)] = velocity
                grad = velocity
            param.data = param.data - self.lr * grad  # lint: disable=tape-mutation -- the optimiser step is definitionally outside the tape


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba 2015)."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr, weight_decay)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._step_count = 0
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1**t
        bias2 = 1.0 - self.beta2**t
        for param in self.params:
            grad = self._grad_of(param)
            if grad is None:
                continue
            key = id(param)
            m = self._m.get(key)
            v = self._v.get(key)
            if m is None:
                m = np.zeros_like(param.data)
                v = np.zeros_like(param.data)
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad * grad
            self._m[key] = m
            self._v[key] = v
            m_hat = m / bias1
            v_hat = v / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)  # lint: disable=tape-mutation -- the optimiser step is definitionally outside the tape


def clip_grad_norm(params: list[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm. Recurrent aggregators (LSTM layer
    aggregator, GeniePath) occasionally spike; clipping keeps search
    stable without changing the optimum.
    """
    total = 0.0
    for param in params:
        if param.grad is not None:
            total += float(np.sum(param.grad * param.grad))
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for param in params:
            if param.grad is not None:
                param.grad = param.grad * scale
    return norm
