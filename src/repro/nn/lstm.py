"""LSTM cells and the sequence LSTM used by layer aggregation.

Two consumers in the paper's search space need recurrence:

* the **LSTM layer aggregator** (Table I, ``O_l``): JK-Network runs a
  (bi-directional) LSTM over the K per-layer embeddings of each node
  and attends over the outputs;
* **GeniePath** (Table XI): its depth function is an LSTM-style gated
  update applied to the aggregated neighborhood message.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd import ops
from repro.autograd.tensor import Tensor, as_tensor
from repro.nn import init
from repro.nn.module import Module, Parameter

__all__ = ["LSTMCell", "BiLSTMAttention"]


class LSTMCell(Module):
    """Standard LSTM cell: input/forget/cell/output gates.

    Gates are computed from the concatenation ``[x, h]`` with a single
    fused weight matrix for efficiency.
    """

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator):
        super().__init__()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.weight = Parameter(
            init.xavier_uniform((input_dim + hidden_dim, 4 * hidden_dim), rng)
        )
        bias = init.zeros((4 * hidden_dim,))
        # Standard trick: bias the forget gate open at initialisation.
        bias[hidden_dim : 2 * hidden_dim] = 1.0
        self.bias = Parameter(bias)

    def init_state(self, batch: int) -> tuple[Tensor, Tensor]:
        zeros = np.zeros((batch, self.hidden_dim), dtype=np.float64)
        return Tensor(zeros), Tensor(zeros)

    def forward(self, x, state: tuple[Tensor, Tensor]) -> tuple[Tensor, Tensor]:
        h_prev, c_prev = state
        x = as_tensor(x)
        combined = ops.concatenate([x, h_prev], axis=1)
        gates = ops.linear(combined, self.weight, self.bias)
        return F.lstm_gate_update(gates, c_prev)


class BiLSTMAttention(Module):
    """Bi-directional LSTM + attention over a short sequence.

    This is the JK-Network LSTM layer aggregator: for each node, the
    sequence of its K per-layer embeddings is encoded forward and
    backward; a learned scorer produces per-position attention which
    forms a convex combination of the inputs.

    Input shape ``(N, K, d)``, output shape ``(N, d)``.
    """

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator):
        super().__init__()
        self.forward_cell = LSTMCell(input_dim, hidden_dim, rng)
        self.backward_cell = LSTMCell(input_dim, hidden_dim, rng)
        self.scorer = Parameter(init.xavier_uniform((2 * hidden_dim, 1), rng))

    def forward(self, sequence) -> Tensor:
        sequence = as_tensor(sequence)
        if sequence.ndim != 3:
            raise ValueError(f"expected (N, K, d) input, got {sequence.shape}")
        num_nodes, length, __ = sequence.shape

        steps = [ops.getitem(sequence, (slice(None), t)) for t in range(length)]
        forward_outs = self._run(self.forward_cell, steps, num_nodes)
        backward_outs = self._run(self.backward_cell, steps[::-1], num_nodes)[::-1]

        # Score each position from the concatenated bidirectional state.
        scores = []
        for fwd, bwd in zip(forward_outs, backward_outs):
            both = ops.concatenate([fwd, bwd], axis=1)
            scores.append(both @ self.scorer)
        score_mat = ops.concatenate(scores, axis=1)  # (N, K)
        attention = F.softmax(score_mat, axis=1)

        weighted = attention.reshape(num_nodes, length, 1) * sequence
        return ops.sum(weighted, axis=1)

    @staticmethod
    def _run(cell: LSTMCell, steps: list[Tensor], batch: int) -> list[Tensor]:
        state = cell.init_state(batch)
        outputs = []
        for step in steps:
            h, c = cell(step, state)
            state = (h, c)
            outputs.append(h)
        return outputs
