"""Neural-network module system built on the autograd substrate."""

from repro.nn.module import Module, Parameter
from repro.nn.layers import Linear, MLP, Dropout, Embedding, Sequential
from repro.nn.lstm import LSTMCell, BiLSTMAttention
from repro.nn.optim import SGD, Adam, Optimizer, clip_grad_norm
from repro.nn.schedulers import CosineAnnealingLR, LRScheduler, StepLR, create_scheduler
from repro.nn import init

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "MLP",
    "Dropout",
    "Embedding",
    "Sequential",
    "LSTMCell",
    "BiLSTMAttention",
    "SGD",
    "Adam",
    "Optimizer",
    "clip_grad_norm",
    "LRScheduler",
    "StepLR",
    "CosineAnnealingLR",
    "create_scheduler",
    "init",
]
