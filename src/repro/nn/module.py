"""Module/Parameter system — the skeleton every model hangs off.

Mirrors the (small) subset of ``torch.nn.Module`` semantics the paper's
code relies on: recursive parameter discovery, train/eval mode, state
dict save/restore (used by the weight-sharing NAS baseline), and a
per-module random generator for dropout reproducibility.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.autograd.tensor import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A tensor that is a trainable leaf of the autograd graph."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class with recursive parameter and submodule traversal.

    Subclasses assign :class:`Parameter` and :class:`Module` instances
    as attributes; they are discovered automatically by introspecting
    ``__dict__``, including parameters/modules stored inside plain
    lists (the supernet keeps per-layer candidate ops in lists).
    """

    def __init__(self):
        self.training: bool = True

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, value in vars(self).items():
            full = f"{prefix}{name}"
            yield from _named_parameters_of(value, full)

    def parameters(self) -> list[Parameter]:
        return [param for __, param in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        yield self
        for value in vars(self).items():
            pass
        for value in vars(self).values():
            yield from _modules_of(value)

    def num_parameters(self) -> int:
        return sum(param.size for param in self.parameters())

    # ------------------------------------------------------------------
    # mode switches
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # ------------------------------------------------------------------
    # gradient and state handling
    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter value keyed by dotted path."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore parameter values in place (shapes must match)."""
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch; missing={sorted(missing)[:3]} "
                f"unexpected={sorted(unexpected)[:3]}"
            )
        for name, param in params.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{value.shape} vs {param.data.shape}"
                )
            param.data = value.copy()  # lint: disable=tape-mutation -- state restore runs between training steps, no live tape

    # ------------------------------------------------------------------
    # call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(params={self.num_parameters()})"


def _named_parameters_of(value, prefix: str) -> Iterator[tuple[str, Parameter]]:
    if isinstance(value, Parameter):
        yield prefix, value
    elif isinstance(value, Module):
        yield from value.named_parameters(prefix + ".")
    elif isinstance(value, (list, tuple)):
        for i, item in enumerate(value):
            yield from _named_parameters_of(item, f"{prefix}.{i}")
    elif isinstance(value, dict):
        for key, item in value.items():
            yield from _named_parameters_of(item, f"{prefix}.{key}")


def _modules_of(value) -> Iterator[Module]:
    if isinstance(value, Module):
        yield from value.modules()
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _modules_of(item)
    elif isinstance(value, dict):
        for item in value.values():
            yield from _modules_of(item)
