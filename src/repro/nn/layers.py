"""Basic neural-network layers: Linear, MLP, Dropout, Embedding.

These are the building blocks shared by every node aggregator in the
search space (Table XI of the paper): each aggregator owns a ``W^l``
weight matrix (Eq. 1), attention aggregators own score vectors, GIN
owns an MLP, and the supernet applies dropout between layers.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd import ops
from repro.autograd.tensor import Tensor, as_tensor
from repro.nn import init
from repro.nn.module import Module, Parameter

__all__ = ["Linear", "MLP", "Dropout", "Embedding", "Sequential"]


class Linear(Module):
    """Affine map ``y = x W + b`` with Xavier-initialised weights."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator, bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x) -> Tensor:
        return ops.linear(as_tensor(x), self.weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features}, bias={self.bias is not None})"


class MLP(Module):
    """Multi-layer perceptron with a configurable activation.

    Used both inside the GIN aggregator and as the stand-alone MLP node
    aggregator of the Table X universal-approximator study.
    """

    def __init__(
        self,
        dims: list[int],
        rng: np.random.Generator,
        activation: str = "relu",
        final_activation: bool = False,
    ):
        super().__init__()
        if len(dims) < 2:
            raise ValueError("MLP needs at least input and output dims")
        self.layers = [
            Linear(d_in, d_out, rng) for d_in, d_out in zip(dims[:-1], dims[1:])
        ]
        self.activation = F.ACTIVATIONS[activation]
        self.final_activation = final_activation

    def forward(self, x) -> Tensor:
        out = as_tensor(x)
        last = len(self.layers) - 1
        for i, layer in enumerate(self.layers):
            out = layer(out)
            if i < last or self.final_activation:
                out = self.activation(out)
        return out


class Dropout(Module):
    """Inverted dropout driven by an explicit per-module generator."""

    def __init__(self, p: float, rng: np.random.Generator):
        super().__init__()
        self.p = p
        self._rng = rng

    def forward(self, x) -> Tensor:
        return F.dropout(x, self.p, self.training, self._rng)


class Embedding(Module):
    """Trainable lookup table; used for KG entity embeddings."""

    def __init__(self, num_embeddings: int, dim: int, rng: np.random.Generator):
        super().__init__()
        self.weight = Parameter(init.xavier_uniform((num_embeddings, dim), rng))

    def forward(self, indices: np.ndarray) -> Tensor:
        return ops.getitem(self.weight, np.asarray(indices, dtype=np.int64))


class Sequential(Module):
    """Apply modules in order (single-argument forward only)."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.items = list(modules)

    def forward(self, x):
        for module in self.items:
            x = module(x)
        return x
