"""Random search baseline (Bergstra & Bengio 2012) — "Random" in Table VI.

Uniformly samples candidates from the decision space, trains each till
convergence, and keeps the best by validation score — the simplest
trial-and-error NAS loop and the reference point for search-cost
comparisons (Table VII).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.nas.evaluation import ArchitectureEvaluator, EvaluationRecord

__all__ = ["SearchOutcome", "random_search"]


@dataclasses.dataclass
class SearchOutcome:
    """Common result type for all trial-and-error searchers."""

    best: EvaluationRecord
    records: list[EvaluationRecord]
    trajectory: list[tuple[float, float]]
    search_time: float

    def decode(self, space):
        return space.decode(self.best.indices)


def random_search(
    evaluator: ArchitectureEvaluator,
    num_candidates: int,
    seed: int = 0,
    deduplicate: bool = True,
    pool=None,
) -> SearchOutcome:
    """Evaluate ``num_candidates`` uniform samples; return the best.

    ``deduplicate`` skips exact repeats (retrying up to 20 times),
    which matters in small spaces like Table X's MLP grid.

    Random search has no feedback loop, so the whole candidate list is
    drawn up front (the exact RNG draw sequence of the sequential
    loop) and handed to ``evaluator.evaluate_batch`` — with a
    :class:`repro.parallel.WorkerPool` every candidate trains
    concurrently, and the outcome is bit-identical either way.
    """
    rng = np.random.default_rng(seed)
    seen: set[tuple[int, ...]] = set()
    batch: list[tuple[int, ...]] = []
    for __ in range(num_candidates):
        indices = evaluator.space.sample_indices(rng)
        if deduplicate:
            for __retry in range(20):
                if indices not in seen:
                    break
                indices = evaluator.space.sample_indices(rng)
        seen.add(indices)
        batch.append(indices)
    evaluator.evaluate_batch(batch, pool=pool)
    records = evaluator.records
    return SearchOutcome(
        best=evaluator.best_record,
        records=list(records),
        trajectory=evaluator.trajectory(),
        search_time=records[-1].elapsed if records else 0.0,
    )
