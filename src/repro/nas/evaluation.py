"""Candidate evaluation shared by the trial-and-error NAS baselines.

Every baseline of Section IV-A2 (Random, Bayesian, GraphNAS) follows
the same inner loop: decode a candidate, train it from scratch (or
with shared weights), read its validation score. The
:class:`ArchitectureEvaluator` centralises that loop, records the
(time, best-so-far test score) trajectory behind Figure 3, and counts
wall-clock for Table VII.

Parallel evaluation: the from-scratch training of candidate ``k`` is
a pure function of ``(space, data, indices, build_seed, config)``, so
:func:`train_candidate` is module-level and picklable — the
:class:`repro.parallel.WorkerPool` ships it to spawn workers, and
:meth:`ArchitectureEvaluator.evaluate_batch` merges the scores back
in sample order. Build seeds derive from ``(evaluator seed, trial
index)`` rather than a shared RNG stream, which is what makes the
scores independent of execution order and therefore bit-identical
between the sequential and parallel paths. Weight sharing
(GraphNAS-WS) mutates a candidate-order-dependent bank, so the WS
variant always evaluates sequentially.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import obs
from repro.core.derive import architecture_to_model
from repro.core.search_space import Architecture
from repro.gnn.models import GNNModel
from repro.graph.data import Graph, MultiGraphDataset
from repro.nas.encoding import DecisionSpace
from repro.nn.module import Module
from repro.parallel import SearchJob, derive_seed
from repro.train.trainer import TrainConfig, fit

__all__ = [
    "EvaluationRecord",
    "ArchitectureEvaluator",
    "build_spec_model",
    "train_candidate",
]


def build_spec_model(
    spec: dict,
    in_dim: int,
    num_classes: int,
    rng: np.random.Generator,
    dropout: float = 0.5,
) -> GNNModel:
    """Build a model from a GraphNAS-style spec dict.

    The spec mixes architecture and hyper-parameters (per-layer hidden
    size / activation / heads), which is exactly what the SANE paper
    argues inflates the search space.
    """
    return GNNModel(
        in_dim=in_dim,
        hidden_dim=list(spec["hidden_dims"]),
        num_classes=num_classes,
        node_aggregators=list(spec["node_aggregators"]),
        rng=rng,
        layer_aggregator=None,
        dropout=dropout,
        activation=list(spec["activations"]),
        heads=list(spec["heads"]),
    )


def _build_model(
    decoded,
    data: Graph | MultiGraphDataset,
    rng: np.random.Generator,
    hidden_dim: int,
    dropout: float,
) -> Module:
    """Instantiate whatever object a decision space decoded to."""
    if isinstance(decoded, Architecture):
        return architecture_to_model(
            decoded,
            in_dim=data.num_features,
            num_classes=data.num_classes,
            rng=rng,
            hidden_dim=hidden_dim,
            dropout=dropout,
        )
    if "mlp_layers" in decoded:
        from repro.gnn.mlp_aggregator import MLPGNNModel

        return MLPGNNModel(
            in_dim=data.num_features,
            hidden_dim=hidden_dim,
            num_classes=data.num_classes,
            layer_specs=decoded["mlp_layers"],
            rng=rng,
            dropout=dropout,
        )
    return build_spec_model(
        decoded,
        in_dim=data.num_features,
        num_classes=data.num_classes,
        rng=rng,
        dropout=dropout,
    )


def train_candidate(
    space: DecisionSpace,
    data: Graph | MultiGraphDataset,
    indices: tuple[int, ...],
    build_seed: int,
    train_config: TrainConfig,
    hidden_dim: int = 32,
    dropout: float = 0.5,
) -> tuple[float, float]:
    """Train one from-scratch candidate; return (val, test) scores.

    Module-level and argument-pure so it doubles as a
    :class:`repro.parallel.SearchJob` body — both the sequential
    :meth:`ArchitectureEvaluator.evaluate` and the worker processes
    run exactly this code.
    """
    indices = tuple(indices)
    with obs.span("candidate", indices=list(indices)):
        decoded = space.decode(indices)
        model = _build_model(
            decoded, data, np.random.default_rng(build_seed),
            hidden_dim, dropout,
        )
        result = fit(model, data, train_config)
    return float(result.val_score), float(result.test_score)


@dataclasses.dataclass
class EvaluationRecord:
    """One candidate evaluation."""

    indices: tuple[int, ...]
    val_score: float
    test_score: float
    elapsed: float  # cumulative seconds since the evaluator was created


class ArchitectureEvaluator:
    """Train-and-score loop over a :class:`DecisionSpace`.

    Candidates decoding to :class:`Architecture` are instantiated via
    :func:`architecture_to_model`; dict specs via
    :func:`build_spec_model`. ``weight_sharing`` enables the
    GraphNAS-WS behaviour: per-position op weights persist across
    candidates and each candidate trains only a short adaptation
    schedule.

    Trial ``k`` builds its model from ``derive_seed(seed, k)`` — a
    pure function of the trial index, never of a shared RNG's
    execution order — so a batch fanned out over workers scores
    bit-identically to the same candidates evaluated one by one.
    """

    def __init__(
        self,
        space: DecisionSpace,
        data: Graph | MultiGraphDataset,
        train_config: TrainConfig | None = None,
        hidden_dim: int = 32,
        dropout: float = 0.5,
        seed: int = 0,
        weight_sharing: bool = False,
        ws_epochs: int = 30,
    ):
        self.space = space
        self.data = data
        self.train_config = train_config or TrainConfig()
        self.hidden_dim = hidden_dim
        self.dropout = dropout
        self.seed = seed
        self.weight_sharing = weight_sharing
        self.ws_epochs = ws_epochs
        self._bank: dict[str, np.ndarray] = {}
        self._trials = 0  # build-seed indices handed out so far
        self.records: list[EvaluationRecord] = []
        # Detached stopwatch: `elapsed` on every record is "seconds
        # since this evaluator was created" (the Figure 3 x-axis), a
        # region with no lexical scope to `with` over.
        self._lifetime = obs.span("nas-evaluator", kind="lifetime").start_detached()

    # ------------------------------------------------------------------
    def evaluate(self, indices: tuple[int, ...]) -> EvaluationRecord:
        """Train the candidate and append its record."""
        indices = tuple(indices)
        trial = self._trials
        self._trials += 1
        build_seed = derive_seed(self.seed, trial)
        if self.weight_sharing:
            val_score, test_score = self._evaluate_shared(indices, build_seed)
        else:
            val_score, test_score = train_candidate(
                self.space, self.data, indices, build_seed,
                self.train_config, self.hidden_dim, self.dropout,
            )
        record = EvaluationRecord(
            indices=indices,
            val_score=val_score,
            test_score=test_score,
            elapsed=self._lifetime.elapsed(),
        )
        self.records.append(record)
        return record

    def evaluate_batch(
        self, batch: list[tuple[int, ...]], pool=None
    ) -> list[EvaluationRecord]:
        """Evaluate candidates, fanning out over ``pool`` when possible.

        Records append in batch order with build seeds assigned by
        trial index, so the scores — and every downstream decision
        made from them — match the sequential path exactly. Weight
        sharing degrades to sequential evaluation (the shared bank is
        candidate-order-dependent state).
        """
        batch = [tuple(indices) for indices in batch]
        if not batch:
            return []
        if pool is None or pool.workers <= 1 or self.weight_sharing:
            return [self.evaluate(indices) for indices in batch]
        base = self._trials
        self._trials += len(batch)
        jobs = [
            SearchJob(
                job_id=position,
                fn="repro.nas.evaluation:train_candidate",
                kwargs=dict(
                    space=self.space,
                    data=self.data,
                    indices=batch[position],
                    build_seed=derive_seed(self.seed, base + position),
                    train_config=self.train_config,
                    hidden_dim=self.hidden_dim,
                    dropout=self.dropout,
                ),
                tag=f"candidate-{base + position}",
            )
            for position in range(len(batch))
        ]
        scores = pool.run(jobs)
        records = []
        for indices, (val_score, test_score) in zip(batch, scores):
            record = EvaluationRecord(
                indices=indices,
                val_score=val_score,
                test_score=test_score,
                elapsed=self._lifetime.elapsed(),
            )
            self.records.append(record)
            records.append(record)
        return records

    def _evaluate_shared(
        self, indices: tuple[int, ...], build_seed: int
    ) -> tuple[float, float]:
        """The GraphNAS-WS path: bank restore, short schedule, store."""
        with obs.span("candidate", indices=list(indices)):
            decoded = self.space.decode(indices)
            model = _build_model(
                decoded, self.data, np.random.default_rng(build_seed),
                self.hidden_dim, self.dropout,
            )
            self._load_shared(model, indices)
            config = self.train_config.replace(
                epochs=self.ws_epochs, patience=self.ws_epochs
            )
            result = fit(model, self.data, config)
            self._store_shared(model, indices)
        return float(result.val_score), float(result.test_score)

    @property
    def best_record(self) -> EvaluationRecord:
        if not self.records:
            raise RuntimeError("no candidates evaluated yet")
        return max(self.records, key=lambda r: r.val_score)

    def trajectory(self) -> list[tuple[float, float]]:
        """(elapsed, best-so-far test score) series for Figure 3."""
        points = []
        best_val = -1.0
        best_test = 0.0
        for record in self.records:
            if record.val_score > best_val:
                best_val = record.val_score
                best_test = record.test_score
            points.append((record.elapsed, best_test))
        return points

    # ------------------------------------------------------------------
    # weight sharing (GraphNAS-WS)
    # ------------------------------------------------------------------
    def _shared_keys(self, model: Module, indices: tuple[int, ...]):
        """Map parameter paths to bank keys tagged by the decision vector.

        Parameters under ``layers.<i>`` are shared across candidates
        that picked the same op at position ``i`` (and same dims);
        the classifier is shared unconditionally.
        """
        description = self.space.describe(indices).split(", ")
        for name, param in model.named_parameters():
            if name.startswith("layers."):
                layer_idx = name.split(".")[1]
                tag = description[int(layer_idx)] if int(layer_idx) < len(description) else ""
                yield name, f"L{layer_idx}|{tag}|{name}|{param.data.shape}"
            elif name.startswith("classifier"):
                yield name, f"head|{name}|{param.data.shape}"

    def _load_shared(self, model: Module, indices: tuple[int, ...]) -> None:
        params = dict(model.named_parameters())
        for name, key in self._shared_keys(model, indices):
            stored = self._bank.get(key)
            if stored is not None and stored.shape == params[name].data.shape:
                params[name].data = stored.copy()  # lint: disable=tape-mutation -- weight-sharing bank restore before the candidate trains

    def _store_shared(self, model: Module, indices: tuple[int, ...]) -> None:
        params = dict(model.named_parameters())
        for name, key in self._shared_keys(model, indices):
            self._bank[key] = params[name].data.copy()
