"""Candidate evaluation shared by the trial-and-error NAS baselines.

Every baseline of Section IV-A2 (Random, Bayesian, GraphNAS) follows
the same inner loop: decode a candidate, train it from scratch (or
with shared weights), read its validation score. The
:class:`ArchitectureEvaluator` centralises that loop, records the
(time, best-so-far test score) trajectory behind Figure 3, and counts
wall-clock for Table VII.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import obs
from repro.core.derive import architecture_to_model
from repro.core.search_space import Architecture
from repro.gnn.models import GNNModel
from repro.graph.data import Graph, MultiGraphDataset
from repro.nas.encoding import DecisionSpace
from repro.nn.module import Module
from repro.train.trainer import TrainConfig, fit

__all__ = ["EvaluationRecord", "ArchitectureEvaluator", "build_spec_model"]


def build_spec_model(
    spec: dict,
    in_dim: int,
    num_classes: int,
    rng: np.random.Generator,
    dropout: float = 0.5,
) -> GNNModel:
    """Build a model from a GraphNAS-style spec dict.

    The spec mixes architecture and hyper-parameters (per-layer hidden
    size / activation / heads), which is exactly what the SANE paper
    argues inflates the search space.
    """
    return GNNModel(
        in_dim=in_dim,
        hidden_dim=list(spec["hidden_dims"]),
        num_classes=num_classes,
        node_aggregators=list(spec["node_aggregators"]),
        rng=rng,
        layer_aggregator=None,
        dropout=dropout,
        activation=list(spec["activations"]),
        heads=list(spec["heads"]),
    )


@dataclasses.dataclass
class EvaluationRecord:
    """One candidate evaluation."""

    indices: tuple[int, ...]
    val_score: float
    test_score: float
    elapsed: float  # cumulative seconds since the evaluator was created


class ArchitectureEvaluator:
    """Train-and-score loop over a :class:`DecisionSpace`.

    Candidates decoding to :class:`Architecture` are instantiated via
    :func:`architecture_to_model`; dict specs via
    :func:`build_spec_model`. ``shared_state`` enables the GraphNAS-WS
    behaviour: per-position op weights persist across candidates and
    each candidate trains only a short adaptation schedule.
    """

    def __init__(
        self,
        space: DecisionSpace,
        data: Graph | MultiGraphDataset,
        train_config: TrainConfig | None = None,
        hidden_dim: int = 32,
        dropout: float = 0.5,
        seed: int = 0,
        weight_sharing: bool = False,
        ws_epochs: int = 30,
    ):
        self.space = space
        self.data = data
        self.train_config = train_config or TrainConfig()
        self.hidden_dim = hidden_dim
        self.dropout = dropout
        self.weight_sharing = weight_sharing
        self.ws_epochs = ws_epochs
        self._rng = np.random.default_rng(seed)
        self._bank: dict[str, np.ndarray] = {}
        self.records: list[EvaluationRecord] = []
        # Detached stopwatch: `elapsed` on every record is "seconds
        # since this evaluator was created" (the Figure 3 x-axis), a
        # region with no lexical scope to `with` over.
        self._lifetime = obs.span("nas-evaluator", kind="lifetime").start_detached()

    # ------------------------------------------------------------------
    def evaluate(self, indices: tuple[int, ...]) -> EvaluationRecord:
        """Train the candidate and append its record."""
        with obs.span("candidate", indices=list(indices)):
            model = self._build(indices)
            config = self.train_config
            if self.weight_sharing:
                self._load_shared(model, indices)
                config = config.replace(epochs=self.ws_epochs, patience=self.ws_epochs)
            result = fit(model, self.data, config)
            if self.weight_sharing:
                self._store_shared(model, indices)
        record = EvaluationRecord(
            indices=tuple(indices),
            val_score=result.val_score,
            test_score=result.test_score,
            elapsed=self._lifetime.elapsed(),
        )
        self.records.append(record)
        return record

    @property
    def best_record(self) -> EvaluationRecord:
        if not self.records:
            raise RuntimeError("no candidates evaluated yet")
        return max(self.records, key=lambda r: r.val_score)

    def trajectory(self) -> list[tuple[float, float]]:
        """(elapsed, best-so-far test score) series for Figure 3."""
        points = []
        best_val = -1.0
        best_test = 0.0
        for record in self.records:
            if record.val_score > best_val:
                best_val = record.val_score
                best_test = record.test_score
            points.append((record.elapsed, best_test))
        return points

    # ------------------------------------------------------------------
    def _build(self, indices: tuple[int, ...]) -> Module:
        decoded = self.space.decode(indices)
        seed = int(self._rng.integers(2**31))
        rng = np.random.default_rng(seed)
        if isinstance(decoded, Architecture):
            return architecture_to_model(
                decoded,
                in_dim=self.data.num_features,
                num_classes=self.data.num_classes,
                rng=rng,
                hidden_dim=self.hidden_dim,
                dropout=self.dropout,
            )
        if "mlp_layers" in decoded:
            from repro.gnn.mlp_aggregator import MLPGNNModel

            return MLPGNNModel(
                in_dim=self.data.num_features,
                hidden_dim=self.hidden_dim,
                num_classes=self.data.num_classes,
                layer_specs=decoded["mlp_layers"],
                rng=rng,
                dropout=self.dropout,
            )
        return build_spec_model(
            decoded,
            in_dim=self.data.num_features,
            num_classes=self.data.num_classes,
            rng=rng,
            dropout=self.dropout,
        )

    # ------------------------------------------------------------------
    # weight sharing (GraphNAS-WS)
    # ------------------------------------------------------------------
    def _shared_keys(self, model: Module, indices: tuple[int, ...]):
        """Map parameter paths to bank keys tagged by the decision vector.

        Parameters under ``layers.<i>`` are shared across candidates
        that picked the same op at position ``i`` (and same dims);
        the classifier is shared unconditionally.
        """
        description = self.space.describe(indices).split(", ")
        for name, param in model.named_parameters():
            if name.startswith("layers."):
                layer_idx = name.split(".")[1]
                tag = description[int(layer_idx)] if int(layer_idx) < len(description) else ""
                yield name, f"L{layer_idx}|{tag}|{name}|{param.data.shape}"
            elif name.startswith("classifier"):
                yield name, f"head|{name}|{param.data.shape}"

    def _load_shared(self, model: Module, indices: tuple[int, ...]) -> None:
        params = dict(model.named_parameters())
        for name, key in self._shared_keys(model, indices):
            stored = self._bank.get(key)
            if stored is not None and stored.shape == params[name].data.shape:
                params[name].data = stored.copy()  # lint: disable=tape-mutation -- weight-sharing bank restore before the candidate trains

    def _store_shared(self, model: Module, indices: tuple[int, ...]) -> None:
        params = dict(model.named_parameters())
        for name, key in self._shared_keys(model, indices):
            self._bank[key] = params[name].data.copy()
