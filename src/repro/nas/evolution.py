"""Evolutionary architecture search (regularised evolution).

The paper's related work (Section II-B) cites evolutionary search as
one of the trial-and-error NAS families applied to GNNs [37]; this
module implements aging evolution (Real et al., 2019) over a
:class:`~repro.nas.encoding.DecisionSpace` so it plugs into the same
evaluator/budget machinery as Random, TPE and GraphNAS:

1. seed a population with random candidates;
2. repeatedly sample a tournament, mutate the winner in one random
   decision, evaluate the child;
3. kill the *oldest* member (aging regularisation) and insert the child.
"""

from __future__ import annotations

import collections

import numpy as np

from repro.nas.evaluation import ArchitectureEvaluator, EvaluationRecord
from repro.nas.random_search import SearchOutcome

__all__ = ["mutate", "evolutionary_search"]


def mutate(
    indices: tuple[int, ...],
    space,
    rng: np.random.Generator,
) -> tuple[int, ...]:
    """Resample one uniformly chosen decision to a different value.

    Positions with a single choice are never selected; if every
    position is single-choice the parent is returned unchanged.
    """
    mutable = [p for p in range(len(space)) if space.num_choices(p) > 1]
    if not mutable:
        return tuple(indices)
    position = int(rng.choice(mutable))
    num_choices = space.num_choices(position)
    child = list(indices)
    offset = 1 + int(rng.integers(num_choices - 1))
    child[position] = (child[position] + offset) % num_choices
    return tuple(child)


def evolutionary_search(
    evaluator: ArchitectureEvaluator,
    num_candidates: int,
    seed: int = 0,
    population_size: int = 8,
    tournament_size: int = 3,
) -> SearchOutcome:
    """Aging evolution under a total budget of ``num_candidates`` evals.

    ``population_size`` seeds come out of the same budget; with a
    budget below the population size the loop degenerates gracefully to
    random search.
    """
    if population_size < 2:
        raise ValueError("population_size must be >= 2")
    rng = np.random.default_rng(seed)
    population: collections.deque[EvaluationRecord] = collections.deque()

    num_seed = min(population_size, num_candidates)
    for __ in range(num_seed):
        record = evaluator.evaluate(evaluator.space.sample_indices(rng))
        population.append(record)

    for __ in range(num_candidates - num_seed):
        k = min(tournament_size, len(population))
        contenders = [
            population[int(i)]
            for i in rng.choice(len(population), size=k, replace=False)
        ]
        parent = max(contenders, key=lambda r: r.val_score)
        child_indices = mutate(parent.indices, evaluator.space, rng)
        child = evaluator.evaluate(child_indices)
        population.append(child)
        population.popleft()  # aging: remove the oldest, not the worst

    records = evaluator.records
    return SearchOutcome(
        best=evaluator.best_record,
        records=list(records),
        trajectory=evaluator.trajectory(),
        search_time=records[-1].elapsed if records else 0.0,
    )
