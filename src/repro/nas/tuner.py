"""Hyper-parameter fine-tuning (the paper's hyperopt stage).

After an architecture is derived/selected, the paper tunes its
hyper-parameters with hyperopt for 50 iterations on validation data
(Appendix C, Table XII) — head count, hidden size, learning rate, L2
norm, activation. This module reimplements that stage with our own
:class:`~repro.nas.tpe.TPESampler` over a discretised grid.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

import numpy as np

from repro.core.derive import retrain
from repro.core.search_space import Architecture
from repro.graph.data import Graph, MultiGraphDataset
from repro.nas.encoding import Decision, DecisionSpace
from repro.nas.tpe import TPESampler
from repro.train.trainer import TrainConfig

__all__ = ["TuneResult", "hyperparameter_space", "tune", "tune_architecture"]


@dataclasses.dataclass
class TuneResult:
    best_assignment: dict
    best_score: float
    trials: list[tuple[dict, float]]


def hyperparameter_space(
    hidden_choices: tuple[int, ...] = (16, 32, 64),
    head_choices: tuple[int, ...] = (1, 2, 4),
) -> DecisionSpace:
    """The Table XII hyper-parameter grid (discretised)."""
    decisions = [
        Decision("hidden_dim", hidden_choices),
        Decision("heads", head_choices),
        Decision("lr", (1e-3, 2.5e-3, 5e-3, 1e-2)),
        Decision("weight_decay", (0.0, 1e-5, 1e-4, 5e-4)),
        Decision("dropout", (0.2, 0.4, 0.6)),
        Decision("activation", ("relu", "elu", "tanh")),
    ]
    return DecisionSpace(decisions, decoder=lambda assignment: assignment, name="hparams")


def tune(
    objective: Callable[[dict], float],
    space: DecisionSpace,
    num_trials: int,
    seed: int = 0,
) -> TuneResult:
    """Maximise ``objective`` over ``space`` with TPE proposals."""
    if num_trials < 1:
        raise ValueError("num_trials must be >= 1")
    rng = np.random.default_rng(seed)
    sampler = TPESampler(space, rng)
    trials: list[tuple[dict, float]] = []
    best_assignment = None
    best_score = -np.inf
    for __ in range(num_trials):
        indices = sampler.propose()
        assignment = space.decode(indices)
        score = objective(assignment)
        sampler.observe(indices, score)
        trials.append((assignment, score))
        if score > best_score:
            best_score = score
            best_assignment = assignment
    return TuneResult(best_assignment, best_score, trials)


def tune_architecture(
    arch: Architecture,
    data: Graph | MultiGraphDataset,
    num_trials: int = 10,
    seed: int = 0,
    train_config: TrainConfig | None = None,
    space: DecisionSpace | None = None,
) -> TuneResult:
    """Fine-tune a derived architecture's hyper-parameters on validation.

    Mirrors the paper's protocol: each trial retrains from scratch with
    the candidate hyper-parameters and scores on the validation split.
    """
    space = space or hyperparameter_space()
    base_config = train_config or TrainConfig()

    def objective(assignment: dict) -> float:
        config = base_config.replace(
            lr=assignment["lr"], weight_decay=assignment["weight_decay"]
        )
        result = retrain(
            arch,
            data,
            seed=seed,
            hidden_dim=assignment["hidden_dim"],
            dropout=assignment["dropout"],
            heads=assignment["heads"],
            activation=assignment["activation"],
            train_config=config,
        )
        return result.val_score

    return tune(objective, space, num_trials, seed)
