"""Categorical encodings of search spaces for trial-and-error NAS.

Random search, TPE and the GraphNAS controller all operate on a flat
sequence of categorical decisions. :class:`DecisionSpace` describes
such a sequence; two concrete builders cover the paper's spaces:

* :func:`sane_decision_space` — the SANE space of Table I (2K+1
  decisions: K node aggregators, K skip ops, 1 layer aggregator);
* :func:`graphnas_decision_space` — a GraphNAS-style space that mixes
  architecture with hyper-parameters (per layer: aggregator,
  activation, head count, hidden units) and has *no* layer
  aggregator/skips — the space Section III-C criticises for being
  orders of magnitude larger.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.core.search_space import Architecture, SearchSpace

__all__ = [
    "Decision",
    "DecisionSpace",
    "SaneDecoder",
    "GraphNasDecoder",
    "MlpDecoder",
    "sane_decision_space",
    "graphnas_decision_space",
    "mlp_decision_space",
]

GRAPHNAS_ACTIVATIONS = ("relu", "elu", "tanh", "sigmoid", "leaky_relu", "linear")
GRAPHNAS_HEADS = (1, 2, 4)
GRAPHNAS_HIDDEN = (16, 32, 64)


@dataclasses.dataclass(frozen=True)
class Decision:
    """One categorical decision: a name and its candidate values."""

    name: str
    choices: tuple

    def __post_init__(self):
        if len(self.choices) < 1:
            raise ValueError(f"decision {self.name!r} has no choices")


class DecisionSpace:
    """A flat sequence of categorical decisions plus a decoder.

    ``decode`` maps an index vector to whatever object the consumer
    trains (an :class:`Architecture` for the SANE space, a model-spec
    dict for the GraphNAS space).
    """

    def __init__(self, decisions: list[Decision], decoder, name: str):
        if not decisions:
            raise ValueError("decision space must have at least one decision")
        self.decisions = list(decisions)
        self._decoder = decoder
        self.name = name

    def __len__(self) -> int:
        return len(self.decisions)

    def size(self) -> int:
        return math.prod(len(d.choices) for d in self.decisions)

    def num_choices(self, position: int) -> int:
        return len(self.decisions[position].choices)

    def sample_indices(self, rng: np.random.Generator) -> tuple[int, ...]:
        return tuple(
            int(rng.integers(len(d.choices))) for d in self.decisions
        )

    def decode(self, indices: tuple[int, ...]):
        if len(indices) != len(self.decisions):
            raise ValueError(
                f"expected {len(self.decisions)} indices, got {len(indices)}"
            )
        assignment = {
            d.name: d.choices[i] for d, i in zip(self.decisions, indices)
        }
        return self._decoder(assignment)

    def describe(self, indices: tuple[int, ...]) -> str:
        return ", ".join(
            f"{d.name}={d.choices[i]}" for d, i in zip(self.decisions, indices)
        )


# ---------------------------------------------------------------------
# Decoders are module-level callable dataclasses, not closures: a
# DecisionSpace travels inside SearchJob payloads to spawn workers
# (repro.parallel), and closures do not pickle. Consumers may still
# pass any callable as `decoder` (tests use plain lambdas for
# in-process spaces).
# ---------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class SaneDecoder:
    """Decode a SANE assignment into an :class:`Architecture`."""

    num_layers: int

    def __call__(self, assignment: dict) -> Architecture:
        return Architecture(
            node_aggregators=tuple(
                assignment[f"node_{layer}"] for layer in range(self.num_layers)
            ),
            skip_connections=tuple(
                assignment[f"skip_{layer}"] for layer in range(self.num_layers)
            ),
            layer_aggregator=assignment["layer_agg"],
        )


@dataclasses.dataclass(frozen=True)
class GraphNasDecoder:
    """Decode a GraphNAS assignment into a model-spec dict."""

    num_layers: int

    def __call__(self, assignment: dict) -> dict:
        return {
            "node_aggregators": [
                assignment[f"agg_{layer}"] for layer in range(self.num_layers)
            ],
            "activations": [
                assignment[f"act_{layer}"] for layer in range(self.num_layers)
            ],
            "heads": [
                assignment[f"heads_{layer}"] for layer in range(self.num_layers)
            ],
            "hidden_dims": [
                assignment[f"hidden_{layer}"] for layer in range(self.num_layers)
            ],
        }


@dataclasses.dataclass(frozen=True)
class MlpDecoder:
    """Decode a Table X assignment into per-layer (width, depth) pairs."""

    num_layers: int

    def __call__(self, assignment: dict) -> dict:
        return {
            "mlp_layers": [
                (assignment[f"width_{layer}"], assignment[f"depth_{layer}"])
                for layer in range(self.num_layers)
            ]
        }


def sane_decision_space(space: SearchSpace) -> DecisionSpace:
    """Flatten a :class:`SearchSpace` into 2K+1 categorical decisions."""
    decisions = []
    for layer in range(space.num_layers):
        decisions.append(Decision(f"node_{layer}", space.node_ops))
    for layer in range(space.num_layers):
        decisions.append(Decision(f"skip_{layer}", space.skip_ops))
    decisions.append(Decision("layer_agg", space.layer_ops))
    return DecisionSpace(
        decisions, SaneDecoder(space.num_layers), name="sane"
    )


def graphnas_decision_space(num_layers: int = 3) -> DecisionSpace:
    """GraphNAS-style space: aggregator + hyper-parameters per layer.

    Decodes to a model-spec dict consumed by
    :func:`repro.nas.evaluation.build_spec_model`. Its size for K=3 is
    ``(11*6*3*3)^3 ≈ 2.1e8`` — four orders of magnitude beyond SANE's
    31,944, mirroring the Auto-GNN comparison of Section III-C.
    """
    from repro.core.search_space import NODE_OPS

    decisions = []
    for layer in range(num_layers):
        decisions.append(Decision(f"agg_{layer}", NODE_OPS))
        decisions.append(Decision(f"act_{layer}", GRAPHNAS_ACTIVATIONS))
        decisions.append(Decision(f"heads_{layer}", GRAPHNAS_HEADS))
        decisions.append(Decision(f"hidden_{layer}", GRAPHNAS_HIDDEN))
    return DecisionSpace(decisions, GraphNasDecoder(num_layers), name="graphnas")


def mlp_decision_space(num_layers: int = 3) -> DecisionSpace:
    """The Table X space: per-layer MLP width/depth as node aggregators.

    ``w ∈ {8, 16, 32, 64}`` and ``d ∈ {1, 2, 3}`` per the paper's
    universal-approximator study (Section IV-E4).
    """
    from repro.gnn.mlp_aggregator import MLP_DEPTHS, MLP_WIDTHS

    decisions = []
    for layer in range(num_layers):
        decisions.append(Decision(f"width_{layer}", MLP_WIDTHS))
        decisions.append(Decision(f"depth_{layer}", MLP_DEPTHS))
    return DecisionSpace(decisions, MlpDecoder(num_layers), name="mlp")
