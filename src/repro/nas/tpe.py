"""Tree-structured Parzen Estimator — the "Bayesian" baseline.

The paper uses hyperopt (Bergstra et al., NeurIPS 2011) as its
Bayesian-optimisation NAS baseline; hyperopt is unavailable offline,
so this module implements TPE for categorical decision spaces from
scratch:

1. split past observations into *good* (top ``gamma`` quantile by
   validation score) and *bad*;
2. per decision, fit add-one-smoothed categorical densities ``l(x)``
   (good) and ``g(x)`` (bad);
3. draw candidates from ``l`` and keep the one maximising the
   expected-improvement proxy ``l(x) / g(x)``.

The same engine powers the hyper-parameter fine-tuner
(:mod:`repro.nas.tuner`), matching the paper's double use of hyperopt.
"""

from __future__ import annotations

import numpy as np

from repro.nas.encoding import DecisionSpace
from repro.nas.evaluation import ArchitectureEvaluator
from repro.nas.random_search import SearchOutcome

__all__ = ["TPESampler", "tpe_search"]


class TPESampler:
    """Categorical TPE proposal engine over a :class:`DecisionSpace`."""

    def __init__(
        self,
        space: DecisionSpace,
        rng: np.random.Generator,
        gamma: float = 0.25,
        num_startup: int = 5,
        num_ei_candidates: int = 24,
    ):
        if not 0.0 < gamma < 1.0:
            raise ValueError(f"gamma must be in (0, 1), got {gamma}")
        self.space = space
        self.gamma = gamma
        self.num_startup = num_startup
        self.num_ei_candidates = num_ei_candidates
        self._rng = rng
        self._observations: list[tuple[tuple[int, ...], float]] = []

    def observe(self, indices: tuple[int, ...], score: float) -> None:
        self._observations.append((tuple(indices), float(score)))

    def propose(self) -> tuple[int, ...]:
        """Next candidate: random during startup, EI-maximising after."""
        if len(self._observations) < self.num_startup:
            return self.space.sample_indices(self._rng)
        good, bad = self._partition()
        good_probs = self._densities(good)
        bad_probs = self._densities(bad)

        best_indices = None
        best_ratio = -np.inf
        for __ in range(self.num_ei_candidates):
            candidate = tuple(
                int(self._rng.choice(len(probs), p=probs)) for probs in good_probs
            )
            ratio = self._log_ratio(candidate, good_probs, bad_probs)
            if ratio > best_ratio:
                best_ratio = ratio
                best_indices = candidate
        return best_indices

    # ------------------------------------------------------------------
    def _partition(self):
        ranked = sorted(self._observations, key=lambda ob: -ob[1])
        n_good = max(1, int(np.ceil(self.gamma * len(ranked))))
        good = [indices for indices, __ in ranked[:n_good]]
        bad = [indices for indices, __ in ranked[n_good:]] or good
        return good, bad

    def _densities(self, observations: list[tuple[int, ...]]) -> list[np.ndarray]:
        """Per-decision smoothed categorical distributions."""
        densities = []
        for position in range(len(self.space)):
            k = self.space.num_choices(position)
            counts = np.ones(k, dtype=np.float64)  # add-one smoothing
            for indices in observations:
                counts[indices[position]] += 1.0
            densities.append(counts / counts.sum())
        return densities

    @staticmethod
    def _log_ratio(indices, good_probs, bad_probs) -> float:
        log_l = sum(np.log(p[i]) for p, i in zip(good_probs, indices))
        log_g = sum(np.log(p[i]) for p, i in zip(bad_probs, indices))
        return log_l - log_g


def tpe_search(
    evaluator: ArchitectureEvaluator,
    num_candidates: int,
    seed: int = 0,
    gamma: float = 0.25,
    batch: int = 1,
    pool=None,
) -> SearchOutcome:
    """Sequential model-based search with TPE proposals.

    ``batch > 1`` proposes that many candidates per round from the
    *same* posterior, evaluates them together (through ``pool`` when
    given), and feeds all observations back before the next round —
    standard synchronous batched BO. ``batch=1`` is exactly the
    classic sequential loop regardless of ``pool``.
    """
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    rng = np.random.default_rng(seed)
    sampler = TPESampler(evaluator.space, rng, gamma=gamma)
    remaining = num_candidates
    while remaining > 0:
        width = min(batch, remaining)
        remaining -= width
        proposals = [sampler.propose() for __ in range(width)]
        for indices, record in zip(
            proposals, evaluator.evaluate_batch(proposals, pool=pool)
        ):
            sampler.observe(indices, record.val_score)
    records = evaluator.records
    return SearchOutcome(
        best=evaluator.best_record,
        records=list(records),
        trajectory=evaluator.trajectory(),
        search_time=records[-1].elapsed if records else 0.0,
    )
