"""GraphNAS baseline: RL (REINFORCE) architecture search.

GraphNAS (Gao et al., IJCAI 2020) trains an LSTM controller that emits
one categorical decision per step; each sampled architecture is trained
and its validation score is the reward. We reproduce that design on our
own substrate:

* controller — single-layer LSTM, per-position choice embeddings and
  per-position softmax heads;
* training — REINFORCE with an exponential-moving-average baseline and
  an entropy bonus for exploration;
* ``weight_sharing=True`` gives the GraphNAS-WS variant of the paper's
  tables (candidates inherit op weights from previous candidates and
  train a short adaptation schedule only).

At the end, following Section IV-A2, the controller samples
``num_final_samples`` architectures and the best-by-validation among
the top candidates is returned.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.nas.encoding import DecisionSpace
from repro.nas.evaluation import ArchitectureEvaluator
from repro.nas.random_search import SearchOutcome
from repro.nn import init
from repro.nn.lstm import LSTMCell
from repro.nn.module import Module, Parameter
from repro.nn.optim import Adam

__all__ = ["Controller", "graphnas_search"]


class Controller(Module):
    """LSTM policy over a sequence of categorical decisions."""

    def __init__(
        self,
        space: DecisionSpace,
        rng: np.random.Generator,
        hidden_dim: int = 32,
        embedding_dim: int = 16,
    ):
        super().__init__()
        self.space = space
        self.hidden_dim = hidden_dim
        self.cell = LSTMCell(embedding_dim, hidden_dim, rng)
        self.start_token = Parameter(0.1 * rng.normal(size=(1, embedding_dim)))
        # Per-position choice embeddings (input of the next step) and
        # per-position output heads.
        self.choice_embeddings = [
            Parameter(init.xavier_uniform((space.num_choices(t), embedding_dim), rng))
            for t in range(len(space))
        ]
        self.heads = [
            Parameter(init.xavier_uniform((hidden_dim, space.num_choices(t)), rng))
            for t in range(len(space))
        ]

    def sample(self, rng: np.random.Generator) -> tuple[tuple[int, ...], Tensor, Tensor]:
        """Sample one decision vector.

        Returns ``(indices, sum_log_prob, entropy)`` with the latter two
        differentiable w.r.t. controller parameters.
        """
        state = self.cell.init_state(1)
        inputs = self.start_token
        log_prob_total = None
        entropy_total = None
        indices = []
        for position in range(len(self.space)):
            h, c = self.cell(inputs, state)
            state = (h, c)
            logits = h @ self.heads[position]
            log_probs = F.log_softmax(logits, axis=-1)
            probs = np.exp(log_probs.data[0])
            probs = probs / probs.sum()
            choice = int(rng.choice(len(probs), p=probs))
            indices.append(choice)

            picked = ops.getitem(log_probs, (0, choice))
            entropy = -ops.sum(ops.exp(log_probs) * log_probs)
            log_prob_total = picked if log_prob_total is None else log_prob_total + picked
            entropy_total = entropy if entropy_total is None else entropy_total + entropy
            inputs = ops.getitem(self.choice_embeddings[position], np.array([choice]))
        return tuple(indices), log_prob_total, entropy_total


def graphnas_search(
    evaluator: ArchitectureEvaluator,
    num_candidates: int,
    seed: int = 0,
    controller_lr: float = 3.5e-4,
    entropy_weight: float = 1e-3,
    baseline_decay: float = 0.95,
    num_final_samples: int = 10,
    top_k: int = 5,
    rollout_batch: int = 1,
    pool=None,
) -> SearchOutcome:  # noqa: D417 — top_k documented below
    """Run the GraphNAS loop for ``num_candidates`` controller steps.

    Each step samples an architecture, trains it (full schedule, or the
    short shared-weights schedule if the evaluator enables WS), and
    applies a REINFORCE update with reward = validation score.
    The final architecture is the best-by-validation among the scores of
    the top ``top_k`` of ``num_final_samples`` fresh controller samples
    (already-evaluated duplicates are looked up, new ones evaluated).

    ``rollout_batch > 1`` samples that many rollouts per round from the
    round-start policy, trains them together (through ``pool`` when
    given), then replays the REINFORCE updates one rollout at a time
    in sample order. The optimiser rebinds parameter arrays rather
    than mutating them, so each rollout's retained graph still
    differentiates w.r.t. its own sample-time parameters — the update
    sequence is the sequential algorithm with delayed rewards.
    ``rollout_batch=1`` is exactly the classic interleaved loop.
    """
    if rollout_batch < 1:
        raise ValueError(f"rollout_batch must be >= 1, got {rollout_batch}")
    rng = np.random.default_rng(seed)
    controller = Controller(evaluator.space, np.random.default_rng(seed + 1))
    optimizer = Adam(controller.parameters(), lr=controller_lr)
    baseline = None

    remaining = num_candidates
    while remaining > 0:
        width = min(rollout_batch, remaining)
        remaining -= width
        rollouts = [controller.sample(rng) for __ in range(width)]
        batch_records = evaluator.evaluate_batch(
            [indices for indices, __lp, __ent in rollouts], pool=pool
        )
        for (indices, log_prob, entropy), record in zip(rollouts, batch_records):
            reward = record.val_score
            if baseline is None:
                baseline = reward
            advantage = reward - baseline
            baseline = baseline_decay * baseline + (1.0 - baseline_decay) * reward

            controller.zero_grad()
            loss = -(log_prob * advantage) - entropy_weight * entropy
            loss.backward()
            optimizer.step()

    # Final sampling stage (Section IV-A2).
    evaluated = {record.indices: record for record in evaluator.records}
    candidates = []
    for __ in range(num_final_samples):
        indices, __lp, __ent = controller.sample(rng)
        candidates.append(indices)
    # Evaluate cache misses as one batch, first occurrence only — the
    # same (candidate, trial-index) pairing the sequential lookup-or-
    # evaluate loop produces, so scores match it bit for bit.
    misses: list[tuple[int, ...]] = []
    for indices in candidates:
        if tuple(indices) not in evaluated and tuple(indices) not in misses:
            misses.append(tuple(indices))
    for record in evaluator.evaluate_batch(misses, pool=pool):
        evaluated[record.indices] = record
    # Keep the top-k by validation score.
    scored = [evaluated[tuple(indices)] for indices in candidates]
    scored.sort(key=lambda r: -r.val_score)
    scored = scored[:top_k]
    best = scored[0] if scored else evaluator.best_record
    if evaluator.best_record.val_score > best.val_score:
        best = evaluator.best_record

    records = evaluator.records
    return SearchOutcome(
        best=best,
        records=list(records),
        trajectory=evaluator.trajectory(),
        search_time=records[-1].elapsed if records else 0.0,
    )
