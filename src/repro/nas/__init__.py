"""Trial-and-error NAS baselines: Random, Bayesian (TPE), GraphNAS (RL)."""

from repro.nas.encoding import (
    Decision,
    DecisionSpace,
    graphnas_decision_space,
    sane_decision_space,
)
from repro.nas.evaluation import ArchitectureEvaluator, EvaluationRecord
from repro.nas.random_search import SearchOutcome, random_search
from repro.nas.tpe import TPESampler, tpe_search
from repro.nas.graphnas import Controller, graphnas_search
from repro.nas.evolution import evolutionary_search, mutate
from repro.nas.tuner import TuneResult, hyperparameter_space, tune, tune_architecture

__all__ = [
    "Decision",
    "DecisionSpace",
    "sane_decision_space",
    "graphnas_decision_space",
    "ArchitectureEvaluator",
    "EvaluationRecord",
    "SearchOutcome",
    "random_search",
    "TPESampler",
    "tpe_search",
    "Controller",
    "graphnas_search",
    "evolutionary_search",
    "mutate",
    "TuneResult",
    "hyperparameter_space",
    "tune",
    "tune_architecture",
]
