"""AST-based static analysis enforcing the repo's invariants.

``repro lint`` (and the tier-1 self-check test) run a rule-based
analyzer over the source tree. See ``rules.py`` for the core rule set,
``genotype.py`` for search-space validation, and the README's
"Static analysis" section for the user-facing documentation.

``repro check`` runs the interprocedural dataflow analyses over the
autograd package (:mod:`repro.analysis.dataflow`): VJP completeness,
closure-capture weight, in-place escape, kernel purity.
"""

from repro.analysis.dataflow.checker import CheckResult, check_paths, load_baseline
from repro.analysis.engine import (
    AnalysisResult,
    Context,
    Rule,
    analyze_source,
    collect_suppressions,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.genotype import (
    GenotypeRule,
    OpTables,
    collect_op_tables,
    consistency_findings,
)
from repro.analysis.linter import default_rules, discover_files, lint_paths
from repro.analysis.reporters import (
    render_check_json,
    render_check_text,
    render_json,
    render_text,
)
from repro.analysis.rules import CORE_RULES

__all__ = [
    "AnalysisResult",
    "CheckResult",
    "check_paths",
    "load_baseline",
    "render_check_json",
    "render_check_text",
    "Context",
    "Rule",
    "Finding",
    "Severity",
    "analyze_source",
    "collect_suppressions",
    "CORE_RULES",
    "GenotypeRule",
    "OpTables",
    "collect_op_tables",
    "consistency_findings",
    "default_rules",
    "discover_files",
    "lint_paths",
    "render_json",
    "render_text",
]
