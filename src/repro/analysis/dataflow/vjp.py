"""VJP completeness: every parent gets a gradient on every path.

For each ``Tensor._from_op`` call site the analysis resolves

* the **parents** — a tuple literal (fixed arity, possibly several
  arities via a conditional like ``linear``'s optional bias), a starred
  tuple or a list-of-tensors variable (variadic), and
* the **backward** — an inline lambda, a nested ``def``, or a name
  bound to lambdas on several branches (``transpose``),

then checks that every return of every backward form produces one
gradient per parent, and that a gradient is only ever the literal
``None`` under a ``requires_grad`` guard (the tape's sanctioned way to
skip a constant operand) or a contract-declared non-differentiable
position. A parent position whose *every* reaching value is ``None``
is a dropped gradient — the exact bug class that silently skews the
Eq. 2 mixture weights.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Iterator

from repro.analysis.dataflow.contracts import ContractTable
from repro.analysis.dataflow.ir import (
    TENSOR_LIST,
    FromOpSite,
    dotted_name,
)
from repro.analysis.findings import Finding, Severity

__all__ = ["check_vjp_site"]

_GUARDED_NONE = "guarded-none"
_BARE_NONE = "bare-none"
_VALUE = "value"


@dataclasses.dataclass
class _Parents:
    variadic: bool
    arities: set[int] = dataclasses.field(default_factory=set)
    names: dict[int, set[str]] = dataclasses.field(default_factory=dict)

    def record(self, elements: list[ast.expr]) -> None:
        self.arities.add(len(elements))
        for i, element in enumerate(elements):
            name = element.id if isinstance(element, ast.Name) else None
            if name:
                self.names.setdefault(i, set()).add(name)


def _resolve_parents(site: FromOpSite) -> _Parents | None:
    expr = site.parents_arg
    if expr is None:
        return None
    parents = _Parents(variadic=False)
    for candidate in _parent_tuple_candidates(site, expr):
        if candidate == "variadic":
            parents.variadic = True
        else:
            parents.record(candidate)
    if not parents.variadic and not parents.arities:
        return None
    return parents


def _parent_tuple_candidates(
    site: FromOpSite, expr: ast.expr
) -> Iterator[list[ast.expr] | str]:
    if isinstance(expr, (ast.Tuple, ast.List)):
        if any(isinstance(e, ast.Starred) for e in expr.elts):
            yield "variadic"
        else:
            yield list(expr.elts)
        return
    if isinstance(expr, ast.IfExp):
        yield from _parent_tuple_candidates(site, expr.body)
        yield from _parent_tuple_candidates(site, expr.orelse)
        return
    if isinstance(expr, ast.Name):
        # Syntactic bindings first: a name bound to literal tuples (or
        # a conditional between them, like ``linear``'s optional bias)
        # has *known* arities even though its runtime type is a tuple
        # of tensors. Only an unresolvable tensor-list name (a built
        # ``list`` of parents) is treated as variadic.
        yielded = False
        for bound, _guards in site.bindings.get(expr.id, []):
            for candidate in _parent_tuple_candidates(site, bound):
                yielded = True
                yield candidate
        if yielded:
            return
        value = site.env.get(expr.id)
        if value is not None and value.kind == TENSOR_LIST:
            yield "variadic"


def _backward_nodes(site: FromOpSite) -> list[ast.AST]:
    expr = site.backward_arg
    if expr is None:
        return []
    if isinstance(expr, ast.Lambda):
        return [expr]
    if isinstance(expr, ast.Name):
        nodes: list[ast.AST] = [
            n
            for n in site.closures.get(expr.id, [])
            if isinstance(n, (ast.FunctionDef, ast.Lambda))
        ]
        for bound, _guards in site.bindings.get(expr.id, []):
            if isinstance(bound, ast.Lambda):
                nodes.append(bound)
        return nodes
    return []


def _param_count(node: ast.AST) -> int:
    args = node.args
    return len(args.posonlyargs) + len(args.args) + len(args.kwonlyargs)


def _collect_returns(
    node: ast.AST,
) -> list[tuple[ast.expr, tuple[ast.expr, ...]]]:
    """(return expression, enclosing If-test chain) per reachable return."""
    if isinstance(node, ast.Lambda):
        return [(node.body, ())]
    returns: list[tuple[ast.expr, tuple[ast.expr, ...]]] = []

    def walk(body: list[ast.stmt], guards: tuple[ast.expr, ...]) -> None:
        for stmt in body:
            if isinstance(stmt, ast.Return):
                if stmt.value is not None:
                    returns.append((stmt.value, guards))
            elif isinstance(stmt, ast.If):
                walk(stmt.body, guards + (stmt.test,))
                walk(stmt.orelse, guards + (stmt.test,))
            elif isinstance(stmt, (ast.For, ast.While, ast.With)):
                walk(stmt.body, guards)
                walk(stmt.orelse if hasattr(stmt, "orelse") else [], guards)
            elif isinstance(stmt, ast.Try):
                walk(stmt.body, guards)
                for handler in stmt.handlers:
                    walk(handler.body, guards)
                walk(stmt.orelse, guards)
                walk(stmt.finalbody, guards)
            # Nested defs/lambdas are their own scope: don't descend.

    walk(node.body, ())
    return returns


def _collect_assignments(
    node: ast.AST,
) -> dict[str, list[tuple[ast.expr, tuple[ast.expr, ...]]]]:
    """Name -> [(assigned expr, enclosing If-test chain)] inside a def."""
    if not isinstance(node, ast.FunctionDef):
        return {}
    assignments: dict[str, list[tuple[ast.expr, tuple[ast.expr, ...]]]] = {}

    def walk(body: list[ast.stmt], guards: tuple[ast.expr, ...]) -> None:
        for stmt in body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        assignments.setdefault(target.id, []).append(
                            (stmt.value, guards)
                        )
            elif isinstance(stmt, ast.If):
                walk(stmt.body, guards + (stmt.test,))
                walk(stmt.orelse, guards + (stmt.test,))
            elif isinstance(stmt, (ast.For, ast.While, ast.With)):
                walk(stmt.body, guards)

    walk(node.body, ())
    return assignments


def _mentions_requires_grad(guards: tuple[ast.expr, ...]) -> bool:
    for guard in guards:
        for child in ast.walk(guard):
            if isinstance(child, ast.Attribute) and child.attr == "requires_grad":
                return True
    return False


def _gradient_states(
    expr: ast.expr,
    guards: tuple[ast.expr, ...],
    assignments: dict[str, list[tuple[ast.expr, tuple[ast.expr, ...]]]],
    depth: int = 0,
) -> set[str]:
    """Classify every value a gradient element can resolve to."""
    if depth > 8:
        return {_VALUE}
    if isinstance(expr, ast.Constant) and expr.value is None:
        if _mentions_requires_grad(guards):
            return {_GUARDED_NONE}
        return {_BARE_NONE}
    if isinstance(expr, ast.IfExp):
        states = _gradient_states(
            expr.body, guards + (expr.test,), assignments, depth + 1
        )
        states |= _gradient_states(
            expr.orelse, guards + (expr.test,), assignments, depth + 1
        )
        return states
    if isinstance(expr, ast.Name):
        bound = assignments.get(expr.id)
        if bound:
            states: set[str] = set()
            for value, value_guards in bound:
                states |= _gradient_states(
                    value, guards + value_guards, assignments, depth + 1
                )
            return states
        return {_VALUE}
    return {_VALUE}


def check_vjp_site(
    site: FromOpSite, contracts: ContractTable, path: str
) -> Iterator[Finding]:
    function = site.function
    key = function.key
    contract = contracts.get(key)
    call = site.call

    def finding(rule: str, severity: Severity, message: str, node: ast.AST = call):
        return Finding(
            rule_id=rule,
            severity=severity,
            path=path,
            line=getattr(node, "lineno", call.lineno),
            col=getattr(node, "col_offset", call.col_offset),
            message=message,
            symbol=key,
        )

    if len(call.args) < 3:
        yield finding(
            "vjp-malformed",
            Severity.ERROR,
            f"{key}: _from_op needs (data, parents, backward_fn), "
            f"got {len(call.args)} positional arguments",
        )
        return

    parents = _resolve_parents(site)
    backwards = _backward_nodes(site)
    if not backwards:
        rendered = dotted_name(site.backward_arg) or "<expr>"
        yield finding(
            "vjp-unresolved-backward",
            Severity.WARNING,
            f"{key}: backward {rendered!r} could not be resolved "
            "statically; gradcheck is the only guard for this op",
        )
        return

    for backward in backwards:
        if _param_count(backward) != 1:
            yield finding(
                "vjp-backward-signature",
                Severity.ERROR,
                f"{key}: backward takes {_param_count(backward)} "
                "parameters; the tape calls it with exactly one output "
                "gradient",
                backward,
            )
            continue
        returns = _collect_returns(backward)
        if not returns:
            yield finding(
                "vjp-arity-mismatch",
                Severity.ERROR,
                f"{key}: backward has no return; every parent must "
                "receive a gradient (or a guarded None)",
                backward,
            )
            continue
        assignments = _collect_assignments(backward)
        fixed_returns: list[tuple[list[ast.expr], tuple[ast.expr, ...]]] = []
        saw_variadic_return = False
        for value, guards in returns:
            if isinstance(value, (ast.Tuple, ast.List)):
                fixed_returns.append((list(value.elts), guards))
            elif (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id == "tuple"
            ):
                saw_variadic_return = True
            else:
                # A bare Name / expression return: arity unknown.
                saw_variadic_return = True

        if parents is None:
            continue  # unresolvable parents: nothing provable here

        if parents.variadic:
            for elements, _guards in fixed_returns:
                yield finding(
                    "vjp-arity-mismatch",
                    Severity.ERROR,
                    f"{key}: parents are variadic but backward returns a "
                    f"fixed {len(elements)}-tuple",
                    backward,
                )
            continue

        for elements, _guards in fixed_returns:
            if len(elements) not in parents.arities:
                expected = "/".join(str(a) for a in sorted(parents.arities))
                yield finding(
                    "vjp-arity-mismatch",
                    Severity.ERROR,
                    f"{key}: backward returns {len(elements)} gradients "
                    f"for {expected} parent(s)",
                    backward,
                )

        if saw_variadic_return or not fixed_returns:
            continue

        max_arity = max(parents.arities)
        for position in range(max_arity):
            if position in contract.nondiff:
                continue
            states: set[str] = set()
            for elements, guards in fixed_returns:
                if position < len(elements):
                    states |= _gradient_states(
                        elements[position], guards, assignments
                    )
            if not states:
                continue
            parent_name = "/".join(sorted(parents.names.get(position, ()))) or str(
                position
            )
            if _VALUE not in states:
                yield finding(
                    "vjp-dropped-grad",
                    Severity.ERROR,
                    f"{key}: parent {position} ({parent_name}) never "
                    "receives a gradient — every path returns None; "
                    "declare nondiff=({},) in its contract if intentional".format(
                        position
                    ),
                    backward,
                )
            elif _BARE_NONE in states:
                yield finding(
                    "vjp-conditional-grad",
                    Severity.WARNING,
                    f"{key}: parent {position} ({parent_name}) can receive "
                    "None without a requires_grad guard; the tape will "
                    "silently drop its gradient on that path",
                    backward,
                )
