"""Static reader for the autograd contract declarations.

Contracts live with the code they describe
(:mod:`repro.autograd.contracts`): a literal ``CONTRACTS`` table plus
an optional ``@contract(...)`` decorator form. Both are read *off the
AST* here — the checker never imports the package under analysis, so
it can check a tree that does not import cleanly.
"""

from __future__ import annotations

import ast
import dataclasses

from repro.analysis.dataflow.ir import ModuleInfo, Program

__all__ = ["Contract", "ContractTable", "load_contracts"]

_EMPTY_TUPLE: tuple = ()


@dataclasses.dataclass(frozen=True)
class Contract:
    """Declared deviations of one function (all fields default empty)."""

    retains: tuple[str, ...] = _EMPTY_TUPLE
    mutates: tuple[str, ...] = _EMPTY_TUPLE
    globals: tuple[str, ...] = _EMPTY_TUPLE
    nondiff: tuple[int, ...] = _EMPTY_TUPLE
    reason: str = ""

    @classmethod
    def from_mapping(cls, mapping: dict) -> "Contract":
        return cls(
            retains=tuple(mapping.get("retains", ())),
            mutates=tuple(mapping.get("mutates", ())),
            globals=tuple(mapping.get("globals", ())),
            nondiff=tuple(int(i) for i in mapping.get("nondiff", ())),
            reason=str(mapping.get("reason", "")),
        )


_EMPTY_CONTRACT = Contract()


@dataclasses.dataclass
class ContractTable:
    """Merged contract declarations, keyed by ``module.qualname``."""

    entries: dict[str, Contract] = dataclasses.field(default_factory=dict)

    def get(self, key: str) -> Contract:
        return self.entries.get(key, _EMPTY_CONTRACT)

    def declare(self, key: str, contract: Contract) -> None:
        existing = self.entries.get(key)
        if existing is None:
            self.entries[key] = contract
        else:
            self.entries[key] = Contract(
                retains=existing.retains + contract.retains,
                mutates=existing.mutates + contract.mutates,
                globals=existing.globals + contract.globals,
                nondiff=existing.nondiff + contract.nondiff,
                reason=existing.reason or contract.reason,
            )


def _table_from_module(module: ModuleInfo, table: ContractTable) -> None:
    """Read the literal ``CONTRACTS`` dict off the contracts module AST."""
    for stmt in module.tree.body:
        if not isinstance(stmt, ast.Assign):
            continue
        targets = [t.id for t in stmt.targets if isinstance(t, ast.Name)]
        if "CONTRACTS" not in targets:
            continue
        try:
            literal = ast.literal_eval(stmt.value)
        except ValueError:
            continue  # non-literal table: decorator form still applies
        if isinstance(literal, dict):
            for key, mapping in literal.items():
                if isinstance(key, str) and isinstance(mapping, dict):
                    table.declare(key, Contract.from_mapping(mapping))


def _decorators_from_module(module: ModuleInfo, table: ContractTable) -> None:
    """Read ``@contract(...)`` keyword literals off function definitions."""
    for info in module.functions.values():
        for decorator in info.node.decorator_list:
            if not isinstance(decorator, ast.Call):
                continue
            name = decorator.func
            called = (
                name.id
                if isinstance(name, ast.Name)
                else name.attr
                if isinstance(name, ast.Attribute)
                else None
            )
            if called != "contract":
                continue
            mapping: dict = {}
            for keyword in decorator.keywords:
                if keyword.arg is None:
                    continue
                try:
                    mapping[keyword.arg] = ast.literal_eval(keyword.value)
                except ValueError:
                    continue
            table.declare(info.key, Contract.from_mapping(mapping))


def load_contracts(program: Program) -> ContractTable:
    """Contracts for ``program``: the table module plus all decorators.

    An annotated-assign form of ``CONTRACTS`` (``CONTRACTS: dict = {...}``)
    is also honoured via the plain-assign scan because the contracts
    module uses ``CONTRACTS: dict[str, dict] = {...}``.
    """
    table = ContractTable()
    contracts_module = program.modules.get("contracts")
    if contracts_module is not None:
        _table_from_module(contracts_module, table)
        # CONTRACTS is declared with an annotation; cover AnnAssign too.
        for stmt in contracts_module.tree.body:
            if (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.target.id == "CONTRACTS"
                and stmt.value is not None
            ):
                try:
                    literal = ast.literal_eval(stmt.value)
                except ValueError:
                    continue
                if isinstance(literal, dict):
                    for key, mapping in literal.items():
                        if isinstance(key, str) and isinstance(mapping, dict):
                            table.declare(key, Contract.from_mapping(mapping))
    for module in program.modules.values():
        _decorators_from_module(module, table)
    return table
