"""Orchestrates the four dataflow analyses into one check run.

:func:`check_paths` is the engine behind ``repro check``: build the
:class:`~repro.analysis.dataflow.ir.Program`, load contracts, run the
effect fixpoint, then the per-site VJP and capture analyses, apply
inline ``# lint: disable=`` suppressions (same syntax as the linter)
and the committed baseline, and return everything in the shared
:class:`~repro.analysis.engine.AnalysisResult` shape so the existing
reporters, sorting and severity accounting apply unchanged.

The baseline (``src/repro/analysis/check_baseline.json``) grandfathers
known findings: each entry matches on ``(rule, path suffix, symbol)``
— deliberately not on line numbers, so unrelated edits do not churn
it. Baselined findings are reported separately and do not fail the
check; removing the code (or declaring a contract) removes the entry.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Iterable

from repro.analysis.dataflow.captures import capture_findings, classify_site_captures
from repro.analysis.dataflow.contracts import ContractTable, load_contracts
from repro.analysis.dataflow.effects import (
    AnalyzedProgram,
    analyze_program,
    escape_findings,
    purity_findings,
)
from repro.analysis.dataflow.ir import Program
from repro.analysis.dataflow.vjp import check_vjp_site
from repro.analysis.engine import AnalysisResult, collect_suppressions
from repro.analysis.findings import Finding
from repro.analysis.linter import discover_files

__all__ = ["CheckResult", "check_paths", "load_baseline", "DEFAULT_BASELINE"]

DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / "check_baseline.json"


@dataclasses.dataclass
class CheckResult:
    """Findings, grandfathered findings, and the capture report."""

    result: AnalysisResult
    baselined: list[Finding] = dataclasses.field(default_factory=list)
    captures: list[dict] = dataclasses.field(default_factory=list)

    @property
    def exit_code(self) -> int:
        """Nonzero exactly when unbaselined error findings exist."""
        return 1 if self.result.error_count else 0


def load_baseline(path: str | Path | None = None) -> list[dict]:
    """The committed baseline entries ([] when the file is absent)."""
    baseline_path = Path(path) if path is not None else DEFAULT_BASELINE
    if not baseline_path.is_file():
        return []
    payload = json.loads(baseline_path.read_text(encoding="utf-8"))
    entries = payload.get("findings", payload) if isinstance(payload, dict) else payload
    return [e for e in entries if isinstance(e, dict)]


def _matches_baseline(finding: Finding, entries: list[dict]) -> bool:
    normalized = finding.path.replace("\\", "/")
    for entry in entries:
        if entry.get("rule") != finding.rule_id:
            continue
        suffix = str(entry.get("path", "")).replace("\\", "/")
        if suffix and not normalized.endswith(suffix):
            continue
        symbol = entry.get("symbol")
        if symbol is not None and symbol != finding.symbol:
            continue
        return True
    return False


def check_paths(
    paths: Iterable[str | Path],
    baseline_path: str | Path | None = None,
    contracts: ContractTable | None = None,
) -> CheckResult:
    """Run the dataflow checks over every python file under ``paths``."""
    files = discover_files(paths)
    program = Program.build(files)
    if contracts is None:
        contracts = load_contracts(program)
    analyzed = analyze_program(program)

    findings, captures = _collect(analyzed, contracts)

    # Inline suppressions: same ``# lint: disable=<rule>`` syntax and
    # semantics as the linter, so one mechanism serves both commands.
    suppressions = {
        module.path: collect_suppressions(module.source)
        for module in program.modules.values()
    }
    baseline = load_baseline(baseline_path)

    result = AnalysisResult(files=len(files))
    baselined: list[Finding] = []
    for finding in findings:
        disabled = suppressions.get(finding.path, {}).get(finding.line, set())
        if finding.rule_id in disabled or "all" in disabled:
            result.suppressed.append(finding)
        elif _matches_baseline(finding, baseline):
            baselined.append(finding)
        else:
            result.findings.append(finding)
    result.sort()
    baselined.sort(key=lambda f: f.sort_key)
    return CheckResult(result=result, baselined=baselined, captures=captures)


def _collect(
    analyzed: AnalyzedProgram, contracts: ContractTable
) -> tuple[list[Finding], list[dict]]:
    findings: list[Finding] = []
    captures: list[dict] = []
    paths = {
        name: module.path for name, module in analyzed.program.modules.items()
    }
    for site in sorted(
        analyzed.from_op_sites,
        key=lambda s: (s.function.module, s.call.lineno),
    ):
        path = paths.get(site.function.module, site.function.module)
        findings.extend(check_vjp_site(site, contracts, path))
        record = classify_site_captures(site, contracts)
        if record is not None:
            record["path"] = path
            captures.append(record)
            findings.extend(capture_findings(record, contracts, path))
    findings.extend(escape_findings(analyzed, contracts))
    findings.extend(purity_findings(analyzed, contracts))
    return _dedupe(findings), captures


def _dedupe(findings: list[Finding]) -> list[Finding]:
    seen: set[tuple] = set()
    unique: list[Finding] = []
    for finding in findings:
        key = (finding.rule_id, finding.path, finding.line, finding.message)
        if key not in seen:
            seen.add(key)
            unique.append(finding)
    return unique
