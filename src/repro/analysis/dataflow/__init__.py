"""Interprocedural dataflow analysis over the autograd layer.

``repro check`` runs four semantic analyses the single-file syntactic
linter cannot express (see DESIGN section 9):

* **VJP completeness** (:mod:`.vjp`) — every ``Tensor._from_op`` site
  returns one gradient per parent on every control-flow path, and a
  gradient is only ever ``None`` under a ``requires_grad`` guard or a
  declared non-differentiable contract.
* **closure-capture weight** (:mod:`.captures`) — what each backward
  closure keeps alive, classified (parent / output / view / index /
  scalar / derived full array), with derived full arrays gated by the
  contract table in :mod:`repro.autograd.contracts`.
* **in-place escape** (:mod:`.effects`) — interprocedural tracking of
  writes that can reach tape-held storage (parameter arrays, parent
  ``.data``, arrays already promoted onto the tape).
* **kernel purity** (:mod:`.effects`) — public kernel entry points
  neither mutate their inputs nor write module globals, so the
  ``REPRO_KERNELS`` backends stay freely swappable.

:func:`check_paths` is the façade the CLI and the tier-1 self-check
test call; it reuses the PR-1 finding/result machinery so text/JSON
reporting, sorting and severity accounting come for free.
"""

from repro.analysis.dataflow.checker import (
    CheckResult,
    check_paths,
    load_baseline,
)
from repro.analysis.dataflow.contracts import ContractTable, load_contracts
from repro.analysis.dataflow.ir import FunctionInfo, ModuleInfo, Program

__all__ = [
    "CheckResult",
    "check_paths",
    "load_baseline",
    "ContractTable",
    "load_contracts",
    "FunctionInfo",
    "ModuleInfo",
    "Program",
]
