"""Program model and storage-class interpreter for the dataflow checks.

The IR is deliberately shallow: modules are parsed ASTs plus symbol
tables, and the "dataflow" part is a flow-sensitive abstract
interpreter (:class:`Interp`) that walks one function body in statement
order tracking, per local name, a :class:`Value` — *what kind of thing
it is* (tensor, tensor storage, derived array, index array, scalar,
plan, …) and *which storage class backs it* (freshly allocated here, a
caller-owned parameter, tape-promoted, module-global).

The four analyses consume the facts the interpreter collects:

* ``from_op_sites`` — every ``Tensor._from_op`` call with a snapshot of
  the environment and name bindings at the call point (VJP + captures);
* ``escape_writes`` — writes whose target resolves to param/tape
  storage (in-place escape);
* ``mutated_params`` / ``global_writes`` / ``returns_fresh`` — the
  interprocedural effect summary (kernel purity, and propagation of
  callee mutations to caller arguments).

Flow-sensitivity is what lets ``segment_max`` patch its freshly
allocated output *before* the ``_from_op`` call without a finding,
while the same write after tape promotion is flagged: the data
argument (and every array a backward closure captures) is promoted to
``tape`` storage at the ``_from_op`` statement, and closures are
interpreted afterwards against that final environment.
"""

from __future__ import annotations

import ast
import builtins
import dataclasses
from pathlib import Path
from typing import Iterable

__all__ = [
    "Value",
    "FunctionInfo",
    "ModuleInfo",
    "Program",
    "Summary",
    "FromOpSite",
    "EscapeWrite",
    "Interp",
    "dotted_name",
]

# ---------------------------------------------------------------------------
# value kinds and storage classes
# ---------------------------------------------------------------------------
# kinds (what the value is — drives capture classification)
TENSOR = "tensor"  # a Tensor object
TENSOR_LIST = "tensor-list"  # list/tuple of Tensors (variadic parents)
TENSOR_DATA = "tensor-data"  # bare X.data of a Tensor
TENSOR_VIEW = "tensor-view"  # zero-copy view of tensor storage
HEAVY = "heavy"  # full-size derived array (a real allocation)
INDEX = "index"  # integer index / id / count array
SCALAR = "scalar"  # number, shape, bool, string
PLAN = "plan"  # SegmentPlan
RNG = "rng"  # np.random.Generator
SELF = "self"
UNKNOWN = "unknown"

_TENSORISH = frozenset({TENSOR, TENSOR_LIST, TENSOR_DATA, TENSOR_VIEW, HEAVY})

# storage classes (who owns the backing memory — drives escape analysis)
FRESH = "fresh"  # allocated inside the current function
PARAM_STORE = "param"  # caller-owned (parameter or alias of one)
TAPE = "tape"  # promoted onto the autograd tape
GLOBAL_STORE = "global"  # module-global container
NO_STORE = "none"  # scalars etc.

_KIND_PRIORITY = {
    HEAVY: 9,
    TENSOR_DATA: 8,
    TENSOR_VIEW: 7,
    TENSOR: 6,
    TENSOR_LIST: 6,
    RNG: 5,
    PLAN: 4,
    INDEX: 3,
    SCALAR: 2,
    SELF: 1,
    UNKNOWN: 0,
}
_STORE_PRIORITY = {TAPE: 4, PARAM_STORE: 3, GLOBAL_STORE: 2, UNKNOWN: 1, FRESH: 1, NO_STORE: 0}


@dataclasses.dataclass(frozen=True)
class Value:
    """Abstract value of one local name: (kind, storage class)."""

    kind: str = UNKNOWN
    storage: str = FRESH

    def join(self, other: "Value") -> "Value":
        kind = max((self.kind, other.kind), key=lambda k: _KIND_PRIORITY.get(k, 0))
        storage = max(
            (self.storage, other.storage),
            key=lambda s: _STORE_PRIORITY.get(s, 0),
        )
        return Value(kind, storage)


_SCALAR_VALUE = Value(SCALAR, NO_STORE)
_UNKNOWN_VALUE = Value(UNKNOWN, UNKNOWN)

# names that, as parameters, denote integer index/id arrays or sizes
INDEX_PARAM_NAMES = frozenset(
    {
        "index",
        "indices",
        "segment_ids",
        "src_index",
        "dst_index",
        "order",
        "targets",
        "axes",
        "axis",
        "shape",
        "num_segments",
        "num_rows",
        "minlength",
        "row_width",
    }
)

_ALLOCATORS = frozenset(
    {
        "zeros",
        "zeros_like",
        "ones",
        "ones_like",
        "empty",
        "empty_like",
        "full",
        "full_like",
        "array",
        "copy",
        "eye",
    }
)
_INDEX_PRODUCERS = frozenset(
    {"arange", "argsort", "flatnonzero", "searchsorted", "argmax", "argmin"}
)
_SCALAR_CASTS = frozenset({"float", "int", "bool", "len", "str", "id", "repr"})
# array-returning methods that alias their receiver's storage
_VIEW_METHODS = frozenset({"reshape", "ravel", "swapaxes", "transpose", "view"})
_SCALAR_ATTRS = frozenset({"shape", "size", "ndim", "dtype", "nbytes", "requires_grad"})
_SCALAR_METHODS = frozenset({"item", "tolist", "get", "keys", "values", "sum_scalar"})
# container-mutating methods: calling one on a *module-global name* is a
# global write (``_PLAN_MEMO.move_to_end`` / ``.popitem``)
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "add",
        "discard",
        "move_to_end",
        "sort",
        "fill",
    }
)

_BUILTIN_NAMES = frozenset(dir(builtins))


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


# ---------------------------------------------------------------------------
# program model
# ---------------------------------------------------------------------------
@dataclasses.dataclass
class FunctionInfo:
    """One analyzed function (module-level or method)."""

    module: str
    qualname: str
    node: ast.FunctionDef
    class_name: str | None = None

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def key(self) -> str:
        """Contract-table key: ``module.qualname``."""
        return f"{self.module}.{self.qualname}"

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    @property
    def is_public(self) -> bool:
        return not self.name.startswith("_")

    @property
    def params(self) -> list[str]:
        args = self.node.args
        names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        if args.vararg:
            names.append(args.vararg.arg)
        if args.kwarg:
            names.append(args.kwarg.arg)
        return names

    def param_positions(self) -> dict[str, int]:
        args = self.node.args
        positional = [a.arg for a in args.posonlyargs + args.args]
        return {name: i for i, name in enumerate(positional)}


@dataclasses.dataclass
class ModuleInfo:
    """Parsed module plus symbol tables."""

    name: str  # stem, e.g. "kernels"
    path: str
    tree: ast.Module
    source: str
    functions: dict[str, FunctionInfo] = dataclasses.field(default_factory=dict)
    import_aliases: dict[str, str] = dataclasses.field(default_factory=dict)
    global_names: set[str] = dataclasses.field(default_factory=set)
    exported: set[str] = dataclasses.field(default_factory=set)

    @classmethod
    def parse(cls, path: str | Path, source: str | None = None) -> "ModuleInfo":
        path = Path(path)
        if source is None:
            source = path.read_text(encoding="utf-8")
        tree = ast.parse(source)
        info = cls(name=path.stem, path=str(path), tree=tree, source=source)
        info._collect()
        return info

    def _collect(self) -> None:
        for stmt in self.tree.body:
            if isinstance(stmt, ast.FunctionDef):
                self.functions[stmt.name] = FunctionInfo(
                    module=self.name, qualname=stmt.name, node=stmt
                )
                self.global_names.add(stmt.name)
            elif isinstance(stmt, ast.ClassDef):
                self.global_names.add(stmt.name)
                for item in stmt.body:
                    if isinstance(item, ast.FunctionDef):
                        qualname = f"{stmt.name}.{item.name}"
                        self.functions[qualname] = FunctionInfo(
                            module=self.name,
                            qualname=qualname,
                            node=item,
                            class_name=stmt.name,
                        )
            elif isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    local = alias.asname or alias.name.split(".")[0]
                    self.import_aliases[local] = alias.name
                    self.global_names.add(local)
            elif isinstance(stmt, ast.ImportFrom):
                for alias in stmt.names:
                    local = alias.asname or alias.name
                    module = stmt.module or ""
                    self.import_aliases[local] = f"{module}.{alias.name}"
                    self.global_names.add(local)
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                for target in targets:
                    if isinstance(target, ast.Name):
                        self.global_names.add(target.id)
                        if target.id == "__all__" and isinstance(
                            stmt.value, (ast.List, ast.Tuple)
                        ):
                            self.exported.update(
                                elt.value
                                for elt in stmt.value.elts
                                if isinstance(elt, ast.Constant)
                                and isinstance(elt.value, str)
                            )

    def public_functions(self) -> list[FunctionInfo]:
        """Module-level functions in ``__all__`` (or all non-underscore)."""
        out = []
        for qualname, info in self.functions.items():
            if info.is_method:
                continue
            if self.exported:
                if qualname in self.exported:
                    out.append(info)
            elif info.is_public:
                out.append(info)
        return out


@dataclasses.dataclass
class Program:
    """The analyzed module set with cross-module call resolution."""

    modules: dict[str, ModuleInfo] = dataclasses.field(default_factory=dict)

    @classmethod
    def build(cls, paths: Iterable[str | Path]) -> "Program":
        program = cls()
        for path in paths:
            info = ModuleInfo.parse(path)
            program.modules[info.name] = info
        return program

    def functions(self) -> Iterable[FunctionInfo]:
        for module in self.modules.values():
            yield from module.functions.values()

    def resolve_call(
        self, module: ModuleInfo, call: ast.Call
    ) -> FunctionInfo | None:
        """The FunctionInfo a call refers to, when statically resolvable."""
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
            target = module.functions.get(name)
            if target is not None:
                return target
            alias = module.import_aliases.get(name)
            if alias and "." in alias:
                # ``from repro.autograd.kernels import scatter_sum``
                mod_path, _, attr = alias.rpartition(".")
                target_module = self.modules.get(mod_path.rpartition(".")[2])
                if target_module is not None:
                    return target_module.functions.get(attr)
            return None
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            base = func.value.id
            alias = module.import_aliases.get(base, base)
            # ``from repro.autograd import kernels`` -> alias "repro.autograd.kernels"
            target_module = self.modules.get(alias.rpartition(".")[2])
            if target_module is not None:
                return target_module.functions.get(func.attr)
        return None


# ---------------------------------------------------------------------------
# interpreter outputs
# ---------------------------------------------------------------------------
@dataclasses.dataclass
class FromOpSite:
    """One ``Tensor._from_op`` call site with its local context."""

    function: FunctionInfo
    call: ast.Call
    env: dict[str, Value]
    bindings: dict[str, list[tuple[ast.expr, tuple[ast.expr, ...]]]]
    closures: dict[str, list[ast.AST]]

    @property
    def data_arg(self) -> ast.expr | None:
        return self.call.args[0] if len(self.call.args) >= 1 else None

    @property
    def parents_arg(self) -> ast.expr | None:
        return self.call.args[1] if len(self.call.args) >= 2 else None

    @property
    def backward_arg(self) -> ast.expr | None:
        return self.call.args[2] if len(self.call.args) >= 3 else None


@dataclasses.dataclass
class EscapeWrite:
    """A write whose target resolves to caller/tape-owned tensor storage."""

    function: FunctionInfo
    node: ast.AST
    target: str  # rendered target, e.g. "a.data" or "mask"
    storage: str  # PARAM_STORE or TAPE
    in_backward: bool
    via_call: str | None = None  # callee name when the write is interprocedural


@dataclasses.dataclass
class Summary:
    """Interprocedural effect summary of one function."""

    mutated_params: set[str] = dataclasses.field(default_factory=set)
    global_writes: set[str] = dataclasses.field(default_factory=set)
    returns_fresh: bool = True

    def copy(self) -> "Summary":
        return Summary(
            set(self.mutated_params), set(self.global_writes), self.returns_fresh
        )


# ---------------------------------------------------------------------------
# the interpreter
# ---------------------------------------------------------------------------
def _annotation_text(node: ast.expr | None) -> str:
    if node is None:
        return ""
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on parsed trees
        return ""


def _initial_param_value(arg: ast.arg) -> Value:
    text = _annotation_text(arg.annotation)
    name = arg.arg
    if name == "self":
        return Value(SELF, PARAM_STORE)
    if name in INDEX_PARAM_NAMES:
        return Value(INDEX, PARAM_STORE)
    if "SegmentPlan" in text:
        return Value(PLAN, PARAM_STORE)
    if "Generator" in text:
        return Value(RNG, PARAM_STORE)
    if any(t in text for t in ("int", "float", "bool", "str")) and "ndarray" not in text:
        return Value(SCALAR, NO_STORE)
    if "Tensor" in text:
        return Value(TENSOR, PARAM_STORE)
    if "ndarray" in text:
        return Value(HEAVY, PARAM_STORE)
    return Value(UNKNOWN, PARAM_STORE)


def _is_pure_view_slice(node: ast.expr) -> bool:
    """True when a subscript cannot copy (slices/ints/None/Ellipsis only)."""
    parts = node.elts if isinstance(node, ast.Tuple) else [node]
    for part in parts:
        if isinstance(part, ast.Slice):
            continue
        if isinstance(part, ast.Constant) and (
            part.value is None
            or part.value is Ellipsis
            or isinstance(part.value, (int, bool))
        ):
            continue
        if isinstance(part, ast.UnaryOp) and isinstance(part.operand, ast.Constant):
            continue
        return False
    return True


class Interp:
    """Flow-sensitive walk of one function body collecting analysis facts."""

    def __init__(
        self,
        function: FunctionInfo,
        module: ModuleInfo,
        program: Program,
        summaries: dict[str, Summary],
        *,
        closure_env: dict[str, Value] | None = None,
        in_backward: bool = False,
    ):
        self.function = function
        self.module = module
        self.program = program
        self.summaries = summaries
        self.in_backward = in_backward

        self.env: dict[str, Value] = {}
        if closure_env:
            self.env.update(closure_env)
        args = function.node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if in_backward:
                # The incoming gradient may alias the caller's buffer;
                # writing through it is an escape.
                self.env[arg.arg] = Value(HEAVY, PARAM_STORE)
            else:
                self.env[arg.arg] = _initial_param_value(arg)
        if args.vararg:
            self.env[args.vararg.arg] = Value(UNKNOWN, PARAM_STORE)
        if args.kwarg:
            self.env[args.kwarg.arg] = Value(UNKNOWN, PARAM_STORE)

        self.declared_globals: set[str] = set()
        # name -> [(value expr, enclosing If-test chain), ...]
        self.bindings: dict[str, list[tuple[ast.expr, tuple[ast.expr, ...]]]] = {}
        self.closures: dict[str, list[ast.AST]] = {}
        # Keyed by AST node identity: loop bodies are interpreted twice
        # (abstract second iteration), which must not duplicate facts.
        self._from_op_by_node: dict[int, FromOpSite] = {}
        self._writes_by_key: dict[tuple, EscapeWrite] = {}
        self.summary = Summary()
        self._guard_stack: list[ast.expr] = []
        self._return_values: list[Value] = []

    @property
    def from_op_sites(self) -> list[FromOpSite]:
        return list(self._from_op_by_node.values())

    @property
    def escape_writes(self) -> list[EscapeWrite]:
        return list(self._writes_by_key.values())

    # -- entry point ---------------------------------------------------
    def run(self) -> None:
        self._exec_body(self.function.node.body)
        self.summary.returns_fresh = all(
            v.storage in (FRESH, NO_STORE) for v in self._return_values
        )
        # Closures see the *final* environment of the enclosing body,
        # with everything array-like pinned as tape storage: once the
        # tape node exists, those arrays belong to the backward pass.
        closure_env = {
            name: (
                Value(value.kind, TAPE)
                if value.kind in _TENSORISH and value.storage != GLOBAL_STORE
                else value
            )
            for name, value in self.env.items()
        }
        for name, nodes in self.closures.items():
            for node in nodes:
                self._run_closure(node, closure_env)

    def _run_closure(self, node: ast.AST, closure_env: dict[str, Value]) -> None:
        if isinstance(node, ast.Lambda):
            # Lambdas are expressions; classify the body for call-effects.
            body = [ast.Expr(value=node.body)]
            fn_node = ast.FunctionDef(
                name="<lambda>",
                args=node.args,
                body=body,
                decorator_list=[],
                returns=None,
            )
            ast.copy_location(fn_node, node)
            ast.fix_missing_locations(fn_node)
        elif isinstance(node, ast.FunctionDef):
            fn_node = node
        else:  # pragma: no cover - only defs and lambdas are recorded
            return
        info = FunctionInfo(
            module=self.function.module,
            qualname=f"{self.function.qualname}.{fn_node.name}",
            node=fn_node,
            class_name=self.function.class_name,
        )
        sub = Interp(
            info,
            self.module,
            self.program,
            self.summaries,
            closure_env=closure_env,
            in_backward=True,
        )
        sub.run()
        self._writes_by_key.update(sub._writes_by_key)

    # -- statements ----------------------------------------------------
    def _exec_body(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._exec(stmt)

    def _exec(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            value = self._classify(stmt.value)
            self._visit_calls(stmt.value)
            for target in stmt.targets:
                self._assign(target, stmt.value, value, stmt)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                value = self._classify(stmt.value)
                self._visit_calls(stmt.value)
                self._assign(stmt.target, stmt.value, value, stmt)
        elif isinstance(stmt, ast.AugAssign):
            value = self._classify(stmt.value).join(self._classify(stmt.target))
            self._visit_calls(stmt.value)
            self._check_write(stmt.target, stmt)
            if isinstance(stmt.target, ast.Name):
                self.env[stmt.target.id] = Value(value.kind, self._name_storage(stmt.target.id))
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._visit_calls(stmt.value)
                self._return_values.append(self._classify(stmt.value))
                self._record_binding("<return>", stmt.value)
            else:
                self._return_values.append(_SCALAR_VALUE)
        elif isinstance(stmt, ast.If):
            self._visit_calls(stmt.test)
            before = dict(self.env)
            self._guard_stack.append(stmt.test)
            self._exec_body(stmt.body)
            after_body = self.env
            self.env = dict(before)
            self._exec_body(stmt.orelse)
            self._guard_stack.pop()
            self.env = self._join_env(after_body, self.env)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._visit_calls(stmt.iter)
            self._bind_loop_target(stmt.target, stmt.iter)
            # Two passes so values defined late in the body reach uses
            # at the top on the abstract second iteration.
            for _ in range(2):
                self._exec_body(stmt.body)
            self._exec_body(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._visit_calls(stmt.test)
            for _ in range(2):
                self._exec_body(stmt.body)
            self._exec_body(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._visit_calls(item.context_expr)
                if item.optional_vars is not None and isinstance(
                    item.optional_vars, ast.Name
                ):
                    self.env[item.optional_vars.id] = _UNKNOWN_VALUE
            self._exec_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._exec_body(stmt.body)
            for handler in stmt.handlers:
                if handler.name:
                    self.env[handler.name] = _UNKNOWN_VALUE
                self._exec_body(handler.body)
            self._exec_body(stmt.orelse)
            self._exec_body(stmt.finalbody)
        elif isinstance(stmt, ast.FunctionDef):
            self.closures.setdefault(stmt.name, []).append(stmt)
            self.env[stmt.name] = _UNKNOWN_VALUE
        elif isinstance(stmt, ast.Global):
            self.declared_globals.update(stmt.names)
            for name in stmt.names:
                self.env[name] = Value(UNKNOWN, GLOBAL_STORE)
        elif isinstance(stmt, ast.Expr):
            self._visit_calls(stmt.value)
            self._classify(stmt.value)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._visit_calls(child)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._check_write(target, stmt)
        # Pass/Break/Continue/Import inside functions: nothing to track.

    def _assign(
        self,
        target: ast.expr,
        value_expr: ast.expr,
        value: Value,
        stmt: ast.stmt,
    ) -> None:
        if isinstance(target, ast.Name):
            if target.id in self.declared_globals:
                self.summary.global_writes.add(target.id)
                self.env[target.id] = Value(value.kind, GLOBAL_STORE)
            else:
                self.env[target.id] = value
                self._record_binding(target.id, value_expr)
            if isinstance(value_expr, ast.Lambda):
                self.closures.setdefault(target.id, []).append(value_expr)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            value_elts = (
                value_expr.elts
                if isinstance(value_expr, (ast.Tuple, ast.List))
                and len(value_expr.elts) == len(target.elts)
                else None
            )
            for i, element in enumerate(target.elts):
                if value_elts is not None:
                    self._assign(
                        element,
                        value_elts[i],
                        self._classify(value_elts[i]),
                        stmt,
                    )
                elif isinstance(element, ast.Name):
                    self.env[element.id] = _UNKNOWN_VALUE
            return
        # Subscript / Attribute target: a write through existing storage.
        self._check_write(target, stmt)

    def _bind_loop_target(self, target: ast.expr, iter_expr: ast.expr) -> None:
        element = self._element_value(iter_expr)
        if isinstance(target, ast.Name):
            self.env[target.id] = element
        elif isinstance(target, (ast.Tuple, ast.List)):
            if (
                isinstance(iter_expr, ast.Call)
                and isinstance(iter_expr.func, ast.Name)
                and iter_expr.func.id == "enumerate"
                and len(target.elts) == 2
                and iter_expr.args
            ):
                if isinstance(target.elts[0], ast.Name):
                    self.env[target.elts[0].id] = _SCALAR_VALUE
                inner = self._element_value(iter_expr.args[0])
                if isinstance(target.elts[1], ast.Name):
                    self.env[target.elts[1].id] = inner
                return
            for element_target in target.elts:
                if isinstance(element_target, ast.Name):
                    self.env[element_target.id] = _UNKNOWN_VALUE

    def _element_value(self, iter_expr: ast.expr) -> Value:
        if isinstance(iter_expr, ast.Call) and isinstance(iter_expr.func, ast.Name):
            if iter_expr.func.id in ("range", "enumerate"):
                return _SCALAR_VALUE
            if iter_expr.func.id == "zip":
                return _UNKNOWN_VALUE
        value = self._classify(iter_expr)
        if value.kind == TENSOR_LIST:
            return Value(TENSOR, value.storage)
        if value.kind in (INDEX, SCALAR):
            return Value(SCALAR, NO_STORE)
        if value.kind in (TENSOR_DATA, TENSOR_VIEW, HEAVY):
            return Value(value.kind, value.storage)
        return _UNKNOWN_VALUE

    def _record_binding(self, name: str, expr: ast.expr) -> None:
        guards = tuple(self._guard_stack)
        self.bindings.setdefault(name, []).append((expr, guards))

    def _join_env(
        self, left: dict[str, Value], right: dict[str, Value]
    ) -> dict[str, Value]:
        joined: dict[str, Value] = {}
        for name in set(left) | set(right):
            a, b = left.get(name), right.get(name)
            if a is None or b is None:
                joined[name] = a or b  # defined on one path only
            else:
                joined[name] = a.join(b)
        return joined

    # -- write / effect tracking ---------------------------------------
    def _name_storage(self, name: str) -> str:
        value = self.env.get(name)
        if value is not None:
            return value.storage
        if name in self.declared_globals or name in self.module.global_names:
            return GLOBAL_STORE
        return UNKNOWN

    def _write_root(self, target: ast.expr) -> tuple[str, str, str] | None:
        """Resolve a write target to (rendered name, kind, storage)."""
        node = target
        while isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Name):
            value = self.env.get(node.id)
            if value is not None:
                return node.id, value.kind, value.storage
            if node.id in self.module.global_names:
                return node.id, UNKNOWN, GLOBAL_STORE
            return node.id, UNKNOWN, UNKNOWN
        if isinstance(node, ast.Attribute):
            base = node.value
            if isinstance(base, ast.Name) and base.id == "self":
                return None  # method state; out of scope by design
            if node.attr == "writeable":
                return None  # ndarray.flags.writeable: metadata, not data
            rendered = dotted_name(node) or "<expr>"
            if node.attr in ("grad",):
                return None  # gradient slots are the accumulation target
            if node.attr == "data":
                base_value = self._classify(base)
                storage = (
                    base_value.storage
                    if base_value.storage in (TAPE, GLOBAL_STORE)
                    else PARAM_STORE
                )
                return rendered, TENSOR_DATA, storage
            base_value = self._classify(base)
            return rendered, base_value.kind, base_value.storage
        if isinstance(node, ast.Call):
            return None  # e.g. ``get_x()[i] = ...`` — not used in this tree
        return None

    def _check_write(
        self, target: ast.expr, stmt: ast.AST, via_call: str | None = None
    ) -> None:
        root = self._write_root(target)
        if root is None:
            return
        name, kind, storage = root
        base = name.split(".")[0].split("[")[0]
        if storage == GLOBAL_STORE:
            self.summary.global_writes.add(base)
            return
        if storage == PARAM_STORE:
            if base in self.function.params:
                self.summary.mutated_params.add(base)
            # A direct finding only when the write provably reaches
            # *tensor* storage (a ``.data`` alias) or happens inside a
            # backward closure. Plain array-parameter mutation is an
            # effect-summary fact: callers passing fresh arrays are
            # fine, callers passing tape storage get flagged at the
            # call site, and undeclared public kernels get flagged by
            # the purity check.
            if kind in (TENSOR, TENSOR_DATA, TENSOR_VIEW) or (
                self.in_backward and kind in _TENSORISH
            ):
                self._record_write(stmt, name, PARAM_STORE, via_call)
        elif storage == TAPE:
            self._record_write(stmt, name, TAPE, via_call)
        # FRESH / NO_STORE / UNKNOWN: local mutation, no escape.

    def _record_write(
        self, stmt: ast.AST, target: str, storage: str, via_call: str | None
    ) -> None:
        key = (self.function.qualname, id(stmt), target, storage, via_call)
        self._writes_by_key[key] = EscapeWrite(
            function=self.function,
            node=stmt,
            target=target,
            storage=storage,
            in_backward=self.in_backward,
            via_call=via_call,
        )

    def _visit_calls(self, expr: ast.expr) -> None:
        """Apply call effects (mutating callees, _from_op promotion).

        Does not descend into lambda bodies: those run at backward
        time and are interpreted separately as closures.
        """
        stack: list[ast.AST] = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Lambda):
                continue
            if isinstance(node, ast.Call):
                self._apply_call_effects(node)
            stack.extend(ast.iter_child_nodes(node))

    def _apply_call_effects(self, call: ast.Call) -> None:
        func = call.func
        dotted = dotted_name(func)
        # -- Tensor._from_op: record the site, promote tape storage.
        if isinstance(func, ast.Attribute) and func.attr == "_from_op":
            self._record_from_op(call)
            return
        # -- ufunc scatter: np.add.at(out, ...) writes arg 0 in place.
        if dotted is not None:
            parts = dotted.split(".")
            if len(parts) == 3 and parts[0] in ("np", "numpy") and parts[2] == "at":
                if call.args:
                    self._check_write(call.args[0], call, via_call=dotted)
                return
        # -- out= keyword writes through its argument.
        for keyword in call.keywords:
            if keyword.arg == "out":
                self._check_write(keyword.value, call, via_call=dotted or "<call>")
        # -- mutating container method on a module-global name.
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.attr in MUTATING_METHODS
        ):
            base = func.value.id
            if (
                base not in self.env
                and base in self.module.global_names
                or self.env.get(base, _UNKNOWN_VALUE).storage == GLOBAL_STORE
            ):
                self.summary.global_writes.add(base)
        # -- resolved callee with a mutation summary.
        target = self.program.resolve_call(self.module, call)
        if target is not None and not target.is_method:
            summary = self.summaries.get(target.key)
            if summary is not None and summary.mutated_params:
                positions = target.param_positions()
                for param in summary.mutated_params:
                    position = positions.get(param)
                    if position is None or position >= len(call.args):
                        for keyword in call.keywords:
                            if keyword.arg == param:
                                self._check_write(
                                    keyword.value, call, via_call=target.key
                                )
                        continue
                    self._check_write(
                        call.args[position], call, via_call=target.key
                    )

    def _record_from_op(self, call: ast.Call) -> None:
        backward = call.args[2] if len(call.args) >= 3 else None
        site = FromOpSite(
            function=self.function,
            call=call,
            env=dict(self.env),
            bindings={k: list(v) for k, v in self.bindings.items()},
            closures={k: list(v) for k, v in self.closures.items()},
        )
        self._from_op_by_node[id(call)] = site
        if isinstance(backward, ast.Lambda):
            self.closures[f"<lambda:{call.lineno}>"] = [backward]
        # Promote: the data argument and every array the backward
        # captures now belong to the tape; later in-place writes to
        # them would corrupt a recorded backward pass.
        promote: set[str] = set()
        data = call.args[0] if call.args else None
        if isinstance(data, ast.Name):
            promote.add(data.id)
        for closure_node in self._backward_nodes(site):
            promote.update(free_names(closure_node, self.env))
        for name in promote:
            value = self.env.get(name)
            if value is not None and value.kind in _TENSORISH:
                self.env[name] = Value(value.kind, TAPE)

    def _backward_nodes(self, site: FromOpSite) -> list[ast.AST]:
        backward = site.backward_arg
        if backward is None:
            return []
        if isinstance(backward, ast.Lambda):
            return [backward]
        if isinstance(backward, ast.Name):
            nodes: list[ast.AST] = list(site.closures.get(backward.id, []))
            for expr, _guards in site.bindings.get(backward.id, []):
                if isinstance(expr, ast.Lambda):
                    nodes.append(expr)
            return nodes
        return []

    # -- expression classification -------------------------------------
    def _classify(self, expr: ast.expr | None) -> Value:
        if expr is None:
            return _SCALAR_VALUE
        method = getattr(self, f"_classify_{type(expr).__name__}", None)
        if method is not None:
            return method(expr)
        if isinstance(expr, (ast.Constant, ast.JoinedStr, ast.FormattedValue)):
            return _SCALAR_VALUE
        return _UNKNOWN_VALUE

    def _classify_Constant(self, expr: ast.Constant) -> Value:
        return _SCALAR_VALUE

    def _classify_Name(self, expr: ast.Name) -> Value:
        value = self.env.get(expr.id)
        if value is not None:
            return value
        if expr.id in self.module.global_names:
            return Value(UNKNOWN, GLOBAL_STORE)
        return _UNKNOWN_VALUE

    def _classify_Attribute(self, expr: ast.Attribute) -> Value:
        if expr.attr in _SCALAR_ATTRS:
            return _SCALAR_VALUE
        base = self._classify(expr.value)
        if expr.attr == "data":
            if base.kind in (TENSOR, TENSOR_LIST, SELF, UNKNOWN):
                storage = base.storage if base.storage == TAPE else PARAM_STORE
                return Value(TENSOR_DATA, storage)
            return base
        if expr.attr == "T":
            if base.kind in (TENSOR_DATA, TENSOR_VIEW):
                return Value(TENSOR_VIEW, base.storage)
            return base
        if base.kind == PLAN:
            # Plan attributes (counts, order, indptr) are shared
            # read-only index/count arrays owned by the plan.
            return Value(INDEX, PARAM_STORE)
        if base.kind == SELF:
            return Value(UNKNOWN, PARAM_STORE)
        if base.storage == GLOBAL_STORE:
            return Value(UNKNOWN, GLOBAL_STORE)
        return _UNKNOWN_VALUE

    def _classify_Subscript(self, expr: ast.Subscript) -> Value:
        base = self._classify(expr.value)
        self._classify(expr.slice)
        if base.kind in (SCALAR, INDEX, PLAN):
            return Value(base.kind if base.kind != PLAN else UNKNOWN, base.storage)
        if _is_pure_view_slice(expr.slice):
            if base.kind == TENSOR_DATA:
                return Value(TENSOR_VIEW, base.storage)
            return base
        # Fancy indexing copies.
        if base.kind in _TENSORISH:
            return Value(HEAVY, FRESH)
        if base.storage == GLOBAL_STORE:
            return Value(UNKNOWN, GLOBAL_STORE)
        return _UNKNOWN_VALUE

    def _classify_BinOp(self, expr: ast.BinOp) -> Value:
        return self._combine([expr.left, expr.right])

    def _classify_UnaryOp(self, expr: ast.UnaryOp) -> Value:
        return self._combine([expr.operand])

    def _classify_BoolOp(self, expr: ast.BoolOp) -> Value:
        return self._combine(expr.values, allocates=False)

    def _classify_Compare(self, expr: ast.Compare) -> Value:
        return self._combine([expr.left, *expr.comparators])

    def _classify_IfExp(self, expr: ast.IfExp) -> Value:
        self._classify(expr.test)
        return self._classify(expr.body).join(self._classify(expr.orelse))

    def _classify_Tuple(self, expr: ast.Tuple) -> Value:
        return self._classify_sequence(expr.elts)

    def _classify_List(self, expr: ast.List) -> Value:
        return self._classify_sequence(expr.elts)

    def _classify_sequence(self, elts: list[ast.expr]) -> Value:
        values = [
            self._classify(e.value if isinstance(e, ast.Starred) else e)
            for e in elts
        ]
        if values and all(
            v.kind in (TENSOR, TENSOR_LIST) for v in values
        ):
            return Value(TENSOR_LIST, PARAM_STORE)
        if not values:
            return Value(SCALAR, FRESH)
        joined = values[0]
        for v in values[1:]:
            joined = joined.join(v)
        return Value(joined.kind, FRESH if joined.kind in _TENSORISH else NO_STORE)

    def _classify_ListComp(self, expr: ast.ListComp) -> Value:
        return self._classify_comprehension(expr.generators, expr.elt, listy=True)

    def _classify_SetComp(self, expr: ast.SetComp) -> Value:
        return self._classify_comprehension(expr.generators, expr.elt)

    def _classify_GeneratorExp(self, expr: ast.GeneratorExp) -> Value:
        return self._classify_comprehension(expr.generators, expr.elt)

    def _classify_DictComp(self, expr: ast.DictComp) -> Value:
        return self._classify_comprehension(expr.generators, expr.value)

    def _classify_comprehension(
        self,
        generators: list[ast.comprehension],
        elt: ast.expr,
        listy: bool = False,
    ) -> Value:
        saved = dict(self.env)
        try:
            for gen in generators:
                self._bind_loop_target(gen.target, gen.iter)
            element = self._classify(elt)
        finally:
            self.env = saved
        if listy and element.kind == TENSOR:
            return Value(TENSOR_LIST, PARAM_STORE)
        if element.kind in _TENSORISH:
            return Value(HEAVY, FRESH)
        return Value(element.kind, NO_STORE)

    def _classify_Starred(self, expr: ast.Starred) -> Value:
        return self._classify(expr.value)

    def _classify_Dict(self, expr: ast.Dict) -> Value:
        for value in expr.values:
            self._classify(value)
        return Value(UNKNOWN, FRESH)

    def _classify_Lambda(self, expr: ast.Lambda) -> Value:
        return _UNKNOWN_VALUE

    def _combine(self, operands: list[ast.expr], allocates: bool = True) -> Value:
        values = [self._classify(op) for op in operands]
        kind = SCALAR
        for v in values:
            if v.kind in _TENSORISH or v.kind == RNG:
                kind = HEAVY
                break
            if v.kind == INDEX:
                kind = INDEX
            elif v.kind == UNKNOWN and kind == SCALAR:
                kind = UNKNOWN
        if kind == SCALAR:
            return _SCALAR_VALUE
        return Value(kind, FRESH if allocates else NO_STORE)

    def _classify_Call(self, call: ast.Call) -> Value:
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr == "_from_op":
            return Value(TENSOR, TAPE)
        dotted = dotted_name(func)
        arg_exprs = [
            a.value if isinstance(a, ast.Starred) else a for a in call.args
        ] + [k.value for k in call.keywords if k.arg != "dtype"]

        if isinstance(func, ast.Name):
            name = func.id
            if name in _SCALAR_CASTS or name in ("isinstance", "getattr", "hasattr"):
                for a in arg_exprs:
                    self._classify(a)
                return _SCALAR_VALUE
            if name in ("as_tensor", "Tensor"):
                base = self._classify(arg_exprs[0]) if arg_exprs else _UNKNOWN_VALUE
                storage = (
                    PARAM_STORE
                    if name == "as_tensor" and base.storage != FRESH
                    else FRESH
                )
                return Value(TENSOR, storage)
            if name in ("tuple", "list"):
                return (
                    self._classify(arg_exprs[0]) if arg_exprs else _SCALAR_VALUE
                )
            if name in ("sorted", "reversed", "zip", "map", "filter", "set"):
                for a in arg_exprs:
                    self._classify(a)
                return _UNKNOWN_VALUE

        if dotted is not None:
            parts = dotted.split(".")
            if parts[0] in ("np", "numpy") and len(parts) >= 2:
                return self._classify_numpy_call(parts, call, arg_exprs)
            # rng.random(...) and friends
            base_value = self.env.get(parts[0])
            if base_value is not None and base_value.kind == RNG:
                return Value(HEAVY, FRESH)

        if isinstance(func, ast.Attribute):
            receiver = self._classify(func.value)
            method = func.attr
            if receiver.kind == PLAN:
                # Plan methods serve shared precomputed index arrays.
                return Value(INDEX, PARAM_STORE)
            if method in _SCALAR_METHODS or method in ("max", "min", "mean", "sum"):
                scalar_like = receiver.kind not in _TENSORISH
                if method in ("max", "min", "mean", "sum") and not scalar_like:
                    return Value(HEAVY, FRESH)
                return _SCALAR_VALUE
            if method in _VIEW_METHODS:
                if receiver.kind == TENSOR_DATA:
                    return Value(TENSOR_VIEW, receiver.storage)
                return receiver
            if method == "astype":
                # copy=False may alias, but the result is at worst the
                # same storage; classify by the stricter of the two.
                if receiver.kind in _TENSORISH:
                    return Value(HEAVY, receiver.storage if self._astype_no_copy(call) else FRESH)
                return Value(receiver.kind, receiver.storage)
            if method == "copy":
                return Value(
                    HEAVY if receiver.kind in _TENSORISH else receiver.kind, FRESH
                )
            if receiver.kind in _TENSORISH:
                return Value(HEAVY, FRESH)
            if receiver.kind in (INDEX, SCALAR):
                return Value(receiver.kind, FRESH)
            if receiver.storage == GLOBAL_STORE:
                return Value(UNKNOWN, GLOBAL_STORE)

        # Resolved project call: classify by argument taint + summary.
        target = self.program.resolve_call(self.module, call)
        if target is not None:
            summary = self.summaries.get(target.key)
            result = self._combine(arg_exprs) if arg_exprs else _UNKNOWN_VALUE
            if summary is not None and not summary.returns_fresh:
                return Value(
                    result.kind if result.kind != SCALAR else UNKNOWN, PARAM_STORE
                )
            if result.kind == SCALAR:
                return Value(UNKNOWN, FRESH)
            return Value(result.kind, FRESH)

        for a in arg_exprs:
            self._classify(a)
        return _UNKNOWN_VALUE

    @staticmethod
    def _astype_no_copy(call: ast.Call) -> bool:
        for keyword in call.keywords:
            if keyword.arg == "copy" and isinstance(keyword.value, ast.Constant):
                return keyword.value.value is False
        return False

    def _classify_numpy_call(
        self, parts: list[str], call: ast.Call, arg_exprs: list[ast.expr]
    ) -> Value:
        name = parts[-1]
        int_dtype = any(
            k.arg == "dtype"
            and "int" in (dotted_name(k.value) or _annotation_text(k.value))
            for k in call.keywords
        )
        if name in _INDEX_PRODUCERS:
            return Value(INDEX, FRESH)
        if name in ("asarray", "ascontiguousarray", "atleast_1d", "atleast_2d"):
            base = self._classify(arg_exprs[0]) if arg_exprs else _UNKNOWN_VALUE
            if int_dtype:
                return Value(INDEX, base.storage if base.kind == INDEX else FRESH)
            return base
        if name in _ALLOCATORS:
            if int_dtype:
                return Value(INDEX, FRESH)
            base = self._classify(arg_exprs[0]) if arg_exprs else _SCALAR_VALUE
            if name in ("zeros_like", "ones_like", "empty_like", "full_like", "copy", "array"):
                if base.kind == INDEX:
                    return Value(INDEX, FRESH)
            return Value(HEAVY, FRESH)
        if name in ("broadcast_to", "expand_dims", "squeeze"):
            base = self._classify(arg_exprs[0]) if arg_exprs else _UNKNOWN_VALUE
            return Value(base.kind if base.kind in _TENSORISH else HEAVY, base.storage)
        if name == "bincount":
            has_weights = any(k.arg == "weights" for k in call.keywords)
            if not has_weights:
                return Value(INDEX, FRESH)
            result = self._combine(arg_exprs)
            return Value(result.kind if result.kind != SCALAR else INDEX, FRESH)
        if name in ("cumsum", "take", "where", "concatenate", "stack"):
            result = self._combine(arg_exprs)
            if result.kind == SCALAR:
                return Value(INDEX, FRESH)
            return Value(result.kind if result.kind != UNKNOWN else HEAVY, FRESH)
        # Generic ufunc / reduction: taint follows the arguments.
        result = self._combine(arg_exprs)
        if result.kind == SCALAR:
            # np.float64(x), np.inf-style scalars stay scalars.
            return _SCALAR_VALUE
        return Value(result.kind, FRESH)


def free_names(node: ast.AST, enclosing_env: dict[str, Value]) -> set[str]:
    """Names a closure reads from its enclosing function scope."""
    if isinstance(node, ast.Lambda):
        body: list[ast.AST] = [node.body]
        args = node.args
    elif isinstance(node, ast.FunctionDef):
        body = list(node.body)
        args = node.args
    else:
        return set()
    bound = {a.arg for a in args.posonlyargs + args.args + args.kwonlyargs}
    if args.vararg:
        bound.add(args.vararg.arg)
    if args.kwarg:
        bound.add(args.kwarg.arg)
    loads: set[str] = set()
    stores: set[str] = set()
    for stmt in body:
        for child in ast.walk(stmt):
            if isinstance(child, ast.Name):
                if isinstance(child.ctx, ast.Store):
                    stores.add(child.id)
                elif isinstance(child.ctx, ast.Load):
                    loads.add(child.id)
            elif isinstance(child, ast.comprehension):
                for target in ast.walk(child.target):
                    if isinstance(target, ast.Name):
                        stores.add(target.id)
    free = loads - bound - stores - _BUILTIN_NAMES
    return {name for name in free if name in enclosing_env}
