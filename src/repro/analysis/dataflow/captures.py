"""Closure-capture weight: what each backward keeps alive, classified.

A backward closure pins everything it references until the tape node is
freed. Most captures are cheap — the parents (whose arrays the tape
already holds), the op's own output, index/id arrays, scalars, plans.
The expensive kind is a **derived full array**: a mask, gating factor
or gathered copy materialised on the forward pass purely for the
backward. Those are a deliberate retain-vs-recompute decision, so each
one must be declared in :mod:`repro.autograd.contracts`; an undeclared
one is an ``undeclared-capture`` error.

The machine-readable capture report (``repro check --format json``)
names ops exactly like the runtime memory tracker
(``backward_fn.__qualname__`` first segment — see
``repro.obs.memory``), so static capture classes line up with the
retained-closure bytes ``repro report memory`` measures at runtime.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.dataflow.contracts import ContractTable
from repro.analysis.dataflow.ir import (
    HEAVY,
    INDEX,
    PLAN,
    RNG,
    SCALAR,
    TENSOR,
    TENSOR_DATA,
    TENSOR_LIST,
    TENSOR_VIEW,
    FromOpSite,
    free_names,
)
from repro.analysis.dataflow.vjp import _backward_nodes
from repro.analysis.findings import Finding, Severity

__all__ = ["classify_site_captures", "capture_findings"]

_KIND_LABELS = {
    TENSOR: "parent",
    TENSOR_LIST: "parents",
    TENSOR_DATA: "parent-data",
    TENSOR_VIEW: "parent-view",
    INDEX: "index",
    SCALAR: "scalar",
    PLAN: "plan",
    RNG: "rng",
    HEAVY: "derived-array",
}


def _parent_names(site: FromOpSite) -> set[str]:
    expr = site.parents_arg
    names: set[str] = set()

    def collect(node: ast.expr | None) -> None:
        if node is None:
            return
        if isinstance(node, (ast.Tuple, ast.List)):
            for element in node.elts:
                collect(element)
        elif isinstance(node, ast.Starred):
            collect(node.value)
        elif isinstance(node, ast.Name):
            names.add(node.id)
            for bound, _guards in site.bindings.get(node.id, []):
                if isinstance(bound, (ast.Tuple, ast.List, ast.IfExp)):
                    collect(bound)
        elif isinstance(node, ast.IfExp):
            collect(node.body)
            collect(node.orelse)

    collect(expr)
    return names


def _output_name(site: FromOpSite) -> str | None:
    data = site.data_arg
    if isinstance(data, ast.Name):
        return data.id
    return None


def classify_site_captures(
    site: FromOpSite, contracts: ContractTable
) -> dict | None:
    """The capture record of one ``_from_op`` site (None when no closure)."""
    backwards = _backward_nodes(site)
    if not backwards:
        return None
    function = site.function
    contract = contracts.get(function.key)
    parents = _parent_names(site)
    output = _output_name(site)

    captured: dict[str, dict] = {}
    for backward in backwards:
        for name in sorted(free_names(backward, site.env)):
            if name in captured:
                continue
            value = site.env.get(name)
            kind = value.kind if value is not None else "unknown"
            if name in parents:
                label = "parent"
            elif name == output:
                label = "output"
            else:
                label = _KIND_LABELS.get(kind, "opaque")
            declared = name in contract.retains
            entry = {
                "name": name,
                "kind": label,
                "declared": declared,
            }
            if declared and contract.reason:
                entry["reason"] = contract.reason
            captured[name] = entry

    # The op label follows backward_fn.__qualname__.split(".", 1)[0] —
    # the convention repro.obs.memory uses for retained-closure bytes.
    return {
        "op": function.name,
        "module": function.module,
        "symbol": function.key,
        "line": site.call.lineno,
        "captures": sorted(captured.values(), key=lambda e: e["name"]),
    }


def capture_findings(
    record: dict, contracts: ContractTable, path: str
) -> Iterator[Finding]:
    """Errors for derived full arrays retained without a contract."""
    symbol = record["symbol"]
    contract = contracts.get(symbol)
    for entry in record["captures"]:
        if entry["kind"] != "derived-array":
            continue
        if entry["name"] in contract.retains:
            continue
        yield Finding(
            rule_id="undeclared-capture",
            severity=Severity.ERROR,
            path=path,
            line=record["line"],
            col=0,
            message=(
                f"{symbol}: backward retains derived array "
                f"{entry['name']!r} beyond parents/output; declare it in "
                "repro.autograd.contracts (retains=...) with a reason, or "
                "recompute it inside the backward"
            ),
            symbol=symbol,
        )
