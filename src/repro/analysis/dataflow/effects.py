"""Effect summaries: in-place escape analysis and kernel purity.

A fixpoint over the program computes, per function, which parameters it
writes through, which module globals it reassigns or mutates, and
whether everything it returns is freshly allocated. The summaries feed
two user-facing checks:

* **inplace-escape** — any write (direct, via ``out=``, via
  ``ufunc.at`` or via a callee's mutation summary) whose target
  resolves to caller-owned tensor storage or to an array already
  promoted onto the tape. Writes inside backward closures to captured
  forward arrays are the classic silent-corruption bug this exists to
  catch. Declared mutators (``index_add``'s ``out``) are exempt.
* **impure-kernel** — a public function of the kernels module with a
  non-empty undeclared effect set. The ``REPRO_KERNELS`` backends stay
  swappable only while every kernel is a pure function of its inputs;
  sanctioned exceptions (backend switches, the plan memo) are declared
  in the contract table and anything else fails the check.

Method self-state is out of scope by design (``SegmentPlan.__init__``
building its own CSR arrays is not a side effect on callers), and only
*direct* global writes are charged to a function — ``use_backend``
calling ``set_backend`` is the sanctioned indirection, not a second
offender.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator

from repro.analysis.dataflow.contracts import ContractTable
from repro.analysis.dataflow.ir import (
    PARAM_STORE,
    TAPE,
    EscapeWrite,
    FromOpSite,
    FunctionInfo,
    Interp,
    Program,
    Summary,
)
from repro.analysis.findings import Finding, Severity

__all__ = ["AnalyzedProgram", "analyze_program", "escape_findings", "purity_findings"]

_MAX_FIXPOINT_PASSES = 5


@dataclasses.dataclass
class AnalyzedProgram:
    """Fixpoint result: summaries plus per-function interpreter facts."""

    program: Program
    summaries: dict[str, Summary]
    from_op_sites: list[FromOpSite]
    escape_writes: list[EscapeWrite]


def analyze_program(program: Program) -> AnalyzedProgram:
    """Run the interpreter to a summary fixpoint over every function."""
    summaries: dict[str, Summary] = {
        info.key: Summary() for info in program.functions()
    }
    sites: list[FromOpSite] = []
    writes: list[EscapeWrite] = []
    for _ in range(_MAX_FIXPOINT_PASSES):
        changed = False
        sites = []
        writes = []
        for module in program.modules.values():
            for info in module.functions.values():
                interp = Interp(info, module, program, summaries)
                interp.run()
                new_summary = interp.summary
                if info.is_method:
                    # Mutating self is a method's job; never propagate
                    # it to call sites as a parameter mutation.
                    new_summary.mutated_params.discard("self")
                if summaries[info.key] != new_summary:
                    summaries[info.key] = new_summary.copy()
                    changed = True
                sites.extend(interp.from_op_sites)
                writes.extend(interp.escape_writes)
        if not changed:
            break
    return AnalyzedProgram(
        program=program,
        summaries=summaries,
        from_op_sites=sites,
        escape_writes=writes,
    )


def _module_path(program: Program, module_name: str) -> str:
    module = program.modules.get(module_name)
    return module.path if module is not None else module_name


def escape_findings(
    analyzed: AnalyzedProgram, contracts: ContractTable
) -> Iterator[Finding]:
    for write in analyzed.escape_writes:
        function = write.function
        # The enclosing op owns declared-mutator exemptions; closures
        # inherit their enclosing function's contract key.
        key = function.key
        contract = contracts.get(key)
        base = write.target.split(".")[0].split("[")[0]
        if base in contract.mutates and not write.in_backward:
            continue
        where = "backward closure of " if write.in_backward else ""
        if write.storage == TAPE:
            detail = (
                "tape-held storage (promoted by _from_op); a recorded "
                "backward pass would read the corrupted values"
            )
        else:
            detail = (
                "caller-owned storage; the caller's tensor (and any tape "
                "node holding it) observes the mutation"
            )
        via = f" via {write.via_call}" if write.via_call else ""
        yield Finding(
            rule_id="inplace-escape",
            severity=Severity.ERROR,
            path=_module_path(analyzed.program, function.module),
            line=getattr(write.node, "lineno", 1),
            col=getattr(write.node, "col_offset", 0),
            message=(
                f"{where}{key}: write to {write.target!r}{via} reaches "
                f"{detail}; allocate a fresh array or declare "
                "mutates=(...) in its contract"
            ),
            symbol=key,
        )


def purity_findings(
    analyzed: AnalyzedProgram,
    contracts: ContractTable,
    kernel_module: str = "kernels",
) -> Iterator[Finding]:
    module = analyzed.program.modules.get(kernel_module)
    if module is None:
        return
    for info in module.public_functions():
        summary = analyzed.summaries.get(info.key)
        if summary is None:
            continue
        contract = contracts.get(info.key)
        undeclared_params = summary.mutated_params - set(contract.mutates)
        undeclared_globals = summary.global_writes - set(contract.globals)
        if undeclared_params:
            names = ", ".join(sorted(undeclared_params))
            yield _purity_finding(
                info,
                module.path,
                f"{info.key}: public kernel mutates parameter(s) {names}; "
                "kernels must be pure so REPRO_KERNELS backends stay "
                "swappable — return a fresh array or declare mutates=(...)",
            )
        if undeclared_globals:
            names = ", ".join(sorted(undeclared_globals))
            yield _purity_finding(
                info,
                module.path,
                f"{info.key}: public kernel writes module global(s) "
                f"{names}; declare globals=(...) in its contract if this "
                "state is part of the kernel API",
            )


def _purity_finding(info: FunctionInfo, path: str, message: str) -> Finding:
    return Finding(
        rule_id="impure-kernel",
        severity=Severity.ERROR,
        path=path,
        line=info.node.lineno,
        col=info.node.col_offset,
        message=message,
        symbol=info.key,
    )
