"""Text and JSON renderers for analyzer results."""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from repro.analysis.engine import AnalysisResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.analysis.dataflow.checker import CheckResult

__all__ = ["render_text", "render_json", "render_check_text", "render_check_json"]


def render_text(result: AnalysisResult) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [finding.render() for finding in result.findings]
    lines.append(
        f"{result.files} file(s): {result.error_count} error(s), "
        f"{result.warning_count} warning(s), "
        f"{len(result.suppressed)} suppressed"
    )
    return "\n".join(lines)


def render_json(result: AnalysisResult) -> str:
    """Machine-readable report for CI consumption."""
    payload = {
        "files": result.files,
        "errors": result.error_count,
        "warnings": result.warning_count,
        "findings": [finding.to_dict() for finding in result.findings],
        "suppressed": [finding.to_dict() for finding in result.suppressed],
    }
    return json.dumps(payload, indent=2)


def render_check_text(check: "CheckResult") -> str:
    """Human-readable ``repro check`` report.

    Live findings first (the ones that gate CI), then grandfathered
    baseline matches, then a one-line capture summary per op so the
    retain-vs-recompute surface is visible without ``--format json``.
    """
    lines = [finding.render() for finding in check.result.findings]
    for finding in check.baselined:
        lines.append(f"{finding.render()}  [baselined]")
    for record in check.captures:
        heavy = [e["name"] for e in record["captures"] if e["kind"] == "derived-array"]
        declared = [name for name in heavy if _declared(record, name)]
        summary = f"{len(record['captures'])} capture(s)"
        if heavy:
            summary += f", derived: {', '.join(heavy)}"
            if declared:
                summary += " (declared)"
        lines.append(f"capture {record['symbol']}: {summary}")
    lines.append(
        f"{check.result.files} file(s): {check.result.error_count} error(s), "
        f"{check.result.warning_count} warning(s), "
        f"{len(check.baselined)} baselined, "
        f"{len(check.result.suppressed)} suppressed"
    )
    return "\n".join(lines)


def _declared(record: dict, name: str) -> bool:
    for entry in record["captures"]:
        if entry["name"] == name:
            return bool(entry.get("declared"))
    return False


def render_check_json(check: "CheckResult") -> str:
    """Machine-readable ``repro check`` report.

    Shares the lint JSON shape (files/errors/warnings/findings/
    suppressed) and adds ``baselined`` plus the per-op ``captures``
    report consumed alongside ``repro report memory``.
    """
    result = check.result
    payload = {
        "files": result.files,
        "errors": result.error_count,
        "warnings": result.warning_count,
        "findings": [finding.to_dict() for finding in result.findings],
        "suppressed": [finding.to_dict() for finding in result.suppressed],
        "baselined": [finding.to_dict() for finding in check.baselined],
        "captures": check.captures,
    }
    return json.dumps(payload, indent=2)
