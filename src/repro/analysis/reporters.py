"""Text and JSON renderers for analyzer results."""

from __future__ import annotations

import json

from repro.analysis.engine import AnalysisResult

__all__ = ["render_text", "render_json"]


def render_text(result: AnalysisResult) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [finding.render() for finding in result.findings]
    lines.append(
        f"{result.files} file(s): {result.error_count} error(s), "
        f"{result.warning_count} warning(s), "
        f"{len(result.suppressed)} suppressed"
    )
    return "\n".join(lines)


def render_json(result: AnalysisResult) -> str:
    """Machine-readable report for CI consumption."""
    payload = {
        "files": result.files,
        "errors": result.error_count,
        "warnings": result.warning_count,
        "findings": [finding.to_dict() for finding in result.findings],
        "suppressed": [finding.to_dict() for finding in result.suppressed],
    }
    return json.dumps(payload, indent=2)
