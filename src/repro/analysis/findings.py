"""Finding/severity model shared by the rule engine and reporters.

A :class:`Finding` is one violation of a repo invariant at a concrete
source location. Findings are plain frozen dataclasses so reporters can
sort, serialise and deduplicate them without touching the AST layer.
"""

from __future__ import annotations

import dataclasses
import enum

__all__ = ["Severity", "Finding"]


class Severity(enum.Enum):
    """How bad a finding is; only ERROR findings fail the lint gate."""

    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return 1 if self is Severity.ERROR else 0

    def __str__(self) -> str:
        return self.value


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule_id: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str
    # Dotted symbol the finding is about (``module.qualname``), set by
    # the dataflow checker; the syntactic lint rules leave it None.
    # Baseline entries match on (rule, path suffix, symbol) so they
    # survive line-number churn.
    symbol: str | None = None

    @property
    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule_id)

    def to_dict(self) -> dict:
        """JSON-serialisable representation (used by the JSON reporter)."""
        payload = {
            "rule": self.rule_id,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
        if self.symbol is not None:
            payload["symbol"] = self.symbol
        return payload

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity} [{self.rule_id}] {self.message}"
        )
