"""Static genotype validation against the declared SANE search space.

Two layers:

* :func:`collect_op_tables` statically parses the op-name declarations
  — the ``NODE_OPS``/``LAYER_OPS``/``SKIP_OPS`` tuples of
  ``core/search_space.py`` and the ``NODE_AGGREGATORS``/
  ``LAYER_AGGREGATORS`` registry dict literals of ``gnn/`` — without
  importing anything;
* :class:`GenotypeRule` checks every ``Architecture(...)`` call whose
  arguments are literals: op names must exist in the tables and the
  skip vector must have one entry per layer (the paper counts the
  space as ``11^K * 2^(K-1) * 3``; the implementation pins one skip
  choice per layer, which is the invariant
  ``Architecture.__post_init__`` enforces at runtime);
* :func:`consistency_findings` cross-checks the declarations
  themselves: every op named in a ``*_OPS`` tuple must have a registry
  factory, no tuple may repeat a name, and deviations from the paper's
  11/3/2 op counts are reported at warning severity.
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import Path
from typing import Iterable, Iterator

from repro.analysis.engine import Context, Rule
from repro.analysis.findings import Finding, Severity

__all__ = ["OpTables", "collect_op_tables", "consistency_findings", "GenotypeRule"]

# Paper Table I op counts (the 11^K * 2^(K-1) * 3 space of Section III-C).
_PAPER_SIZES = {"NODE_OPS": 11, "LAYER_OPS": 3, "SKIP_OPS": 2}

_TUPLE_NAMES = ("NODE_OPS", "LAYER_OPS", "SKIP_OPS")
_REGISTRY_NAMES = ("NODE_AGGREGATORS", "LAYER_AGGREGATORS")


@dataclasses.dataclass
class _Declaration:
    names: tuple[str, ...]
    path: str
    line: int


@dataclasses.dataclass
class OpTables:
    """Statically collected op-name declarations, keyed by constant name."""

    declarations: dict[str, _Declaration] = dataclasses.field(default_factory=dict)

    def names(self, constant: str) -> tuple[str, ...] | None:
        declaration = self.declarations.get(constant)
        return declaration.names if declaration else None

    @property
    def node_names(self) -> tuple[str, ...] | None:
        """Valid node-aggregator names (registry wins over the tuple)."""
        return self.names("NODE_AGGREGATORS") or self.names("NODE_OPS")

    @property
    def layer_names(self) -> tuple[str, ...] | None:
        return self.names("LAYER_AGGREGATORS") or self.names("LAYER_OPS")

    @property
    def skip_names(self) -> tuple[str, ...] | None:
        return self.names("SKIP_OPS")


def _string_tuple(node: ast.AST) -> tuple[str, ...] | None:
    """The literal value of a tuple/list of string constants, else None."""
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    values = []
    for element in node.elts:
        if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
            return None
        values.append(element.value)
    return tuple(values)


def collect_op_tables(files: Iterable[tuple[str, str]]) -> OpTables:
    """Scan ``(path, source)`` pairs for op-table declarations."""
    tables = OpTables()
    for path, source in files:
        try:
            tree = ast.parse(source)
        except SyntaxError:
            continue  # analyze_source reports the parse failure itself
        for node in tree.body:
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if target.id in _TUPLE_NAMES:
                    names = _string_tuple(node.value)
                    if names is not None:
                        tables.declarations[target.id] = _Declaration(
                            names, path, node.lineno
                        )
                elif target.id in _REGISTRY_NAMES and isinstance(node.value, ast.Dict):
                    keys = []
                    for key in node.value.keys:
                        if isinstance(key, ast.Constant) and isinstance(key.value, str):
                            keys.append(key.value)
                    tables.declarations[target.id] = _Declaration(
                        tuple(keys), path, node.lineno
                    )
    return tables


def consistency_findings(tables: OpTables) -> list[Finding]:
    """Cross-file drift checks between op tuples and their registries."""
    findings: list[Finding] = []

    def emit(declaration: _Declaration, rule_id: str, severity: Severity, message: str):
        findings.append(
            Finding(
                rule_id=rule_id,
                severity=severity,
                path=declaration.path,
                line=declaration.line,
                col=0,
                message=message,
            )
        )

    for ops_name, registry_name in (
        ("NODE_OPS", "NODE_AGGREGATORS"),
        ("LAYER_OPS", "LAYER_AGGREGATORS"),
    ):
        ops = tables.declarations.get(ops_name)
        registry = tables.declarations.get(registry_name)
        if ops and registry:
            missing = sorted(set(ops.names) - set(registry.names))
            if missing:
                emit(
                    ops,
                    "registry-drift",
                    Severity.ERROR,
                    f"{ops_name} declares ops with no {registry_name} factory: "
                    f"{missing}",
                )

    for constant in _TUPLE_NAMES + _REGISTRY_NAMES:
        declaration = tables.declarations.get(constant)
        if declaration is None:
            continue
        duplicates = sorted(
            {name for name in declaration.names if declaration.names.count(name) > 1}
        )
        if duplicates:
            emit(
                declaration,
                "registry-drift",
                Severity.ERROR,
                f"{constant} repeats op names: {duplicates}",
            )

    for constant, expected in _PAPER_SIZES.items():
        declaration = tables.declarations.get(constant)
        if declaration is not None and len(declaration.names) != expected:
            emit(
                declaration,
                "paper-space-size",
                Severity.WARNING,
                f"{constant} has {len(declaration.names)} ops; paper Table I "
                f"defines {expected} (11^K * 2^(K-1) * 3 space)",
            )
    return findings


class GenotypeRule(Rule):
    """Validate literal ``Architecture(...)`` genotypes against the space."""

    rule_id = "invalid-genotype"
    severity = Severity.ERROR
    description = "Architecture literal outside the declared search space"
    node_types = (ast.Call,)

    def __init__(self, tables: OpTables | None = None):
        self.tables = tables or OpTables()

    def check(self, node: ast.Call, ctx: Context) -> Iterator[Finding]:
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", None)
        if name != "Architecture":
            return

        fields: dict[str, ast.expr] = {}
        positional = ("node_aggregators", "skip_connections", "layer_aggregator")
        for field, arg in zip(positional, node.args):
            fields[field] = arg
        for keyword in node.keywords:
            if keyword.arg in positional:
                fields[keyword.arg] = keyword.value

        nodes = _string_tuple(fields.get("node_aggregators"))
        skips = _string_tuple(fields.get("skip_connections"))
        layer_value = fields.get("layer_aggregator")
        layer = (
            layer_value.value
            if isinstance(layer_value, ast.Constant)
            and isinstance(layer_value.value, str)
            else None
        )

        if nodes is not None and skips is not None and len(nodes) != len(skips):
            yield self.finding(
                node,
                ctx,
                f"genotype has {len(nodes)} node aggregators but {len(skips)} "
                "skip choices; one skip per layer is required",
            )
        yield from self._check_names(node, ctx, nodes, self.tables.node_names, "node")
        yield from self._check_names(node, ctx, skips, self.tables.skip_names, "skip")
        if layer is not None:
            yield from self._check_names(
                node, ctx, (layer,), self.tables.layer_names, "layer"
            )

    def _check_names(
        self,
        node: ast.Call,
        ctx: Context,
        names: tuple[str, ...] | None,
        valid: tuple[str, ...] | None,
        kind: str,
    ) -> Iterator[Finding]:
        if names is None or valid is None:
            return
        unknown = sorted(set(names) - set(valid))
        if unknown:
            yield self.finding(
                node,
                ctx,
                f"unknown {kind} op name(s) {unknown}; declared ops: "
                f"{sorted(valid)}",
            )
