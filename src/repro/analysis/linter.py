"""Filesystem driver: discover sources, build rules, lint everything.

:func:`lint_paths` is what ``repro lint`` and the self-check test call:
it gathers ``.py`` files under the given paths, statically collects the
op tables once (so :class:`~repro.analysis.genotype.GenotypeRule`
validates genotype literals against the *declared* search space, not a
hardcoded copy), runs the full rule set over every file and appends the
cross-file registry-consistency findings.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.engine import AnalysisResult, Rule, analyze_source
from repro.analysis.genotype import (
    GenotypeRule,
    OpTables,
    collect_op_tables,
    consistency_findings,
)
from repro.analysis.rules import CORE_RULES

__all__ = ["discover_files", "default_rules", "lint_paths"]


def discover_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of python sources."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.update(p for p in path.rglob("*.py") if p.is_file())
        elif path.suffix == ".py" and path.is_file():
            files.add(path)
        else:
            raise FileNotFoundError(f"no python source at {path}")
    return sorted(files)


def default_rules(tables: OpTables | None = None) -> list[Rule]:
    """The full shipped rule set, genotype-aware when tables are given."""
    rules: list[Rule] = [rule_cls() for rule_cls in CORE_RULES]
    rules.append(GenotypeRule(tables))
    return rules


def lint_paths(paths: Iterable[str | Path]) -> AnalysisResult:
    """Lint every python file under ``paths`` with the default rules."""
    files = discover_files(paths)
    sources: list[tuple[str, str]] = []
    for path in files:
        sources.append((str(path), path.read_text(encoding="utf-8")))

    tables = collect_op_tables(sources)
    rules = default_rules(tables)
    result = AnalysisResult()
    for path, source in sources:
        result.merge(analyze_source(source, path=path, rules=rules))
    result.findings.extend(consistency_findings(tables))
    result.sort()
    return result
