"""The repo-specific rule set (see README "Static analysis" for the table).

Each rule encodes one invariant the reproduction's correctness rests
on: tape integrity of :mod:`repro.autograd`, parameter registration in
:mod:`repro.nn.module`, seeded randomness, the numpy-only substitution
rule, and the dict-registry dispatch idiom used by the op tables.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Context, Rule
from repro.analysis.findings import Finding, Severity

__all__ = [
    "TapeMutationRule",
    "UnregisteredParameterRule",
    "GlobalRngRule",
    "ForbiddenImportRule",
    "MissingZeroGradRule",
    "DuplicateRegistryKeyRule",
    "BareExceptRule",
    "MutableDefaultArgRule",
    "AdHocTimingRule",
    "BufferedScatterRule",
    "RawMultiprocessingRule",
    "NakedPrintRule",
    "UncheckedNanSourceRule",
    "MissingOpScopeRule",
    "TapeInInferenceRule",
    "UntracedServePathRule",
    "UnledgeredEntrypointRule",
    "CORE_RULES",
]

_INIT_METHODS = ("__init__", "reset_parameters")


def _dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for an Attribute/Name chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _call_name(node: ast.Call) -> str | None:
    """Last segment of the called name (``np.random.rand`` -> ``rand``)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


class TapeMutationRule(Rule):
    """In-place writes to ``Tensor.data`` bypass the autograd tape.

    The tape records gradients against the array a ``Tensor`` held when
    the op ran; mutating ``.data`` afterwards silently corrupts every
    pending backward pass. Writes of the form ``self.<name>.data`` are
    allowed inside ``__init__``/``reset_parameters`` (no tape exists for
    a parameter that is still being constructed); everything else —
    optimiser steps, state restores, virtual DARTS steps — is flagged
    and must carry an explicit justification comment.
    """

    rule_id = "tape-mutation"
    severity = Severity.ERROR
    description = "in-place write to Tensor.data outside __init__/reset_parameters"
    node_types = (ast.Assign, ast.AugAssign, ast.AnnAssign)

    def check(self, node: ast.AST, ctx: Context) -> Iterator[Finding]:
        if isinstance(node, ast.Assign):
            targets = node.targets
        else:
            targets = [node.target] if node.target is not None else []
        for target in targets:
            yield from self._check_target(target, node, ctx)

    def _check_target(
        self, target: ast.AST, node: ast.AST, ctx: Context
    ) -> Iterator[Finding]:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                yield from self._check_target(element, node, ctx)
            return
        # Strip subscripts: `p.data[1:] = x` writes through `.data` too.
        while isinstance(target, ast.Subscript):
            target = target.value
        if not (isinstance(target, ast.Attribute) and target.attr == "data"):
            return
        base = target.value
        # `self.data = ...` is a plain attribute named "data" (dataset
        # holders use it), not a write through a Tensor.
        if isinstance(base, ast.Name) and base.id == "self":
            return
        function = ctx.current_function
        in_init = function is not None and function.name in _INIT_METHODS
        direct_self_attr = (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == "self"
        )
        if in_init and direct_self_attr:
            return
        if isinstance(base, ast.Subscript):
            owner = (_dotted_name(base.value) or "<expr>") + "[...]"
        else:
            owner = _dotted_name(base) or "<expr>"
        yield self.finding(
            node,
            ctx,
            f"in-place write to {owner}.data mutates tensor storage behind "
            "the autograd tape; rebuild the tensor or justify with "
            "# lint: disable=tape-mutation",
        )


class UnregisteredParameterRule(Rule):
    """``self.x = Tensor(..., requires_grad=True)`` inside a class.

    ``Module.named_parameters`` only discovers :class:`Parameter`
    instances, so a gradient-requiring plain ``Tensor`` trains never:
    the optimiser does not see it and ``zero_grad`` skips it.
    """

    rule_id = "unregistered-parameter"
    severity = Severity.ERROR
    description = "requires_grad Tensor assigned to self without Parameter wrapper"
    node_types = (ast.Assign,)

    def check(self, node: ast.Assign, ctx: Context) -> Iterator[Finding]:
        if ctx.current_class is None:
            return
        value = node.value
        if not (isinstance(value, ast.Call) and _call_name(value) in ("Tensor", "as_tensor")):
            return
        if not self._requires_grad(value):
            return
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                yield self.finding(
                    node,
                    ctx,
                    f"self.{target.attr} is a requires_grad Tensor; wrap it in "
                    "Parameter(...) so Module.parameters() registers it",
                )

    @staticmethod
    def _requires_grad(call: ast.Call) -> bool:
        for keyword in call.keywords:
            if keyword.arg == "requires_grad":
                return isinstance(keyword.value, ast.Constant) and bool(
                    keyword.value.value
                )
        if len(call.args) >= 2:
            second = call.args[1]
            return isinstance(second, ast.Constant) and second.value is True
        return False


class GlobalRngRule(Rule):
    """Use of the legacy global numpy RNG instead of a seeded Generator.

    Every stochastic component takes an explicit
    ``np.random.Generator``; the global ``np.random.*`` API is
    process-wide state that destroys per-seed reproducibility.
    """

    rule_id = "global-rng"
    severity = Severity.ERROR
    description = "np.random.* global-state call instead of a seeded Generator"
    node_types = (ast.Call, ast.ImportFrom)

    _ALLOWED = frozenset({"default_rng", "Generator", "SeedSequence", "PCG64", "Philox"})

    def check(self, node: ast.AST, ctx: Context) -> Iterator[Finding]:
        if isinstance(node, ast.ImportFrom):
            if node.module in ("numpy.random", "np.random"):
                for alias in node.names:
                    if alias.name not in self._ALLOWED:
                        yield self.finding(
                            node,
                            ctx,
                            f"importing numpy.random.{alias.name} pulls in the "
                            "global RNG; pass a np.random.Generator instead",
                        )
            return
        dotted = _dotted_name(node.func) if isinstance(node.func, ast.Attribute) else None
        if dotted is None:
            return
        parts = dotted.split(".")
        if len(parts) == 3 and parts[0] in ("np", "numpy") and parts[1] == "random":
            if parts[2] not in self._ALLOWED:
                yield self.finding(
                    node,
                    ctx,
                    f"{dotted}() uses the process-global RNG; thread a seeded "
                    "np.random.Generator through instead",
                )


class ForbiddenImportRule(Rule):
    """Torch/PyG/jax imports — the environment is numpy-only.

    DESIGN.md section 2: the reproduction substitutes a tape-based
    numpy autograd for PyTorch; importing a real framework would either
    fail in CI or silently fork the computational substrate.
    """

    rule_id = "forbidden-import"
    severity = Severity.ERROR
    description = "import of a framework excluded by the numpy-only substitution"
    node_types = (ast.Import, ast.ImportFrom)

    _FORBIDDEN = frozenset(
        {"torch", "torchvision", "torch_geometric", "torch_sparse", "torch_scatter",
         "jax", "jaxlib", "tensorflow", "dgl"}
    )

    def check(self, node: ast.AST, ctx: Context) -> Iterator[Finding]:
        if isinstance(node, ast.Import):
            names = [alias.name for alias in node.names]
        else:
            names = [node.module] if node.module else []
        for name in names:
            top = name.split(".")[0]
            if top in self._FORBIDDEN:
                yield self.finding(
                    node,
                    ctx,
                    f"import of {name!r} violates the numpy-only substitution "
                    "rule (DESIGN.md section 2); use repro.autograd instead",
                )


class MissingZeroGradRule(Rule):
    """``.backward()`` inside a loop whose body never calls ``zero_grad``.

    Gradients accumulate additively into ``Tensor.grad``; a training
    loop that backpropagates without clearing them sums gradients
    across iterations. Heuristic (warning severity): only the loop's
    own body is inspected, so helpers that zero inside a callee are
    outside its view.
    """

    rule_id = "missing-zero-grad"
    severity = Severity.WARNING
    description = ".backward() in a loop with no zero_grad in the same loop body"
    node_types = (ast.For, ast.While, ast.AsyncFor)

    def check(self, node: ast.AST, ctx: Context) -> Iterator[Finding]:
        backward_calls: list[ast.Call] = []
        saw_zero_grad = False
        for child in self._body_nodes(node):
            if isinstance(child, ast.Call):
                name = _call_name(child)
                if name == "backward":
                    backward_calls.append(child)
                elif name == "zero_grad":
                    saw_zero_grad = True
        if backward_calls and not saw_zero_grad:
            yield self.finding(
                backward_calls[0],
                ctx,
                "loop calls .backward() but never zero_grad(); gradients "
                "accumulate across iterations",
            )

    @staticmethod
    def _body_nodes(loop: ast.AST) -> Iterator[ast.AST]:
        """Walk the loop body without entering nested loops/functions."""
        stack = list(getattr(loop, "body", []))
        barrier = (ast.For, ast.While, ast.AsyncFor, ast.FunctionDef,
                   ast.AsyncFunctionDef, ast.ClassDef)
        while stack:
            current = stack.pop()
            yield current
            if isinstance(current, barrier):
                continue
            stack.extend(ast.iter_child_nodes(current))


class DuplicateRegistryKeyRule(Rule):
    """Duplicate constant keys in a dict literal.

    The op registries (``NODE_AGGREGATORS``, ``LAYER_AGGREGATORS``,
    pooling/scheduler tables) are dict literals; a duplicated key
    silently drops the earlier factory — exactly the failure mode of a
    copy-pasted registry row.
    """

    rule_id = "duplicate-registry-key"
    severity = Severity.ERROR
    description = "duplicate constant key in a dict literal"
    node_types = (ast.Dict,)

    def check(self, node: ast.Dict, ctx: Context) -> Iterator[Finding]:
        seen: dict[object, int] = {}
        for key in node.keys:
            if not isinstance(key, ast.Constant):
                continue
            try:
                marker = key.value
                first = seen.get(marker)
            except TypeError:  # unhashable constant; cannot collide
                continue
            if first is None:
                seen[marker] = key.lineno
            else:
                yield self.finding(
                    key,
                    ctx,
                    f"duplicate dict key {key.value!r} (first defined on line "
                    f"{first}) silently shadows the earlier entry",
                )


class BareExceptRule(Rule):
    """``except:`` swallows SystemExit/KeyboardInterrupt and typos alike."""

    rule_id = "bare-except"
    severity = Severity.ERROR
    description = "bare except clause"
    node_types = (ast.ExceptHandler,)

    def check(self, node: ast.ExceptHandler, ctx: Context) -> Iterator[Finding]:
        if node.type is None:
            yield self.finding(
                node,
                ctx,
                "bare except hides real failures (including KeyboardInterrupt); "
                "catch a concrete exception type",
            )


class MutableDefaultArgRule(Rule):
    """Mutable default argument values shared across calls."""

    rule_id = "mutable-default-arg"
    severity = Severity.ERROR
    description = "mutable default argument"
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

    _MUTABLE_CALLS = frozenset({"list", "dict", "set", "defaultdict", "OrderedDict"})

    def check(self, node: ast.AST, ctx: Context) -> Iterator[Finding]:
        args = node.args
        for default in list(args.defaults) + [d for d in args.kw_defaults if d]:
            if self._is_mutable(default):
                yield self.finding(
                    default,
                    ctx,
                    "mutable default argument is shared across calls; "
                    "default to None and build inside the function",
                )

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set,
                             ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            return _call_name(node) in self._MUTABLE_CALLS
        return False


class AdHocTimingRule(Rule):
    """Direct wall-clock reads in library code instead of ``repro.obs``.

    ``search_time``/``train_time`` and every trajectory history come
    from :mod:`repro.obs` spans, which nest, aggregate and serialise.
    A raw ``time.perf_counter()`` pair in library code produces a number
    nobody else can see: it never reaches a trace, never shows up in
    the hotspot report, and silently duplicates the span machinery.
    Only the ``repro.obs`` package itself (where the clock has to live)
    is exempt; elsewhere the write must open a span or carry a
    ``# lint: disable=adhoc-timing`` justification.
    """

    rule_id = "adhoc-timing"
    severity = Severity.ERROR
    description = "direct wall-clock timing in src/repro outside repro.obs"
    node_types = (ast.Call,)

    _CLOCKS = frozenset(
        {"perf_counter", "perf_counter_ns", "monotonic", "monotonic_ns",
         "process_time", "process_time_ns", "thread_time", "thread_time_ns"}
    )

    def check(self, node: ast.Call, ctx: Context) -> Iterator[Finding]:
        if not self._in_scope(ctx.path):
            return
        dotted = _dotted_name(node.func)
        if dotted is None:
            return
        parts = dotted.split(".")
        clock = parts[-1] in self._CLOCKS or (
            len(parts) >= 2 and parts[-2] == "time" and parts[-1] == "time"
        )
        if clock:
            yield self.finding(
                node,
                ctx,
                f"{dotted}() times code outside repro.obs; open an obs.span "
                "(or inject a clock) so the measurement reaches traces and "
                "reports",
            )

    @staticmethod
    def _in_scope(path: str) -> bool:
        """True for files inside the ``repro`` package but not ``obs``."""
        parts = path.replace("\\", "/").split("/")
        if "repro" not in parts:
            return False
        rest = parts[len(parts) - 1 - parts[::-1].index("repro"):]
        return "obs" not in rest


class BufferedScatterRule(Rule):
    """Direct ``np.add.at``/``np.maximum.at`` outside the kernel module.

    Buffered ``ufunc.at`` scatters are 4-6x slower than the planned CSR
    kernels in :mod:`repro.autograd.kernels` and bypass the
    ``REPRO_KERNELS`` backend switch, so a stray call silently forks
    the scatter implementation and re-introduces exactly the hotspot
    the fused kernels removed. Only ``repro/autograd/kernels.py`` — the
    naive reference backend's home — may call them; everywhere else the
    code must go through ``kernels.scatter_sum``/``scatter_max``/
    ``index_add`` or carry a ``# lint: disable=buffered-scatter``
    justification.
    """

    rule_id = "buffered-scatter"
    severity = Severity.ERROR
    description = "np.add.at/np.maximum.at in src/repro outside repro.autograd.kernels"
    node_types = (ast.Call,)

    _UFUNCS = frozenset({"add", "maximum", "minimum", "multiply", "subtract"})

    def check(self, node: ast.Call, ctx: Context) -> Iterator[Finding]:
        if not self._in_scope(ctx.path):
            return
        dotted = _dotted_name(node.func)
        if dotted is None:
            return
        parts = dotted.split(".")
        if (
            len(parts) == 3
            and parts[0] in ("np", "numpy")
            and parts[1] in self._UFUNCS
            and parts[2] == "at"
        ):
            yield self.finding(
                node,
                ctx,
                f"{dotted}() is a buffered scatter outside the kernel module; "
                "route it through repro.autograd.kernels (scatter_sum/"
                "scatter_max/index_add) so the REPRO_KERNELS backend applies",
            )

    @staticmethod
    def _in_scope(path: str) -> bool:
        """True inside ``repro`` except ``autograd/kernels.py`` itself."""
        parts = path.replace("\\", "/").split("/")
        if "repro" not in parts:
            return False
        rest = tuple(parts[len(parts) - parts[::-1].index("repro"):])
        return rest != ("autograd", "kernels.py")


class RawMultiprocessingRule(Rule):
    """Process-spawning primitives outside ``repro.parallel``.

    DESIGN.md section 12: every multi-process fan-out goes through the
    :class:`repro.parallel.WorkerPool`, which owns the determinism
    contract (merge by job id, per-job seeds), the crash/timeout/retry
    handling and the ``parallel.*`` telemetry. A stray
    ``multiprocessing`` import or ``os.fork()`` call elsewhere forks
    work the pool cannot see — results merged in completion order,
    orphan processes on error, no metrics. Only the
    ``repro/parallel/`` package may touch the primitives; everywhere
    else submit :class:`SearchJob` batches, or carry a
    ``# lint: disable=raw-multiprocessing`` justification.
    """

    rule_id = "raw-multiprocessing"
    severity = Severity.ERROR
    description = (
        "multiprocessing/concurrent.futures/os.fork in src/repro outside "
        "repro.parallel"
    )
    node_types = (ast.Import, ast.ImportFrom, ast.Call)

    _MODULES = frozenset({"multiprocessing", "concurrent"})
    _FORK_CALLS = frozenset({"os.fork", "os.forkpty"})

    def check(self, node: ast.AST, ctx: Context) -> Iterator[Finding]:
        if not self._in_scope(ctx.path):
            return
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            if isinstance(node, ast.Import):
                names = [alias.name for alias in node.names]
            else:
                names = [node.module] if node.module else []
            for name in names:
                if name.split(".")[0] in self._MODULES:
                    yield self.finding(
                        node,
                        ctx,
                        f"import of {name!r} outside repro.parallel bypasses "
                        "the WorkerPool's deterministic merge and failure "
                        "handling; submit SearchJobs instead",
                    )
            return
        dotted = _dotted_name(node.func)
        if dotted in self._FORK_CALLS:
            yield self.finding(
                node,
                ctx,
                f"{dotted}() forks a process outside repro.parallel; route "
                "the work through a WorkerPool so the determinism and "
                "retry contracts apply",
            )

    @staticmethod
    def _in_scope(path: str) -> bool:
        """True inside ``repro`` except the ``parallel`` package."""
        parts = path.replace("\\", "/").split("/")
        if "repro" not in parts:
            return False
        rest = tuple(parts[len(parts) - parts[::-1].index("repro"):])
        return not (rest and rest[0] == "parallel")


class NakedPrintRule(Rule):
    """``print()`` in library code instead of structured output.

    Library modules communicate through return values, the event log
    (:mod:`repro.obs.events`) and rendered reports — a stray ``print``
    interleaves with dashboards, corrupts piped output and cannot be
    captured by callers. Only the designated presentation layers are
    exempt: the CLI itself and the report renderers of ``repro.obs`` /
    ``repro.analysis``. Anywhere else the call must go through a
    reporter or carry a ``# lint: disable=naked-print`` justification.
    """

    rule_id = "naked-print"
    severity = Severity.ERROR
    description = "print() in src/repro outside the CLI and report renderers"
    node_types = (ast.Call,)

    _EXEMPT = frozenset(
        {
            ("cli.py",),
            ("analysis", "reporters.py"),
            ("obs", "report.py"),
            ("obs", "search_report.py"),
            ("obs", "bench_gate.py"),
        }
    )

    def check(self, node: ast.Call, ctx: Context) -> Iterator[Finding]:
        if not self._in_scope(ctx.path):
            return
        if isinstance(node.func, ast.Name) and node.func.id == "print":
            yield self.finding(
                node,
                ctx,
                "print() in library code bypasses the reporters; return the "
                "text, emit an event, or move the call into a renderer",
            )

    @classmethod
    def _in_scope(cls, path: str) -> bool:
        """True inside the ``repro`` package, minus the presentation layer."""
        parts = path.replace("\\", "/").split("/")
        if "repro" not in parts:
            return False
        rest = tuple(parts[len(parts) - parts[::-1].index("repro"):])
        return rest not in cls._EXEMPT


class UncheckedNanSourceRule(Rule):
    """Raw NaN-producing math on tape arrays outside the guarded modules.

    ``np.log``/``np.sqrt`` and division are where NaN/Inf are born:
    ``log(0)``, ``sqrt(-eps)``, ``x / 0``. The autograd modules
    (``ops.py``, ``functional.py``, ``kernels.py``) own the guarded
    implementations — epsilon clips, max-shifted softmaxes, masked
    denominators — and the PR-5 health monitor can attribute anything
    that still slips through to an op. A direct ``np.log(t.data)`` (or
    a division whose operand reads ``.data`` / ``.numpy()``) elsewhere
    sidesteps both layers: no guard, no tape entry, no provenance when
    it produces the NaN that poisons the Eq. 2 mixture. Route the math
    through the autograd ops or justify with
    ``# lint: disable=unchecked-nan-source``.
    """

    rule_id = "unchecked-nan-source"
    severity = Severity.ERROR
    description = (
        "raw np.log/np.sqrt/division on tape arrays outside "
        "ops.py/functional.py/kernels.py"
    )
    node_types = (ast.Call, ast.BinOp)

    _NAN_FUNCS = frozenset({"log", "log2", "log10", "log1p", "sqrt", "divide", "true_divide"})
    _GUARDED = frozenset(
        {
            ("autograd", "ops.py"),
            ("autograd", "functional.py"),
            ("autograd", "kernels.py"),
        }
    )

    def check(self, node: ast.AST, ctx: Context) -> Iterator[Finding]:
        if not self._in_scope(ctx.path):
            return
        if isinstance(node, ast.Call):
            dotted = _dotted_name(node.func)
            if dotted is None:
                return
            parts = dotted.split(".")
            if not (
                len(parts) == 2
                and parts[0] in ("np", "numpy")
                and parts[1] in self._NAN_FUNCS
            ):
                return
            if any(self._touches_tape(arg) for arg in node.args):
                yield self.finding(
                    node,
                    ctx,
                    f"{dotted}() on a tape array can mint an unattributed "
                    "NaN (log(0)/sqrt(-eps)); use the guarded op in "
                    "repro.autograd or justify the site",
                )
            return
        if isinstance(node.op, ast.Div) and (
            self._touches_tape(node.left) or self._touches_tape(node.right)
        ):
            yield self.finding(
                node,
                ctx,
                "raw division involving a tape array risks an unattributed "
                "divide-by-zero NaN/Inf; use the guarded autograd ops or "
                "justify the site",
            )

    @staticmethod
    def _touches_tape(node: ast.AST) -> bool:
        """Operand subtree reads tensor storage (``.data`` / ``.numpy()``)."""
        for child in ast.walk(node):
            if isinstance(child, ast.Attribute) and child.attr == "data":
                return True
            if (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr == "numpy"
            ):
                return True
        return False

    @classmethod
    def _in_scope(cls, path: str) -> bool:
        """True inside ``repro`` minus the guarded autograd modules."""
        parts = path.replace("\\", "/").split("/")
        if "repro" not in parts:
            return False
        rest = tuple(parts[len(parts) - parts[::-1].index("repro"):])
        return rest not in cls._GUARDED


class MissingOpScopeRule(Rule):
    """Mixture tape nodes built outside a ``health.op_scope`` block.

    The tape health monitor (``repro.obs.health``) attributes NaN/Inf
    anomalies to ``(edge, layer, op)`` via the innermost active
    :func:`op_scope`. Search forwards annotate every candidate op — but
    the *mixture itself* (``ops.weighted_sum``, the Eq. 2 combination
    where epsilon-scaled alphas most often mint the first Inf) is a
    tape node too. A mixture built outside any scope reports
    ``op=None`` at exactly the moment provenance matters most. The rule
    fires only in modules that already use ``op_scope`` (the search
    forwards); plain training code is out of scope.
    """

    rule_id = "missing-op-scope"
    severity = Severity.ERROR
    description = (
        "ops.weighted_sum mixture outside health.op_scope in a "
        "monitor-annotated module"
    )
    node_types = (ast.Call,)

    _MIXTURE_CALLS = frozenset({"weighted_sum"})

    def __init__(self) -> None:
        # Cache for the module currently being walked (files are linted
        # sequentially): ids of nodes lexically inside an op_scope
        # with-block, or None when the module never uses op_scope.
        # Keeping the tree reference (not its id) avoids id recycling.
        self._cached_tree: ast.Module | None = None
        self._cached_scoped: set[int] | None = None

    def check(self, node: ast.Call, ctx: Context) -> Iterator[Finding]:
        if _call_name(node) not in self._MIXTURE_CALLS:
            return
        scoped = self._scoped_nodes(ctx.tree)
        if scoped is None:  # module never uses op_scope: not a forward
            return
        if id(node) in scoped:
            return
        yield self.finding(
            node,
            ctx,
            "mixture tape node built outside health.op_scope; anomalies "
            "in the Eq. 2 combination would report op=None — wrap the "
            "call in `with health.op_scope(edge=..., layer=..., op=...)`",
        )

    def _scoped_nodes(self, tree: ast.Module) -> set[int] | None:
        if tree is self._cached_tree:
            return self._cached_scoped
        uses_op_scope = False
        scoped: set[int] = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                if any(
                    isinstance(item.context_expr, ast.Call)
                    and _call_name(item.context_expr) == "op_scope"
                    for item in node.items
                ):
                    uses_op_scope = True
                    for stmt in node.body:
                        scoped.update(id(child) for child in ast.walk(stmt))
        result = scoped if uses_op_scope else None
        self._cached_tree = tree
        self._cached_scoped = result
        return result


class TapeInInferenceRule(Rule):
    """Tape-building ops in ``repro.serve`` hot paths outside ``no_grad``.

    The serving engine's contract is that inference never builds a
    tape: no backward closures allocated, no intermediates retained,
    and the batched/single bit-identity argument rests on eval-mode
    forwards being pure functions of the inputs. A ``model.forward``/
    ``encode``/``embed`` call in serve code that is not lexically
    inside a ``with no_grad():`` block silently re-enables tape
    recording — every request leaks its graph of backward closures
    until something drops the result. ``.backward()`` has no business
    in serving at all and is flagged unconditionally. Lexical scoping
    is deliberate: it forces the serve modules to keep the guard
    visible at the call site (wrappers that hide it defeat review).
    Intentional exceptions — e.g. a debug endpoint that inspects
    gradients — carry a ``# lint: disable=tape-in-inference``
    justification.
    """

    rule_id = "tape-in-inference"
    severity = Severity.ERROR
    description = (
        "forward/encode/embed outside no_grad() (or any .backward()) "
        "in repro.serve"
    )
    node_types = (ast.Call,)

    _TAPE_BUILDERS = frozenset({"forward", "encode", "embed"})

    def __init__(self) -> None:
        # Same per-module cache shape as MissingOpScopeRule: ids of
        # nodes lexically inside a `with no_grad():` body for the tree
        # currently being walked.
        self._cached_tree: ast.Module | None = None
        self._cached_guarded: set[int] | None = None

    def check(self, node: ast.Call, ctx: Context) -> Iterator[Finding]:
        if not self._in_scope(ctx.path):
            return
        name = _call_name(node)
        if name == "backward":
            yield self.finding(
                node,
                ctx,
                ".backward() in serving code builds and consumes a tape; "
                "inference must stay gradient-free — move training out of "
                "repro.serve or justify with # lint: disable=tape-in-inference",
            )
            return
        if name not in self._TAPE_BUILDERS:
            return
        # `"x".encode("ascii")` is a codec call, not the aligner's
        # tape-building `model.encode()`: the model API takes no
        # arguments, codec encodes take the codec name.
        if name in ("encode", "embed") and (node.args or node.keywords):
            return
        if id(node) in self._guarded_nodes(ctx.tree):
            return
        yield self.finding(
            node,
            ctx,
            f".{name}() outside a lexical `with no_grad():` block records "
            "a tape per request and leaks backward closures under load; "
            "wrap the call site (or justify with "
            "# lint: disable=tape-in-inference)",
        )

    def _guarded_nodes(self, tree: ast.Module) -> set[int]:
        if tree is self._cached_tree:
            return self._cached_guarded
        guarded: set[int] = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                if any(
                    isinstance(item.context_expr, ast.Call)
                    and _call_name(item.context_expr) == "no_grad"
                    for item in node.items
                ):
                    for stmt in node.body:
                        guarded.update(id(child) for child in ast.walk(stmt))
        self._cached_tree = tree
        self._cached_guarded = guarded
        return guarded

    @staticmethod
    def _in_scope(path: str) -> bool:
        """True for files inside the ``repro.serve`` package."""
        parts = path.replace("\\", "/").split("/")
        if "repro" not in parts:
            return False
        rest = parts[len(parts) - 1 - parts[::-1].index("repro"):]
        return len(rest) >= 2 and rest[1] == "serve"


class UntracedServePathRule(Rule):
    """``PendingRequest`` resolved or failed outside a request span.

    Every request through ``repro.serve`` owns a span tree; the tree
    is only complete if the terminal transition — ``._resolve()`` or
    ``._fail()`` — happens inside that request's ``resolve`` stage
    span. A resolution outside a ``with ...stage(...)`` block produces
    an orphaned tail: the trace shows the request forever in flight,
    per-stage percentiles silently drop the resolve cost, and the p99
    exemplar can point at a tree with no end. Lexical scoping again:
    the ``with <trace>.stage("resolve"):`` guard must be visible at
    the call site. Intentional exceptions (e.g. a shutdown path that
    fails requests without trace machinery) carry a
    ``# lint: disable=untraced-serve-path`` justification.
    """

    rule_id = "untraced-serve-path"
    severity = Severity.ERROR
    description = (
        "PendingRequest._resolve/._fail outside a `with ...stage(...)` "
        "request-span block in repro.serve"
    )
    node_types = (ast.Call,)

    _TERMINALS = frozenset({"_resolve", "_fail"})

    def __init__(self) -> None:
        # Same per-module cache shape as TapeInInferenceRule: ids of
        # nodes lexically inside a `with <x>.stage(...):` body for the
        # tree currently being walked.
        self._cached_tree: ast.Module | None = None
        self._cached_guarded: set[int] | None = None

    def check(self, node: ast.Call, ctx: Context) -> Iterator[Finding]:
        if not self._in_scope(ctx.path):
            return
        if not isinstance(node.func, ast.Attribute):
            return
        name = node.func.attr
        if name not in self._TERMINALS:
            return
        if id(node) in self._guarded_nodes(ctx.tree):
            return
        yield self.finding(
            node,
            ctx,
            f".{name}() outside a `with ...stage(...)` block leaves the "
            "request's span tree without a resolve stage; wrap the call "
            "site in the request's stage span (or justify with "
            "# lint: disable=untraced-serve-path)",
        )

    def _guarded_nodes(self, tree: ast.Module) -> set[int]:
        if tree is self._cached_tree:
            return self._cached_guarded
        guarded: set[int] = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                if any(
                    isinstance(item.context_expr, ast.Call)
                    and _call_name(item.context_expr) == "stage"
                    for item in node.items
                ):
                    for stmt in node.body:
                        guarded.update(id(child) for child in ast.walk(stmt))
        self._cached_tree = tree
        self._cached_guarded = guarded
        return guarded

    @staticmethod
    def _in_scope(path: str) -> bool:
        """True for files inside the ``repro.serve`` package."""
        parts = path.replace("\\", "/").split("/")
        if "repro" not in parts:
            return False
        rest = parts[len(parts) - 1 - parts[::-1].index("repro"):]
        return len(rest) >= 2 and rest[1] == "serve"


class UnledgeredEntrypointRule(Rule):
    """A CLI subcommand handler that never records a run manifest.

    The run ledger (DESIGN section 13) only has value if it is
    *complete*: one unledgered entry point and cross-run trends,
    lineage, and provenance all have holes exactly where a regression
    hid. The CLI's convention makes completeness lexically checkable —
    every ``_cmd_<name>`` handler in ``repro/cli.py`` must contain a
    call to ``record_run`` somewhere in its body. Handlers that are
    genuinely read-only (``repro runs`` itself, the ``report``
    renderers) carry a ``# lint: disable=unledgered-entrypoint``
    justification on the ``def`` line instead.
    """

    rule_id = "unledgered-entrypoint"
    severity = Severity.ERROR
    description = (
        "cli.py subcommand handler (_cmd_*) without a record_run call"
    )
    node_types = (ast.FunctionDef,)

    def check(self, node: ast.FunctionDef, ctx: Context) -> Iterator[Finding]:
        if not self._in_scope(ctx.path):
            return
        if not node.name.startswith("_cmd_"):
            return
        for inner in ast.walk(node):
            if isinstance(inner, ast.Call) and _call_name(inner) == "record_run":
                return
        yield self.finding(
            node,
            ctx,
            f"{node.name}() handles a subcommand but never calls "
            "record_run(); every entry point must append a run manifest "
            "to the ledger (or justify with "
            "# lint: disable=unledgered-entrypoint)",
        )

    @staticmethod
    def _in_scope(path: str) -> bool:
        """True only for the package's ``cli.py`` itself."""
        parts = path.replace("\\", "/").split("/")
        if "repro" not in parts:
            return False
        rest = parts[len(parts) - 1 - parts[::-1].index("repro"):]
        return rest == ["repro", "cli.py"]


CORE_RULES: tuple[type[Rule], ...] = (
    TapeMutationRule,
    UnregisteredParameterRule,
    GlobalRngRule,
    ForbiddenImportRule,
    MissingZeroGradRule,
    DuplicateRegistryKeyRule,
    BareExceptRule,
    MutableDefaultArgRule,
    AdHocTimingRule,
    BufferedScatterRule,
    RawMultiprocessingRule,
    NakedPrintRule,
    UncheckedNanSourceRule,
    MissingOpScopeRule,
    TapeInInferenceRule,
    UntracedServePathRule,
    UnledgeredEntrypointRule,
)
