"""Rule engine: one AST walk, type-dispatched rules, inline suppression.

The engine is deliberately small:

* a :class:`Rule` declares which ``ast`` node types it wants via
  :attr:`Rule.node_types` and yields :class:`Finding` objects from
  :meth:`Rule.check`;
* :func:`analyze_source` parses a module once, walks the tree once and
  dispatches each node to the rules registered for its type, keeping a
  function/class stack so rules know their lexical context;
* ``# lint: disable=<rule-id>[,<rule-id>...]`` on the offending line
  suppresses matching findings (``disable=all`` suppresses every rule).
  The conventional format is ``# lint: disable=<id> -- justification``.

Suppressed findings are retained separately so reporters can count them
and the self-check test can assert suppressions stay justified.
"""

from __future__ import annotations

import ast
import dataclasses
import io
import re
import tokenize
from typing import Iterable, Iterator, Sequence

from repro.analysis.findings import Finding, Severity

__all__ = [
    "Context",
    "Rule",
    "AnalysisResult",
    "collect_suppressions",
    "analyze_source",
]

_SUPPRESS_RE = re.compile(r"#\s*lint:\s*disable=([\w\-]+(?:\s*,\s*[\w\-]+)*)")


@dataclasses.dataclass
class Context:
    """Lexical context handed to every rule check."""

    path: str
    tree: ast.Module
    function_stack: list[ast.FunctionDef | ast.AsyncFunctionDef] = dataclasses.field(
        default_factory=list
    )
    class_stack: list[ast.ClassDef] = dataclasses.field(default_factory=list)

    @property
    def current_function(self) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        return self.function_stack[-1] if self.function_stack else None

    @property
    def current_class(self) -> ast.ClassDef | None:
        return self.class_stack[-1] if self.class_stack else None


class Rule:
    """Base class for all lint rules.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding zero or more findings for each visited node.
    """

    rule_id: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""
    node_types: tuple[type[ast.AST], ...] = ()

    def check(self, node: ast.AST, ctx: Context) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        node: ast.AST,
        ctx: Context,
        message: str,
        severity: Severity | None = None,
    ) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            severity=severity or self.severity,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


@dataclasses.dataclass
class AnalysisResult:
    """Outcome of an analyzer run over one or more files."""

    findings: list[Finding] = dataclasses.field(default_factory=list)
    suppressed: list[Finding] = dataclasses.field(default_factory=list)
    files: int = 0

    @property
    def error_count(self) -> int:
        return sum(1 for f in self.findings if f.severity is Severity.ERROR)

    @property
    def warning_count(self) -> int:
        return sum(1 for f in self.findings if f.severity is Severity.WARNING)

    def merge(self, other: "AnalysisResult") -> None:
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)
        self.files += other.files

    def sort(self) -> None:
        self.findings.sort(key=lambda f: f.sort_key)
        self.suppressed.sort(key=lambda f: f.sort_key)


def collect_suppressions(source: str) -> dict[int, set[str]]:
    """Map line number -> rule ids disabled on that line."""
    suppressions: dict[int, set[str]] = {}

    def record(line: int, spec: str) -> None:
        ids = {part.strip() for part in spec.split(",") if part.strip()}
        if ids:
            suppressions.setdefault(line, set()).update(ids)

    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                match = _SUPPRESS_RE.search(token.string)
                if match:
                    record(token.start[0], match.group(1))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Fall back to a line scan so suppression still works on files
        # the tokenizer rejects (they will also carry a syntax-error
        # finding from the parser).
        for line_number, line in enumerate(source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(line)
            if match:
                record(line_number, match.group(1))
    return suppressions


class _Walker(ast.NodeVisitor):
    """Single-pass visitor dispatching nodes to interested rules."""

    def __init__(self, rules: Sequence[Rule], ctx: Context):
        self._dispatch: dict[type[ast.AST], list[Rule]] = {}
        for rule in rules:
            for node_type in rule.node_types:
                self._dispatch.setdefault(node_type, []).append(rule)
        self.ctx = ctx
        self.findings: list[Finding] = []

    def visit(self, node: ast.AST) -> None:
        for rule in self._dispatch.get(type(node), ()):
            self.findings.extend(rule.check(node, self.ctx))
        is_function = isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        is_class = isinstance(node, ast.ClassDef)
        if is_function:
            self.ctx.function_stack.append(node)
        if is_class:
            self.ctx.class_stack.append(node)
        try:
            self.generic_visit(node)
        finally:
            if is_function:
                self.ctx.function_stack.pop()
            if is_class:
                self.ctx.class_stack.pop()


def analyze_source(
    source: str,
    path: str = "<memory>",
    rules: Iterable[Rule] = (),
) -> AnalysisResult:
    """Run ``rules`` over one module's source text."""
    result = AnalysisResult(files=1)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        result.findings.append(
            Finding(
                rule_id="syntax-error",
                severity=Severity.ERROR,
                path=path,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                message=f"cannot parse module: {exc.msg}",
            )
        )
        return result

    walker = _Walker(list(rules), Context(path=path, tree=tree))
    walker.visit(tree)

    suppressions = collect_suppressions(source)
    for finding in walker.findings:
        disabled = suppressions.get(finding.line, set())
        if finding.rule_id in disabled or "all" in disabled:
            result.suppressed.append(finding)
        else:
            result.findings.append(finding)
    result.sort()
    return result
