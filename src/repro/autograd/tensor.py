"""Reverse-mode automatic differentiation over numpy arrays.

This module is the computational substrate for the whole reproduction:
the paper implements SANE on top of PyTorch, which is unavailable in
this environment, so we provide a tape-based autograd engine with the
same semantics for the subset of operations GNNs need.

The design follows the classic define-by-run recipe:

* every :class:`Tensor` wraps a ``numpy.ndarray``,
* each operation returns a new ``Tensor`` that remembers its parents
  and a closure computing the vector-Jacobian product,
* :meth:`Tensor.backward` topologically sorts the recorded graph and
  accumulates gradients into ``Tensor.grad``.

Gradients are plain numpy arrays (not Tensors); higher-order
derivatives are not supported and not needed — the paper uses the
first-order DARTS approximation (``xi = 0`` in Eq. 8).
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "set_grad_enabled",
    "set_tape_hook",
    "get_tape_hook",
]

# Grad mode is per-thread: the serving layer runs eval-mode forwards
# inside `with no_grad():` on concurrent worker threads, and a shared
# flag would let one worker's save/restore race another's (thread A
# restores True, thread B then restores the False it observed at
# entry — leaving recording disabled process-wide). Each thread gets
# its own flag, defaulting to enabled.
_GRAD_STATE = threading.local()

# Observability hook installed while tape observers are active —
# exactly one at a time; multiple observers (op profiler, numerics
# health monitor, memory tracker) multiplex through the
# ``repro.obs.tape`` chain rather than competing for this slot.
# ``None`` means disabled, and the only cost every op then pays is one
# global load and an identity check in ``Tensor._from_op``. When set,
# the hook is called with ``(data, parents, backward_fn)`` for every
# dispatched op and returns the (possibly wrapped) backward closure to
# record on the tape.
_TAPE_HOOK = None


def set_tape_hook(hook) -> None:
    """Install (or with ``None`` remove) the op-dispatch profiling hook."""
    global _TAPE_HOOK
    if hook is not None and _TAPE_HOOK is not None and _TAPE_HOOK is not hook:
        raise RuntimeError("an autograd tape hook is already installed")
    _TAPE_HOOK = hook


def get_tape_hook():
    """The currently installed op-dispatch hook (``None`` when disabled)."""
    return _TAPE_HOOK


def is_grad_enabled() -> bool:
    """Return whether operations on this thread record the autograd tape."""
    return getattr(_GRAD_STATE, "enabled", True)


def set_grad_enabled(enabled: bool) -> None:
    """Enable or disable tape recording on the calling thread."""
    _GRAD_STATE.enabled = bool(enabled)


@contextlib.contextmanager
def no_grad():
    """Context manager that disables tape recording inside its block.

    Used by evaluation loops and by the detached parts of composite
    operations (e.g. the max-shift in a numerically stable softmax).
    Per-thread: a serve worker's block never affects other threads.
    """
    previous = is_grad_enabled()
    _GRAD_STATE.enabled = False
    try:
        yield
    finally:
        _GRAD_STATE.enabled = previous


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing broadcast axes.

    numpy broadcasting expands operands implicitly; the adjoint of a
    broadcast is a sum over the expanded axes, which this helper
    performs so binary ops can support arbitrary broadcasting.
    """
    if grad.shape == shape:
        return grad
    # Sum away leading axes numpy added on the left.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum axes that were size-1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array plus the bookkeeping needed for backpropagation.

    Parameters
    ----------
    data:
        Anything ``numpy.asarray`` accepts. Floating point data is kept
        in ``float64`` for gradient-check friendliness.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` when
        :meth:`backward` reaches this tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fn")

    def __init__(self, data, requires_grad: bool = False):
        if isinstance(data, Tensor):
            data = data.data
        array = np.asarray(data)
        if array.dtype.kind in "fc":
            array = array.astype(np.float64, copy=False)
        self.data: np.ndarray = array
        self.grad: np.ndarray | None = None
        self.requires_grad: bool = bool(requires_grad)
        self._parents: tuple[Tensor, ...] = ()
        self._backward_fn: Callable[[np.ndarray], None] | None = None

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _from_op(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward_fn: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Build the result tensor of an op, recording the tape entry."""
        hook = _TAPE_HOOK
        if hook is not None:
            backward_fn = hook(data, parents, backward_fn)
        requires = is_grad_enabled() and any(
            p.requires_grad for p in parents
        )
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward_fn = backward_fn
        return out

    # ------------------------------------------------------------------
    # basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_flag})"

    # ------------------------------------------------------------------
    # autograd machinery
    # ------------------------------------------------------------------
    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut off from the tape."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def _accumulate_grad(self, grad: np.ndarray) -> None:
        grad = np.asarray(grad, dtype=np.float64)
        if grad.shape != self.data.shape:
            grad = _unbroadcast(grad, self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded tape.

        Parameters
        ----------
        grad:
            Seed gradient. Defaults to ``1`` which requires ``self`` to
            be a scalar (the usual loss case).
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a "
                    f"scalar tensor, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        order = _topological_order(self)
        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in order:
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad and node._backward_fn is None:
                # A leaf (parameter or input marked differentiable).
                node._accumulate_grad(node_grad)
                continue
            node._accumulate_into(grads, node_grad)

    def _accumulate_into(
        self, grads: dict[int, np.ndarray], node_grad: np.ndarray
    ) -> None:
        """Run this node's VJP and merge parent gradients into ``grads``."""
        backward_fn = self._backward_fn
        if backward_fn is None:
            return
        parent_grads = backward_fn(node_grad)
        for parent, parent_grad in zip(self._parents, parent_grads):
            if parent_grad is None or not parent.requires_grad:
                continue
            if (
                type(parent_grad) is not np.ndarray
                or parent_grad.dtype != np.float64
            ):
                parent_grad = np.asarray(parent_grad, dtype=np.float64)
            if parent_grad.shape != parent.data.shape:
                parent_grad = _unbroadcast(parent_grad, parent.data.shape)
            key = id(parent)
            if key in grads:
                grads[key] = grads[key] + parent_grad
            else:
                grads[key] = parent_grad

    # ------------------------------------------------------------------
    # arithmetic (implemented in ops.py, wired up at import time there)
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        from repro.autograd import ops

        return ops.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        from repro.autograd import ops

        return ops.mean(self, axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        from repro.autograd import ops

        return ops.max(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape) -> "Tensor":
        from repro.autograd import ops

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return ops.reshape(self, shape)

    def transpose(self, *axes) -> "Tensor":
        from repro.autograd import ops

        return ops.transpose(self, axes or None)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def exp(self) -> "Tensor":
        from repro.autograd import ops

        return ops.exp(self)

    def log(self) -> "Tensor":
        from repro.autograd import ops

        return ops.log(self)

    def tanh(self) -> "Tensor":
        from repro.autograd import ops

        return ops.tanh(self)

    def sqrt(self) -> "Tensor":
        from repro.autograd import ops

        return ops.sqrt(self)

    def clip(self, low: float | None = None, high: float | None = None) -> "Tensor":
        from repro.autograd import ops

        return ops.clip(self, low, high)

    def __add__(self, other) -> "Tensor":
        from repro.autograd import ops

        return ops.add(self, other)

    __radd__ = __add__

    def __sub__(self, other) -> "Tensor":
        from repro.autograd import ops

        return ops.sub(self, other)

    def __rsub__(self, other) -> "Tensor":
        from repro.autograd import ops

        return ops.sub(other, self)

    def __mul__(self, other) -> "Tensor":
        from repro.autograd import ops

        return ops.mul(self, other)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        from repro.autograd import ops

        return ops.div(self, other)

    def __rtruediv__(self, other) -> "Tensor":
        from repro.autograd import ops

        return ops.div(other, self)

    def __neg__(self) -> "Tensor":
        from repro.autograd import ops

        return ops.neg(self)

    def __pow__(self, exponent: float) -> "Tensor":
        from repro.autograd import ops

        return ops.pow(self, exponent)

    def __matmul__(self, other) -> "Tensor":
        from repro.autograd import ops

        return ops.matmul(self, other)

    def __getitem__(self, index) -> "Tensor":
        from repro.autograd import ops

        return ops.getitem(self, index)


def as_tensor(value, requires_grad: bool = False) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no copy if already one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)


def _topological_order(root: Tensor) -> list[Tensor]:
    """Return tape nodes reachable from ``root`` in reverse topological order."""
    order: list[Tensor] = []
    visited: set[int] = set()
    stack: list[tuple[Tensor, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for parent in node._parents:
            if id(parent) not in visited:
                stack.append((parent, False))
    order.reverse()
    return order
