"""Segment (scatter/gather) operations — the message-passing primitives.

A GNN layer gathers the features of edge sources, transforms them, and
scatters them back onto edge destinations. With ``gather`` and the
``segment_*`` reductions below, every aggregator in the paper's search
space (Table I / Table XI) composes out of differentiable pieces:

``out[v] = reduce({message[e] : dst[e] == v})``

``segment_ids`` plays the role of ``dst``. Segments may be empty (an
isolated node); empty segments reduce to zero.

The raw reductions run on :mod:`repro.autograd.kernels`
(``REPRO_KERNELS=naive|fused``). Every function takes an optional
precomputed :class:`~repro.autograd.kernels.SegmentPlan`; hot callers
(the GNN aggregators) thread the per-graph plans a
:class:`~repro.gnn.common.GraphCache` holds, everyone else falls back
to the identity-keyed plan memo.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import kernels, ops
from repro.autograd.kernels import SegmentPlan
from repro.autograd.tensor import Tensor, as_tensor

__all__ = [
    "gather",
    "segment_sum",
    "segment_mean",
    "segment_max",
    "segment_softmax",
    "segment_attention_sum",
    "segment_count",
]


def gather(x, index: np.ndarray, plan: SegmentPlan | None = None) -> Tensor:
    """Select rows ``x[index]`` along axis 0 (differentiable).

    Equivalent to fancy indexing; repeated indices accumulate gradient.
    ``plan`` (a plan of ``index`` over ``len(x)`` segments) accelerates
    the adjoint scatter.
    """
    index = np.asarray(index, dtype=np.int64)
    return ops.getitem(as_tensor(x), index, plan=plan)


def segment_attention_sum(
    x,
    weights,
    src_index: np.ndarray,
    segment_ids: np.ndarray,
    num_segments: int,
    src_plan: SegmentPlan | None = None,
    plan: SegmentPlan | None = None,
) -> Tensor:
    """``out[s] = sum over edges e with segment_ids[e] == s of
    weights[e] * x[src_index[e]]`` — the weighted message-passing step
    of attention aggregators (and GCN, whose weights are constant),
    fused into one tape node.

    ``x`` has one more trailing axis than ``weights`` (``(N, d)`` with
    ``(E,)`` weights, or ``(N, H, d)`` with ``(E, H)``). The composed
    gather → multiply → ``segment_sum`` spelling records three
    full-edge-size tape nodes; this runs the identical value sequence
    (take, multiply, bincount — bit-identical forward) while computing
    the weight gradient as a trailing-axis inner product directly.
    ``src_plan`` covers the adjoint scatter back to ``x`` rows,
    ``plan`` the forward reduction.

    The backward recomputes the edge-gathered source rows (one
    ``np.take``, ~2% of a forward) and the weight-column view instead
    of retaining them: the parents' storage is on the tape anyway, so
    re-deriving both drops the closure's only large capture — the
    ``(E, F)`` gathered copy — from every attention/GCN tape node.
    """
    x, weights = as_tensor(x), as_tensor(weights)
    src_index = np.asarray(src_index, dtype=np.int64)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    if x.ndim != weights.ndim + 1:
        raise ValueError(
            f"x must have one more axis than weights, got {x.shape} "
            f"and {weights.shape}"
        )
    out = kernels.scatter_sum(
        np.take(x.data, src_index, axis=0) * weights.data[..., None],
        segment_ids,
        num_segments,
        plan,
    )
    num_rows = x.data.shape[0]

    def backward(g):
        g_edge = np.take(g, segment_ids, axis=0)
        grad_x = (
            kernels.scatter_sum(
                g_edge * weights.data[..., None], src_index, num_rows, src_plan
            )
            if x.requires_grad
            else None
        )
        grad_w = (
            (g_edge * np.take(x.data, src_index, axis=0)).sum(axis=-1)
            if weights.requires_grad
            else None
        )
        return grad_x, grad_w

    return Tensor._from_op(out, (x, weights), backward)


def segment_count(
    segment_ids: np.ndarray,
    num_segments: int,
    plan: SegmentPlan | None = None,
) -> np.ndarray:
    """Number of elements per segment as a float array (constant).

    Served from the plan's cached counts when one exists (treat the
    result as read-only in that case — it is shared). Thin wrapper over
    :func:`repro.autograd.kernels.segment_counts`.
    """
    return kernels.segment_counts(segment_ids, num_segments, plan)


def segment_sum(
    x,
    segment_ids: np.ndarray,
    num_segments: int,
    plan: SegmentPlan | None = None,
) -> Tensor:
    """Sum rows of ``x`` into ``num_segments`` buckets.

    ``out[s] = sum_{i : segment_ids[i] == s} x[i]``; the adjoint is a
    gather, making this the cheapest scatter reduction.
    """
    x = as_tensor(x)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    out = kernels.scatter_sum(x.data, segment_ids, num_segments, plan)
    return Tensor._from_op(
        out, (x,), lambda g: (np.take(g, segment_ids, axis=0),)
    )


def segment_mean(
    x,
    segment_ids: np.ndarray,
    num_segments: int,
    plan: SegmentPlan | None = None,
) -> Tensor:
    """Mean per segment; empty segments yield zero."""
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    if plan is None:
        plan = kernels.peek_plan(segment_ids, num_segments)
    counts = kernels.segment_counts(segment_ids, num_segments, plan, clamped=True)
    x = as_tensor(x)
    total = kernels.scatter_sum(x.data, segment_ids, num_segments, plan)
    denom = counts.reshape((num_segments,) + (1,) * (total.ndim - 1))
    return Tensor._from_op(
        total / denom,
        (x,),
        lambda g: (np.take(g / denom, segment_ids, axis=0),),
    )


def segment_max(
    x,
    segment_ids: np.ndarray,
    num_segments: int,
    plan: SegmentPlan | None = None,
) -> Tensor:
    """Max per segment; gradient splits evenly among tied maxima.

    Empty segments yield zero (and receive no gradient). The winner
    bookkeeping for the gradient happens inside the backward closure,
    so inference-mode forwards (``no_grad``) skip it entirely.
    """
    x = as_tensor(x)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    out = kernels.scatter_max(x.data, segment_ids, num_segments, plan)
    empty = ~np.isfinite(out)
    out[empty] = 0.0

    def backward(g):
        g = np.where(empty, 0.0, g)
        max_per_row = np.take(out, segment_ids, axis=0)
        winners = (x.data == max_per_row).astype(np.float64)
        # Normalise ties: count winners per segment, divide each winner's share.
        winner_counts = kernels.scatter_sum(
            winners, segment_ids, num_segments, plan
        )
        winner_counts = np.maximum(winner_counts, 1.0)
        share = winners / np.take(winner_counts, segment_ids, axis=0)
        return (np.take(g, segment_ids, axis=0) * share,)

    return Tensor._from_op(out, (x,), backward)


def segment_softmax(
    scores,
    segment_ids: np.ndarray,
    num_segments: int,
    plan: SegmentPlan | None = None,
) -> Tensor:
    """Softmax over each segment of a 1-D score vector.

    This is the attention normalisation: for every destination node,
    the scores of its incoming edges are normalised to sum to one.
    Numerically stabilised by subtracting the per-segment max (the
    shift does not change the function value). Runs as a single tape
    node with the closed-form softmax adjoint
    ``out * (g - gather(segment_sum(out * g)))`` rather than a chain of
    primitive ops — attention normalisation is hot enough that the
    intermediate tape nodes and per-edge temporaries matter.
    """
    scores = as_tensor(scores)
    if scores.ndim != 1:
        raise ValueError(f"segment_softmax expects 1-D scores, got {scores.shape}")
    segment_ids = np.asarray(segment_ids, dtype=np.int64)

    shift = kernels.scatter_max(scores.data, segment_ids, num_segments, plan)
    shift[~np.isfinite(shift)] = 0.0
    exp_scores = np.exp(scores.data - np.take(shift, segment_ids))
    denom = kernels.scatter_sum(exp_scores, segment_ids, num_segments, plan)
    np.maximum(denom, 1e-16, out=denom)
    out = exp_scores / np.take(denom, segment_ids)

    def backward(g):
        weighted = kernels.scatter_sum(
            out * g, segment_ids, num_segments, plan
        )
        return (out * (g - np.take(weighted, segment_ids)),)

    return Tensor._from_op(out, (scores,), backward)
