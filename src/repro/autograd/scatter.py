"""Segment (scatter/gather) operations — the message-passing primitives.

A GNN layer gathers the features of edge sources, transforms them, and
scatters them back onto edge destinations. With ``gather`` and the
``segment_*`` reductions below, every aggregator in the paper's search
space (Table I / Table XI) composes out of differentiable pieces:

``out[v] = reduce({message[e] : dst[e] == v})``

``segment_ids`` plays the role of ``dst``. Segments may be empty (an
isolated node); empty segments reduce to zero.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor, as_tensor

__all__ = [
    "gather",
    "segment_sum",
    "segment_mean",
    "segment_max",
    "segment_softmax",
    "segment_count",
]


def gather(x, index: np.ndarray) -> Tensor:
    """Select rows ``x[index]`` along axis 0 (differentiable).

    Equivalent to fancy indexing; repeated indices accumulate gradient.
    """
    index = np.asarray(index, dtype=np.int64)
    return ops.getitem(as_tensor(x), index)


def segment_count(segment_ids: np.ndarray, num_segments: int) -> np.ndarray:
    """Number of elements per segment as a float array (constant)."""
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    return np.bincount(segment_ids, minlength=num_segments).astype(np.float64)


def segment_sum(x, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Sum rows of ``x`` into ``num_segments`` buckets.

    ``out[s] = sum_{i : segment_ids[i] == s} x[i]``; the adjoint is a
    gather, making this the cheapest scatter reduction.
    """
    x = as_tensor(x)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    out = np.zeros((num_segments,) + x.data.shape[1:], dtype=np.float64)
    np.add.at(out, segment_ids, x.data)
    return Tensor._from_op(out, (x,), lambda g: (g[segment_ids],))


def segment_mean(x, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Mean per segment; empty segments yield zero."""
    counts = segment_count(segment_ids, num_segments)
    counts = np.maximum(counts, 1.0)
    total = segment_sum(x, segment_ids, num_segments)
    denom = counts.reshape((num_segments,) + (1,) * (total.ndim - 1))
    return total / denom


def segment_max(x, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Max per segment; gradient splits evenly among tied maxima.

    Empty segments yield zero (and receive no gradient).
    """
    x = as_tensor(x)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    feature_shape = x.data.shape[1:]
    out = np.full((num_segments,) + feature_shape, -np.inf, dtype=np.float64)
    np.maximum.at(out, segment_ids, x.data)
    empty = ~np.isfinite(out)
    out[empty] = 0.0

    max_per_row = out[segment_ids]
    winners = (x.data == max_per_row).astype(np.float64)
    # Normalise ties: count winners per segment, divide each winner's share.
    winner_counts = np.zeros_like(out)
    np.add.at(winner_counts, segment_ids, winners)
    winner_counts = np.maximum(winner_counts, 1.0)
    share = winners / winner_counts[segment_ids]

    def backward(g):
        g = np.where(empty, 0.0, g)
        return (g[segment_ids] * share,)

    return Tensor._from_op(out, (x,), backward)


def segment_softmax(scores, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Softmax over each segment of a 1-D score vector.

    This is the attention normalisation: for every destination node,
    the scores of its incoming edges are normalised to sum to one.
    Numerically stabilised by subtracting the per-segment max (which is
    detached — the shift does not change the function value).
    """
    scores = as_tensor(scores)
    if scores.ndim != 1:
        raise ValueError(f"segment_softmax expects 1-D scores, got {scores.shape}")
    segment_ids = np.asarray(segment_ids, dtype=np.int64)

    shift = segment_max(scores.detach(), segment_ids, num_segments)
    shifted = scores - gather(shift, segment_ids)
    exp_scores = ops.exp(shifted)
    denom = segment_sum(exp_scores, segment_ids, num_segments)
    denom = ops.clip(denom, low=1e-16)
    return exp_scores / gather(denom, segment_ids)
