"""Declared autograd contracts: the exceptions the static checker honours.

``repro check`` (:mod:`repro.analysis.dataflow`) proves four properties
over this package — VJP completeness, closure-capture weight, in-place
escape, kernel purity. Real code has a handful of *intentional*
deviations: ``index_add`` mutates its ``out`` argument by design,
``relu`` retains its activation mask because recomputing it would cost
a full forward read, ``set_backend`` exists to mutate a module global.
Those exceptions are declared here, in one reviewable place, instead of
being sprinkled as inline suppressions.

Two declaration forms, both read *statically* by the checker (no import
of this package is needed to analyze it):

* the :data:`CONTRACTS` table — a pure literal dict, keyed by
  ``"<module>.<qualname>"`` relative to ``repro.autograd`` (e.g.
  ``"functional.relu"``, ``"kernels.index_add"``). Values are literal
  dicts with any of the keys below.
* the :func:`contract` decorator — attaches the same keys directly to a
  function definition. Preferred for new code; the checker reads the
  decorator's keyword literals off the AST. At runtime it only sets an
  attribute, so decorated hot functions pay nothing per call.

Contract keys
-------------
``retains``
    Tuple of closure-captured variable names a backward closure is
    allowed to hold beyond parents/output/indices/scalars. Everything
    else classified as a derived full array is an
    ``undeclared-capture`` finding.
``mutates``
    Tuple of parameter names the function writes through on purpose
    (the sanctioned in-place API, e.g. ``index_add(out, ...)``).
``globals``
    Tuple of module-global names the function reassigns or mutates
    (backend switches, memo caches, counter slots).
``nondiff``
    Tuple of parent *positions* (ints) that intentionally receive no
    gradient on any path.
``reason``
    Free-text justification; required by review for every entry.
"""

from __future__ import annotations

__all__ = ["CONTRACTS", "contract", "contract_of"]

_CONTRACT_ATTR = "__autograd_contract__"

# The grandfather-free declared-exception table. Keep entries sorted by
# module; every entry carries its reason — an entry without one should
# not survive review.
CONTRACTS: dict[str, dict] = {
    # -- functional.py: activation masks/factors are retain-vs-recompute
    #    decisions. All are one float64 array of the input's shape; the
    #    memory tracker reports them as retained closure bytes.
    "functional.relu": {
        "retains": ("mask",),
        "reason": "activation pattern; recompute would re-read the full input",
    },
    "functional.leaky_relu": {
        "retains": ("factor",),
        "reason": "slope factor doubles as the VJP diagonal",
    },
    "functional.elu": {
        "retains": ("factor",),
        "reason": "exp(min(x,0)) branch is the expensive part of the VJP",
    },
    "functional.dropout": {
        "retains": ("mask",),
        "reason": "mask is an RNG draw; it cannot be recomputed",
    },
    "functional.lstm_gate_update": {
        "retains": ("i_gate", "f_gate", "g_gate", "o_gate", "tanh_c"),
        "reason": "fused cell shares the four gate activations between "
        "forward and both VJPs; recomputing means four tanh passes",
    },
    # -- ops.py
    "ops.softplus": {
        "retains": ("grad_factor",),
        "reason": "sigmoid(x) computed on the forward IS the VJP diagonal; "
        "recompute costs a full exp pass",
    },
    "ops.clip": {
        "retains": ("inside",),
        "reason": "active-range mask is the whole Jacobian diagonal",
    },
    "ops.max": {
        "retains": ("mask",),
        "reason": "tie-normalised argmax mask; recompute needs a second "
        "reduction pass",
    },
    "ops.where": {
        "retains": ("cond",),
        "reason": "boolean select mask routes both parent gradients",
    },
    # -- scatter.py: segment-shaped (num_segments-sized) bookkeeping,
    #    not edge-sized copies.
    "scatter.segment_max": {
        "retains": ("empty",),
        "reason": "empty-segment mask is num_segments bools; masks the "
        "incoming gradient before the winner scatter",
    },
    "scatter.segment_mean": {
        "retains": ("denom",),
        "reason": "clamped per-segment counts, num_segments floats "
        "(often served read-only from the SegmentPlan cache)",
    },
}


def contract(
    *,
    retains: tuple[str, ...] = (),
    mutates: tuple[str, ...] = (),
    globals: tuple[str, ...] = (),  # noqa: A002 - mirrors the contract key
    nondiff: tuple[int, ...] = (),
    reason: str = "",
):
    """Declare a function's sanctioned deviations for ``repro check``.

    Runtime cost is one ``setattr`` at import; the checker reads the
    keyword literals statically, so the declaration must use literal
    tuples/strings only.
    """

    declaration = {
        "retains": tuple(retains),
        "mutates": tuple(mutates),
        "globals": tuple(globals),
        "nondiff": tuple(nondiff),
        "reason": reason,
    }

    def mark(fn):
        setattr(fn, _CONTRACT_ATTR, declaration)
        return fn

    return mark


def contract_of(fn) -> dict | None:
    """The runtime-attached contract of ``fn`` (decorator form), if any."""
    return getattr(fn, _CONTRACT_ATTR, None)
