"""Segment-reduction kernels with selectable backends.

Message passing spends its time in two raw array operations: scattering
edge values into node buckets (``segment_*`` forwards, gather adjoints)
and gathering node rows out along edges. The *naive* backend runs the
scatters through numpy's buffered ``np.add.at`` / ``np.maximum.at`` —
correct, simple, and the well-known slow path. The *fused* backend
precomputes a :class:`SegmentPlan` (CSR layout: destination-sorted edge
permutation, row pointers, per-segment counts) once per segment-id
array and reduces over the planned layout.

Kernel choice inside the fused backend is measurement-driven (numpy
2.x, see DESIGN):

* sums run through ``np.bincount`` on flattened ``segment*width + col``
  indices — one C pass over the data, ~4–6x faster than ``np.add.at``
  on (E, 32) message blocks, and bit-identical to it (both accumulate
  in input-row order per output slot);
* maxima over 2-D+ values use ``np.take`` along the sort permutation
  plus ``np.maximum.reduceat`` over the CSR row starts; 1-D maxima stay
  on ``np.maximum.at``, whose 1-D fast path already wins.

Both backends produce the same results (sums bit-identical, maxima
exactly equal); the naive backend is kept as the reference
implementation and for pinpointing kernel regressions. Select with
``REPRO_KERNELS=naive|fused`` (default ``fused``), or
:func:`set_backend` / :func:`use_backend` at runtime.

Everything here operates on raw ``numpy.ndarray`` values — the
differentiable wrappers live in :mod:`repro.autograd.scatter`.

When a :class:`KernelCounters` collector is installed (PR 5, see
``repro.obs``), every public kernel call additionally records bytes
read/written and elements reduced — the raw numbers behind the
fused-vs-naive *effective bandwidth* comparison in ``BENCH_*.json``.
While no collector is installed the kernels pay one module-global load
per call and nothing else.
"""

from __future__ import annotations

import contextlib
import os
from collections import OrderedDict

import numpy as np

from repro.autograd.contracts import contract

__all__ = [
    "BACKENDS",
    "LruMap",
    "SegmentPlan",
    "plan_for",
    "peek_plan",
    "segment_counts",
    "get_backend",
    "set_backend",
    "use_backend",
    "scatter_sum",
    "scatter_max",
    "scatter_add_rows",
    "index_add",
    "is_row_index",
    "KernelCounters",
    "set_kernel_counters",
    "get_kernel_counters",
    "count_kernels",
]

BACKENDS = ("naive", "fused")


def _initial_backend() -> str:
    name = os.environ.get("REPRO_KERNELS", "fused")
    if name not in BACKENDS:
        raise ValueError(
            f"REPRO_KERNELS={name!r} unknown; choose from {BACKENDS}"
        )
    return name


_BACKEND = _initial_backend()


def get_backend() -> str:
    """Name of the active kernel backend (``naive`` or ``fused``)."""
    return _BACKEND


@contract(
    globals=("_BACKEND",),
    reason="the backend switch is this global's one sanctioned writer",
)
def set_backend(name: str) -> None:
    """Select the kernel backend for every subsequent segment reduction."""
    global _BACKEND
    if name not in BACKENDS:
        raise ValueError(f"unknown kernel backend {name!r}; choose from {BACKENDS}")
    _BACKEND = name


@contextlib.contextmanager
def use_backend(name: str):
    """Context manager pinning the kernel backend inside its block."""
    previous = get_backend()
    set_backend(name)
    try:
        yield
    finally:
        set_backend(previous)


class SegmentPlan:
    """Immutable CSR layout of one segment-id array.

    Precomputes, once, everything the fused kernels need to reduce any
    number of value arrays over the same segment structure: the stable
    sort permutation by segment id, CSR row pointers, the list of
    non-empty segments with their row starts (``reduceat`` offsets),
    and the per-segment element counts (cached in integer, float and
    clamped-float form so ``segment_mean`` / degree normalisation never
    re-run ``np.bincount``). Flattened bincount indices are memoised
    per value row-width on first use.

    The plan assumes the id array it was built from is not mutated
    afterwards; graph edge arrays are immutable in this codebase.
    """

    __slots__ = (
        "segment_ids",
        "num_segments",
        "order",
        "indptr",
        "present",
        "starts",
        "counts",
        "counts_float",
        "counts_clamped",
        "_flat_indices",
    )

    def __init__(self, segment_ids: np.ndarray, num_segments: int):
        ids = np.asarray(segment_ids, dtype=np.int64)
        if ids.ndim != 1:
            raise ValueError(f"segment ids must be 1-D, got shape {ids.shape}")
        num_segments = int(num_segments)
        counts = np.bincount(ids, minlength=num_segments)
        if counts.shape[0] > num_segments:
            raise IndexError(
                f"segment id {int(ids.max())} out of range for "
                f"{num_segments} segments"
            )
        self.segment_ids = ids
        self.num_segments = num_segments
        self.order = np.argsort(ids, kind="stable")
        self.counts = counts
        indptr = np.zeros(num_segments + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        self.indptr = indptr
        self.present = np.flatnonzero(counts)
        self.starts = indptr[self.present]
        counts_float = counts.astype(np.float64)
        counts_float.flags.writeable = False
        self.counts_float = counts_float
        counts_clamped = np.maximum(counts_float, 1.0)
        counts_clamped.flags.writeable = False
        self.counts_clamped = counts_clamped
        self._flat_indices: dict[int, np.ndarray] = {}

    def flat_index(self, row_width: int) -> np.ndarray:
        """``segment_ids * row_width + column`` raveled, memoised per width.

        This is the output index for the flattened-``bincount`` sum
        kernel over values of shape ``(len(segment_ids), row_width)``.
        """
        cached = self._flat_indices.get(row_width)
        if cached is None:
            cached = (
                self.segment_ids[:, None] * row_width + np.arange(row_width)
            ).ravel()
            self._flat_indices[row_width] = cached
        return cached


class LruMap:
    """Bounded mapping with least-recently-used eviction.

    The one cache shape this codebase needs, factored out of the plan
    memo below so other caches (the serve layer's per-graph plan cache)
    share its semantics: :meth:`get` promotes the entry to
    most-recently-used, :meth:`peek` reads without promoting, and
    :meth:`put` inserts (promoting on overwrite) then evicts from the
    cold end until the map fits ``capacity``, returning what it dropped
    so callers can count or finalise evictions.
    """

    __slots__ = ("capacity", "_entries")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._entries: OrderedDict = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key) -> bool:
        return key in self._entries

    def get(self, key, default=None):
        """Value for ``key`` (promoted to most-recently-used) or ``default``."""
        if key not in self._entries:
            return default
        self._entries.move_to_end(key)
        return self._entries[key]

    def peek(self, key, default=None):
        """Value for ``key`` without touching the recency order."""
        return self._entries.get(key, default)

    def put(self, key, value) -> list:
        """Insert ``key -> value``; return the ``(key, value)`` pairs evicted."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        evicted = []
        while len(self._entries) > self.capacity:
            evicted.append(self._entries.popitem(last=False))
        return evicted

    def clear(self) -> None:
        self._entries.clear()


# Plan memo for call sites that do not thread an explicit plan (graph
# pooling, KG alignment). Keyed by the identity of the id array: a live
# entry pins its array, so the id cannot be recycled while the entry
# exists. Bounded so ad-hoc id arrays cannot grow the memo forever.
_PLAN_MEMO = LruMap(capacity=128)


@contract(
    globals=("_PLAN_MEMO",),
    reason="bounded identity-keyed memo; plans are immutable once built",
)
def plan_for(segment_ids: np.ndarray, num_segments: int) -> SegmentPlan:
    """Plan for ``(segment_ids, num_segments)``, memoised by array identity.

    Long-lived id arrays (graph edge destinations held by a
    ``GraphCache``) get their plan built exactly once; passing the same
    array object again returns the cached plan.
    """
    key = (id(segment_ids), int(num_segments))
    plan = _PLAN_MEMO.get(key)
    if plan is not None and plan.segment_ids is segment_ids:
        return plan
    ids = np.asarray(segment_ids, dtype=np.int64)
    plan = SegmentPlan(ids, num_segments)
    if plan.segment_ids is not segment_ids:
        # The input needed conversion; key the memo by the converted
        # array the plan actually holds so identity stays meaningful.
        key = (id(plan.segment_ids), int(num_segments))
    _PLAN_MEMO.put(key, plan)
    return plan


def peek_plan(segment_ids: np.ndarray, num_segments: int) -> SegmentPlan | None:
    """Cached plan for ``(segment_ids, num_segments)``, or None (no build)."""
    key = (id(segment_ids), int(num_segments))
    plan = _PLAN_MEMO.peek(key)
    if plan is not None and plan.segment_ids is segment_ids:
        return plan
    return None


def segment_counts(
    segment_ids: np.ndarray,
    num_segments: int,
    plan: SegmentPlan | None = None,
    clamped: bool = False,
) -> np.ndarray:
    """Per-segment element counts as ``float64``; ``clamped`` floors at 1.

    Served from a plan's precomputed (read-only) count caches when one
    is supplied or memoised; otherwise a fresh ``np.bincount``. This is
    the single home of the count computation — ``segment_mean`` and
    degree normalisation both go through it.
    """
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    if plan is None:
        plan = peek_plan(segment_ids, num_segments)
    if plan is not None:
        return plan.counts_clamped if clamped else plan.counts_float
    counts = np.bincount(segment_ids, minlength=num_segments).astype(np.float64)
    return np.maximum(counts, 1.0) if clamped else counts


# ----------------------------------------------------------------------
# kernel counters (bytes moved / elements reduced per call)
# ----------------------------------------------------------------------
class KernelCounters:
    """Per-kernel bytes-read / bytes-written / elements-reduced counters.

    Installed with :func:`set_kernel_counters` / :func:`count_kernels`;
    while none is installed the kernels pay exactly one module-global
    load per call (the same discipline as the autograd tape hook).
    ``clock`` is optional and injectable (``repro.obs`` passes
    ``time.perf_counter``; this module never reads a clock itself) —
    with a clock, per-kernel seconds are accumulated so bytes-moved can
    be expressed as achieved effective bandwidth.

    Counting convention: *bytes read* covers the value and index arrays
    a call consumes, *bytes written* the output it produces (for the
    in-place :func:`index_add`, the updated slots), and *elements
    reduced* the scalar elements folded into output slots. Counter
    updates never touch the reduction arithmetic, so counted runs stay
    bit-identical to uncounted ones.
    """

    __slots__ = ("clock", "stats")

    def __init__(self, clock=None):
        self.clock = clock
        self.stats: dict[str, dict] = {}

    def record(
        self,
        kernel: str,
        bytes_read: int,
        bytes_written: int,
        elements: int,
        seconds: float = 0.0,
    ) -> None:
        entry = self.stats.get(kernel)
        if entry is None:
            entry = self.stats[kernel] = {
                "calls": 0,
                "bytes_read": 0,
                "bytes_written": 0,
                "elements_reduced": 0,
                "seconds": 0.0,
            }
        entry["calls"] += 1
        entry["bytes_read"] += int(bytes_read)
        entry["bytes_written"] += int(bytes_written)
        entry["elements_reduced"] += int(elements)
        entry["seconds"] += float(seconds)

    def snapshot(self) -> dict[str, dict]:
        """Copy of the per-kernel stats, with derived totals/bandwidth."""
        out: dict[str, dict] = {}
        for kernel, entry in self.stats.items():
            record = dict(entry)
            moved = record["bytes_read"] + record["bytes_written"]
            record["bytes_moved"] = moved
            seconds = record["seconds"]
            record["effective_gbps"] = (
                moved / seconds / 1e9 if seconds > 0.0 else None
            )
            out[kernel] = record
        return out


_COUNTERS: KernelCounters | None = None


@contract(
    globals=("_COUNTERS",),
    reason="installing the counter collector is this global's one writer",
)
def set_kernel_counters(counters: KernelCounters | None) -> None:
    """Install (or with ``None`` remove) the kernel counter collector."""
    global _COUNTERS
    if (
        counters is not None
        and _COUNTERS is not None
        and _COUNTERS is not counters
    ):
        raise RuntimeError("kernel counters are already installed")
    _COUNTERS = counters


def get_kernel_counters() -> KernelCounters | None:
    """The installed collector (``None`` while counting is off)."""
    return _COUNTERS


@contextlib.contextmanager
def count_kernels(counters: KernelCounters | None = None):
    """Collect kernel counters inside the block; yields the collector."""
    collector = counters if counters is not None else KernelCounters()
    set_kernel_counters(collector)
    try:
        yield collector
    finally:
        set_kernel_counters(None)


def _nbytes(array) -> int:
    return int(getattr(array, "nbytes", 0))


# ----------------------------------------------------------------------
# kernels
# ----------------------------------------------------------------------
def scatter_sum(
    values: np.ndarray,
    segment_ids: np.ndarray,
    num_segments: int,
    plan: SegmentPlan | None = None,
) -> np.ndarray:
    """``out[s] = sum of values rows with segment_ids == s`` (float64).

    Repeated ids accumulate; empty segments are zero. The fused path is
    bit-identical to the naive one (same per-slot accumulation order).
    """
    values = np.asarray(values)
    counters = _COUNTERS
    if counters is None:
        return _scatter_sum_impl(values, segment_ids, num_segments, plan)
    t_start = counters.clock() if counters.clock is not None else 0.0
    out = _scatter_sum_impl(values, segment_ids, num_segments, plan)
    counters.record(
        "scatter_sum",
        bytes_read=values.nbytes + _nbytes(segment_ids),
        bytes_written=out.nbytes,
        elements=values.size,
        seconds=counters.clock() - t_start if counters.clock is not None else 0.0,
    )
    return out


def _scatter_sum_impl(
    values: np.ndarray,
    segment_ids: np.ndarray,
    num_segments: int,
    plan: SegmentPlan | None,
) -> np.ndarray:
    if _BACKEND == "naive":
        out = np.zeros((num_segments,) + values.shape[1:], dtype=np.float64)
        _index_add_impl(out, segment_ids, values)
        return out
    if values.ndim == 1:
        out = np.bincount(segment_ids, weights=values, minlength=num_segments)
        if out.shape[0] != num_segments:
            raise IndexError(
                f"segment id out of range for {num_segments} segments"
            )
        return out
    if values.size == 0:
        # Covers zero rows and zero-width rows; reshape(-1) on a
        # zero-size array would be ambiguous.
        return np.zeros((num_segments,) + values.shape[1:], dtype=np.float64)
    flat = values.reshape(len(values), -1)
    width = flat.shape[1]
    if plan is None:
        plan = plan_for(segment_ids, num_segments)
    out = np.bincount(
        plan.flat_index(width),
        weights=flat.ravel(),
        minlength=num_segments * width,
    )
    return out.reshape((num_segments,) + values.shape[1:])


def scatter_max(
    values: np.ndarray,
    segment_ids: np.ndarray,
    num_segments: int,
    plan: SegmentPlan | None = None,
) -> np.ndarray:
    """``out[s] = max over values rows with segment_ids == s``.

    Empty segments are ``-inf`` (callers decide how to mask them). The
    fused path equals the naive one exactly — max is order-insensitive.
    """
    values = np.asarray(values)
    counters = _COUNTERS
    if counters is None:
        return _scatter_max_impl(values, segment_ids, num_segments, plan)
    t_start = counters.clock() if counters.clock is not None else 0.0
    out = _scatter_max_impl(values, segment_ids, num_segments, plan)
    counters.record(
        "scatter_max",
        bytes_read=values.nbytes + _nbytes(segment_ids),
        bytes_written=out.nbytes,
        elements=values.size,
        seconds=counters.clock() - t_start if counters.clock is not None else 0.0,
    )
    return out


def _scatter_max_impl(
    values: np.ndarray,
    segment_ids: np.ndarray,
    num_segments: int,
    plan: SegmentPlan | None,
) -> np.ndarray:
    out = np.full(
        (num_segments,) + values.shape[1:], -np.inf, dtype=np.float64
    )
    # 1-D values: numpy's ufunc.at fast path already beats the sorted
    # reduceat (measured); the "fused" backend keeps it.
    if _BACKEND == "naive" or values.ndim == 1 or len(values) == 0:
        np.maximum.at(out, segment_ids, values)
        return out
    if plan is None:
        plan = plan_for(segment_ids, num_segments)
    if plan.present.size:
        sorted_values = np.take(values, plan.order, axis=0)
        out[plan.present] = np.maximum.reduceat(
            sorted_values, plan.starts, axis=0
        )
    return out


def _selects_unique_elements(index) -> bool:
    """True when ``index`` cannot address the same element twice.

    Basic indexing (ints, slices, Ellipsis, newaxis) and boolean masks
    select every element at most once, so an in-place ``+=`` equals the
    unbuffered ``np.add.at`` exactly — and runs an order of magnitude
    faster. Integer arrays may repeat and need true accumulation.
    """
    parts = index if isinstance(index, tuple) else (index,)
    for part in parts:
        if isinstance(part, (int, np.integer, slice)) or part is Ellipsis or part is None:
            continue
        if isinstance(part, np.ndarray) and part.dtype == np.bool_:
            continue
        return False
    return True


@contract(
    mutates=("out",),
    reason="the sanctioned in-place accumulation API; callers own out",
)
def index_add(out: np.ndarray, index, values) -> None:
    """``out[index] += values`` with repeated-index accumulation, in place.

    The one sanctioned home of ``np.add.at``: the naive reference
    kernel, and the general fallback for index expressions (slices,
    tuples, boolean masks) the planned kernels do not cover. Index
    expressions that provably select unique elements (basic indexing,
    boolean masks) take a plain in-place ``+=`` instead — bit-identical,
    without the unbuffered ufunc's per-element dispatch.
    """
    counters = _COUNTERS
    if counters is None:
        _index_add_impl(out, index, values)
        return
    t_start = counters.clock() if counters.clock is not None else 0.0
    _index_add_impl(out, index, values)
    value_bytes = _nbytes(values)
    counters.record(
        "index_add",
        bytes_read=value_bytes + _nbytes(index),
        bytes_written=value_bytes,
        elements=int(getattr(values, "size", 0)),
        seconds=counters.clock() - t_start if counters.clock is not None else 0.0,
    )


def _index_add_impl(out: np.ndarray, index, values) -> None:
    if _selects_unique_elements(index):
        out[index] += values
    else:
        np.add.at(out, index, values)


def scatter_add_rows(
    values: np.ndarray, index: np.ndarray, num_rows: int
) -> np.ndarray:
    """Adjoint of row gathering: scatter ``values`` rows back to ``num_rows``.

    Equivalent to ``np.add.at(zeros, index, values)`` — and routed
    through :func:`scatter_sum`, so the fused backend accelerates
    gather backwards exactly like segment sums.
    """
    return scatter_sum(values, index, num_rows)


def is_row_index(index) -> bool:
    """True when ``index`` selects whole rows by a 1-D integer array —
    the planned-kernel case for gather/getitem adjoints."""
    return (
        isinstance(index, np.ndarray)
        and index.ndim == 1
        and index.dtype.kind in "iu"
    )
