"""Neural-network functional layer: activations, softmax family, losses.

Everything here is a composite of the primitives in
:mod:`repro.autograd.ops`, so gradients come for free and are covered
by the same finite-difference test harness.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor, as_tensor, is_grad_enabled

__all__ = [
    "relu",
    "leaky_relu",
    "elu",
    "tanh",
    "sigmoid",
    "softmax",
    "log_softmax",
    "dropout",
    "lstm_gate_update",
    "nll_loss",
    "cross_entropy",
    "binary_cross_entropy_with_logits",
    "mse_loss",
    "ACTIVATIONS",
]


def relu(x) -> Tensor:
    x = as_tensor(x)
    mask = (x.data > 0).astype(np.float64)
    return Tensor._from_op(x.data * mask, (x,), lambda g: (g * mask,))


def leaky_relu(x, negative_slope: float = 0.2) -> Tensor:
    x = as_tensor(x)
    factor = np.where(x.data > 0, 1.0, negative_slope)
    return Tensor._from_op(x.data * factor, (x,), lambda g: (g * factor,))


def elu(x, alpha: float = 1.0) -> Tensor:
    x = as_tensor(x)
    negative = alpha * (np.exp(np.minimum(x.data, 0.0)) - 1.0)
    out = np.where(x.data > 0, x.data, negative)
    factor = np.where(x.data > 0, 1.0, negative + alpha)
    return Tensor._from_op(out, (x,), lambda g: (g * factor,))


def tanh(x) -> Tensor:
    return ops.tanh(x)


def sigmoid(x) -> Tensor:
    return ops.sigmoid(x)


ACTIVATIONS = {
    "relu": relu,
    "leaky_relu": leaky_relu,
    "elu": elu,
    "tanh": tanh,
    "sigmoid": sigmoid,
    "linear": lambda x: as_tensor(x),
}


def softmax(x, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    x = as_tensor(x)
    shift = Tensor(x.data.max(axis=axis, keepdims=True))
    exps = ops.exp(x - shift)
    return exps / ops.sum(exps, axis=axis, keepdims=True)


def log_softmax(x, axis: int = -1) -> Tensor:
    x = as_tensor(x)
    shift = Tensor(x.data.max(axis=axis, keepdims=True))
    shifted = x - shift
    log_norm = ops.log(ops.sum(ops.exp(shifted), axis=axis, keepdims=True))
    return shifted - log_norm


def dropout(x, p: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout; identity when ``training`` is False or ``p == 0``."""
    if not training or p <= 0.0:
        return as_tensor(x)
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    x = as_tensor(x)
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep).astype(np.float64) / keep
    return Tensor._from_op(x.data * mask, (x,), lambda g: (g * mask,))


def lstm_gate_update(gates, c_prev) -> tuple[Tensor, Tensor]:
    """Elementwise LSTM state update from pre-activation ``gates``.

    ``gates`` is ``(N, 4d)`` laid out ``[input, forget, cell, output]``;
    returns ``(h_new, c_new)``. Spelled as two tape nodes sharing the
    precomputed activations instead of the ~13-node composite (four
    slice selections, four activations, the gating arithmetic) an LSTM
    step would otherwise record — the cell runs once per sequence
    position per direction, so the tape overhead is material. Forward
    values match the composite spelling exactly (same stable sigmoid).
    """
    gates, c_prev = as_tensor(gates), as_tensor(c_prev)
    if gates.ndim != 2 or gates.shape[1] % 4:
        raise ValueError(f"gates must be (N, 4d), got {gates.shape}")
    d = gates.shape[1] // 4
    raw = gates.data
    # Same numerically stable logistic as ops.sigmoid.
    i_gate = 0.5 * (np.tanh(0.5 * raw[:, 0 * d : 1 * d]) + 1.0)
    f_gate = 0.5 * (np.tanh(0.5 * raw[:, 1 * d : 2 * d]) + 1.0)
    g_gate = np.tanh(raw[:, 2 * d : 3 * d])
    o_gate = 0.5 * (np.tanh(0.5 * raw[:, 3 * d : 4 * d]) + 1.0)
    c_data = f_gate * c_prev.data + i_gate * g_gate
    tanh_c = np.tanh(c_data)

    def backward_c(g):
        grad_gates = np.zeros_like(raw)
        grad_gates[:, 0 * d : 1 * d] = g * g_gate * i_gate * (1.0 - i_gate)
        grad_gates[:, 1 * d : 2 * d] = (
            g * c_prev.data * f_gate * (1.0 - f_gate)
        )
        grad_gates[:, 2 * d : 3 * d] = g * i_gate * (1.0 - g_gate * g_gate)
        grad_c = g * f_gate if c_prev.requires_grad else None
        return grad_gates, grad_c

    c_new = Tensor._from_op(c_data, (gates, c_prev), backward_c)

    def backward_h(g):
        grad_gates = np.zeros_like(raw)
        grad_gates[:, 3 * d : 4 * d] = g * tanh_c * o_gate * (1.0 - o_gate)
        return grad_gates, g * o_gate * (1.0 - tanh_c * tanh_c)

    h_new = Tensor._from_op(o_gate * tanh_c, (gates, c_new), backward_h)
    return h_new, c_new


def nll_loss(log_probs, targets, reduction: str = "mean") -> Tensor:
    """Negative log-likelihood given log-probabilities (N, C)."""
    log_probs = as_tensor(log_probs)
    targets = np.asarray(targets, dtype=np.int64)
    rows = np.arange(log_probs.shape[0])
    picked = ops.getitem(log_probs, (rows, targets))
    loss = -picked
    return _reduce(loss, reduction)


def cross_entropy(logits, targets, reduction: str = "mean") -> Tensor:
    """Softmax cross-entropy from raw logits (N, C) and int targets (N,)."""
    return nll_loss(log_softmax(logits, axis=-1), targets, reduction)


def binary_cross_entropy_with_logits(logits, targets, reduction: str = "mean") -> Tensor:
    """Stable multi-label BCE: ``softplus(x) - x * y`` elementwise.

    Used for the PPI-style inductive task where each node carries
    multiple binary labels.
    """
    logits = as_tensor(logits)
    targets = as_tensor(targets)
    loss = ops.softplus(logits) - logits * targets
    return _reduce(loss, reduction)


def mse_loss(predictions, targets, reduction: str = "mean") -> Tensor:
    predictions = as_tensor(predictions)
    targets = as_tensor(targets)
    diff = predictions - targets
    return _reduce(diff * diff, reduction)


def _reduce(loss: Tensor, reduction: str) -> Tensor:
    if reduction == "mean":
        return ops.mean(loss)
    if reduction == "sum":
        return ops.sum(loss)
    if reduction == "none":
        return loss
    raise ValueError(f"unknown reduction {reduction!r}")
