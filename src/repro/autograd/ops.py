"""Primitive differentiable operations.

Every function takes and returns :class:`~repro.autograd.tensor.Tensor`
objects (scalars and numpy arrays are coerced). Each op builds the
result through :meth:`Tensor._from_op`, attaching a closure that maps
the output gradient to per-parent gradients (the vector-Jacobian
product). All ops are covered by finite-difference tests in
``tests/autograd``.
"""

from __future__ import annotations

import builtins

import numpy as np

from repro.autograd.tensor import Tensor, as_tensor

__all__ = [
    "add",
    "sub",
    "mul",
    "div",
    "neg",
    "pow",
    "exp",
    "log",
    "sqrt",
    "tanh",
    "sigmoid",
    "softplus",
    "abs",
    "maximum",
    "clip",
    "matmul",
    "sum",
    "mean",
    "max",
    "reshape",
    "transpose",
    "getitem",
    "concatenate",
    "stack",
    "where",
]


def add(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    return Tensor._from_op(a.data + b.data, (a, b), lambda g: (g, g))


def sub(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    return Tensor._from_op(a.data - b.data, (a, b), lambda g: (g, -g))


def mul(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    return Tensor._from_op(
        a.data * b.data, (a, b), lambda g: (g * b.data, g * a.data)
    )


def div(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    return Tensor._from_op(
        a.data / b.data,
        (a, b),
        lambda g: (g / b.data, -g * a.data / (b.data * b.data)),
    )


def neg(a) -> Tensor:
    a = as_tensor(a)
    return Tensor._from_op(-a.data, (a,), lambda g: (-g,))


def pow(a, exponent: float) -> Tensor:
    """Elementwise power with a constant (non-differentiated) exponent."""
    a = as_tensor(a)
    exponent = float(exponent)
    out = a.data**exponent
    return Tensor._from_op(
        out, (a,), lambda g: (g * exponent * a.data ** (exponent - 1.0),)
    )


def exp(a) -> Tensor:
    a = as_tensor(a)
    out = np.exp(a.data)
    return Tensor._from_op(out, (a,), lambda g: (g * out,))


def log(a) -> Tensor:
    a = as_tensor(a)
    return Tensor._from_op(np.log(a.data), (a,), lambda g: (g / a.data,))


def sqrt(a) -> Tensor:
    a = as_tensor(a)
    out = np.sqrt(a.data)
    return Tensor._from_op(out, (a,), lambda g: (g * 0.5 / out,))


def tanh(a) -> Tensor:
    a = as_tensor(a)
    out = np.tanh(a.data)
    return Tensor._from_op(out, (a,), lambda g: (g * (1.0 - out * out),))


def sigmoid(a) -> Tensor:
    a = as_tensor(a)
    # Numerically stable logistic via tanh.
    out = 0.5 * (np.tanh(0.5 * a.data) + 1.0)
    return Tensor._from_op(out, (a,), lambda g: (g * out * (1.0 - out),))


def softplus(a) -> Tensor:
    """``log(1 + exp(x))`` computed without overflow."""
    a = as_tensor(a)
    out = np.logaddexp(0.0, a.data)
    grad_factor = 0.5 * (np.tanh(0.5 * a.data) + 1.0)
    return Tensor._from_op(out, (a,), lambda g: (g * grad_factor,))


def abs(a) -> Tensor:
    a = as_tensor(a)
    return Tensor._from_op(
        np.abs(a.data), (a,), lambda g: (g * np.sign(a.data),)
    )


def maximum(a, b) -> Tensor:
    """Elementwise maximum; gradient is split evenly on exact ties."""
    a, b = as_tensor(a), as_tensor(b)
    out = np.maximum(a.data, b.data)

    def backward(g):
        a_wins = (a.data > b.data).astype(np.float64)
        b_wins = (b.data > a.data).astype(np.float64)
        tie = 1.0 - a_wins - b_wins
        return g * (a_wins + 0.5 * tie), g * (b_wins + 0.5 * tie)

    return Tensor._from_op(out, (a, b), backward)


def clip(a, low: float | None = None, high: float | None = None) -> Tensor:
    """Clamp values; gradient is zero outside the active range."""
    a = as_tensor(a)
    out = np.clip(a.data, low, high)
    inside = np.ones_like(a.data)
    if low is not None:
        inside = inside * (a.data >= low)
    if high is not None:
        inside = inside * (a.data <= high)
    return Tensor._from_op(out, (a,), lambda g: (g * inside,))


def where(condition, a, b) -> Tensor:
    """Select from ``a`` where ``condition`` holds, else from ``b``.

    ``condition`` is treated as a constant (no gradient flows to it).
    """
    cond = np.asarray(
        condition.data if isinstance(condition, Tensor) else condition
    ).astype(bool)
    a, b = as_tensor(a), as_tensor(b)
    out = np.where(cond, a.data, b.data)
    return Tensor._from_op(
        out, (a, b), lambda g: (g * cond, g * (~cond))
    )


def matmul(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    if a.ndim < 2 or b.ndim < 2:
        raise ValueError("matmul requires operands with ndim >= 2")
    out = a.data @ b.data

    def backward(g):
        grad_a = g @ b.data.swapaxes(-1, -2)
        grad_b = a.data.swapaxes(-1, -2) @ g
        return grad_a, grad_b

    return Tensor._from_op(out, (a, b), backward)


def sum(a, axis=None, keepdims: bool = False) -> Tensor:
    a = as_tensor(a)
    out = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(g):
        g = np.asarray(g)
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis)
        return (np.broadcast_to(g, a.data.shape),)

    return Tensor._from_op(out, (a,), backward)


def mean(a, axis=None, keepdims: bool = False) -> Tensor:
    a = as_tensor(a)
    out = a.data.mean(axis=axis, keepdims=keepdims)
    count = a.data.size if axis is None else a.data.shape[axis]

    def backward(g):
        g = np.asarray(g)
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis)
        return (np.broadcast_to(g, a.data.shape) / count,)

    return Tensor._from_op(out, (a,), backward)


def max(a, axis=None, keepdims: bool = False) -> Tensor:
    """Reduction max; gradient is shared evenly among tied maxima."""
    a = as_tensor(a)
    out = a.data.max(axis=axis, keepdims=keepdims)
    out_keep = a.data.max(axis=axis, keepdims=True)
    mask = (a.data == out_keep).astype(np.float64)
    mask = mask / mask.sum(axis=axis, keepdims=True)

    def backward(g):
        g = np.asarray(g)
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis)
        return (np.broadcast_to(g, mask.shape) * mask,)

    return Tensor._from_op(out, (a,), backward)


def reshape(a, shape) -> Tensor:
    a = as_tensor(a)
    original = a.data.shape
    return Tensor._from_op(
        a.data.reshape(shape), (a,), lambda g: (g.reshape(original),)
    )


def transpose(a, axes=None) -> Tensor:
    a = as_tensor(a)
    out = a.data.transpose(axes) if axes else a.data.T
    if axes:
        inverse = np.argsort(axes)
        backward = lambda g: (g.transpose(inverse),)  # noqa: E731
    else:
        backward = lambda g: (g.T,)  # noqa: E731
    return Tensor._from_op(out, (a,), backward)


def getitem(a, index) -> Tensor:
    """Differentiable indexing (slices, integers, integer arrays).

    The adjoint scatters the output gradient back with accumulation,
    so repeated indices (fancy indexing) are handled correctly — this
    is the primitive behind neighbor gathering in message passing.
    """
    a = as_tensor(a)
    out = a.data[index]

    def backward(g):
        grad = np.zeros_like(a.data)
        np.add.at(grad, index, g)
        return (grad,)

    return Tensor._from_op(out, (a,), backward)


def concatenate(tensors, axis: int = 0) -> Tensor:
    tensors = [as_tensor(t) for t in tensors]
    out = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g):
        grads = []
        for start, stop in zip(offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * g.ndim
            slicer[axis] = slice(start, stop)
            grads.append(g[tuple(slicer)])
        return tuple(grads)

    return Tensor._from_op(out, tensors, backward)


def stack(tensors, axis: int = 0) -> Tensor:
    tensors = [as_tensor(t) for t in tensors]
    out = np.stack([t.data for t in tensors], axis=axis)

    def backward(g):
        return tuple(np.take(g, i, axis=axis) for i in range(len(tensors)))

    return Tensor._from_op(out, tensors, backward)
