"""Primitive differentiable operations.

Every function takes and returns :class:`~repro.autograd.tensor.Tensor`
objects (scalars and numpy arrays are coerced). Each op builds the
result through :meth:`Tensor._from_op`, attaching a closure that maps
the output gradient to per-parent gradients (the vector-Jacobian
product). All ops are covered by finite-difference tests in
``tests/autograd``.
"""

from __future__ import annotations

import builtins

import numpy as np

from repro.autograd import kernels
from repro.autograd.tensor import Tensor, as_tensor

__all__ = [
    "add",
    "sub",
    "mul",
    "div",
    "neg",
    "pow",
    "exp",
    "log",
    "sqrt",
    "tanh",
    "sigmoid",
    "softplus",
    "abs",
    "maximum",
    "clip",
    "matmul",
    "linear",
    "sum",
    "mean",
    "max",
    "reshape",
    "transpose",
    "getitem",
    "concatenate",
    "stack",
    "where",
    "weighted_sum",
]


def add(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    return Tensor._from_op(a.data + b.data, (a, b), lambda g: (g, g))


def sub(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    return Tensor._from_op(
        a.data - b.data,
        (a, b),
        lambda g: (g, -g if b.requires_grad else None),
    )


def mul(a, b) -> Tensor:
    # VJP products are skipped for constant operands (e.g. dropout
    # masks, input features): the tape drops None parent gradients.
    a, b = as_tensor(a), as_tensor(b)
    return Tensor._from_op(
        a.data * b.data,
        (a, b),
        lambda g: (
            g * b.data if a.requires_grad else None,
            g * a.data if b.requires_grad else None,
        ),
    )


def div(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    return Tensor._from_op(
        a.data / b.data,
        (a, b),
        lambda g: (
            g / b.data if a.requires_grad else None,
            -g * a.data / (b.data * b.data) if b.requires_grad else None,
        ),
    )


def neg(a) -> Tensor:
    a = as_tensor(a)
    return Tensor._from_op(-a.data, (a,), lambda g: (-g,))


def pow(a, exponent: float) -> Tensor:
    """Elementwise power with a constant (non-differentiated) exponent."""
    a = as_tensor(a)
    exponent = float(exponent)
    out = a.data**exponent
    return Tensor._from_op(
        out, (a,), lambda g: (g * exponent * a.data ** (exponent - 1.0),)
    )


def exp(a) -> Tensor:
    a = as_tensor(a)
    out = np.exp(a.data)
    return Tensor._from_op(out, (a,), lambda g: (g * out,))


def log(a) -> Tensor:
    a = as_tensor(a)
    return Tensor._from_op(np.log(a.data), (a,), lambda g: (g / a.data,))


def sqrt(a) -> Tensor:
    a = as_tensor(a)
    out = np.sqrt(a.data)
    return Tensor._from_op(out, (a,), lambda g: (g * 0.5 / out,))


def tanh(a) -> Tensor:
    a = as_tensor(a)
    out = np.tanh(a.data)
    return Tensor._from_op(out, (a,), lambda g: (g * (1.0 - out * out),))


def sigmoid(a) -> Tensor:
    a = as_tensor(a)
    # Numerically stable logistic via tanh.
    out = 0.5 * (np.tanh(0.5 * a.data) + 1.0)
    return Tensor._from_op(out, (a,), lambda g: (g * out * (1.0 - out),))


def softplus(a) -> Tensor:
    """``log(1 + exp(x))`` computed without overflow."""
    a = as_tensor(a)
    out = np.logaddexp(0.0, a.data)
    grad_factor = 0.5 * (np.tanh(0.5 * a.data) + 1.0)
    return Tensor._from_op(out, (a,), lambda g: (g * grad_factor,))


def abs(a) -> Tensor:
    a = as_tensor(a)
    return Tensor._from_op(
        np.abs(a.data), (a,), lambda g: (g * np.sign(a.data),)
    )


def maximum(a, b) -> Tensor:
    """Elementwise maximum; gradient is split evenly on exact ties."""
    a, b = as_tensor(a), as_tensor(b)
    out = np.maximum(a.data, b.data)

    def backward(g):
        a_wins = (a.data > b.data).astype(np.float64)
        b_wins = (b.data > a.data).astype(np.float64)
        tie = 1.0 - a_wins - b_wins
        return (
            g * (a_wins + 0.5 * tie) if a.requires_grad else None,
            g * (b_wins + 0.5 * tie) if b.requires_grad else None,
        )

    return Tensor._from_op(out, (a, b), backward)


def clip(a, low: float | None = None, high: float | None = None) -> Tensor:
    """Clamp values; gradient is zero outside the active range."""
    a = as_tensor(a)
    out = np.clip(a.data, low, high)
    inside = np.ones_like(a.data)
    if low is not None:
        inside = inside * (a.data >= low)
    if high is not None:
        inside = inside * (a.data <= high)
    return Tensor._from_op(out, (a,), lambda g: (g * inside,))


def where(condition, a, b) -> Tensor:
    """Select from ``a`` where ``condition`` holds, else from ``b``.

    ``condition`` is treated as a constant (no gradient flows to it).
    """
    cond = np.asarray(
        condition.data if isinstance(condition, Tensor) else condition
    ).astype(bool)
    a, b = as_tensor(a), as_tensor(b)
    out = np.where(cond, a.data, b.data)
    return Tensor._from_op(
        out,
        (a, b),
        lambda g: (
            g * cond if a.requires_grad else None,
            g * (~cond) if b.requires_grad else None,
        ),
    )


def matmul(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    if a.ndim < 2 or b.ndim < 2:
        raise ValueError("matmul requires operands with ndim >= 2")
    out = a.data @ b.data

    def backward(g):
        grad_a = g @ b.data.swapaxes(-1, -2) if a.requires_grad else None
        grad_b = a.data.swapaxes(-1, -2) @ g if b.requires_grad else None
        return grad_a, grad_b

    return Tensor._from_op(out, (a, b), backward)


def sum(a, axis=None, keepdims: bool = False) -> Tensor:
    a = as_tensor(a)
    out = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(g):
        g = np.asarray(g)
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis)
        return (np.broadcast_to(g, a.data.shape),)

    return Tensor._from_op(out, (a,), backward)


def mean(a, axis=None, keepdims: bool = False) -> Tensor:
    a = as_tensor(a)
    out = a.data.mean(axis=axis, keepdims=keepdims)
    count = a.data.size if axis is None else a.data.shape[axis]

    def backward(g):
        g = np.asarray(g)
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis)
        return (np.broadcast_to(g, a.data.shape) / count,)

    return Tensor._from_op(out, (a,), backward)


def max(a, axis=None, keepdims: bool = False) -> Tensor:
    """Reduction max; gradient is shared evenly among tied maxima."""
    a = as_tensor(a)
    out = a.data.max(axis=axis, keepdims=keepdims)
    out_keep = a.data.max(axis=axis, keepdims=True)
    mask = (a.data == out_keep).astype(np.float64)
    mask = mask / mask.sum(axis=axis, keepdims=True)

    def backward(g):
        g = np.asarray(g)
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis)
        return (np.broadcast_to(g, mask.shape) * mask,)

    return Tensor._from_op(out, (a,), backward)


def reshape(a, shape) -> Tensor:
    a = as_tensor(a)
    original = a.data.shape
    return Tensor._from_op(
        a.data.reshape(shape), (a,), lambda g: (g.reshape(original),)
    )


def transpose(a, axes=None) -> Tensor:
    a = as_tensor(a)
    out = a.data.transpose(axes) if axes else a.data.T
    if axes:
        inverse = np.argsort(axes)
        backward = lambda g: (g.transpose(inverse),)  # noqa: E731
    else:
        backward = lambda g: (g.T,)  # noqa: E731
    return Tensor._from_op(out, (a,), backward)


def getitem(a, index, plan=None) -> Tensor:
    """Differentiable indexing (slices, integers, integer arrays).

    The adjoint scatters the output gradient back with accumulation,
    so repeated indices (fancy indexing) are handled correctly — this
    is the primitive behind neighbor gathering in message passing. Row
    selection by a 1-D integer array (the neighbor-gather case) runs
    its forward through ``np.take`` and its adjoint through the
    planned scatter kernels; ``plan`` (a
    :class:`~repro.autograd.kernels.SegmentPlan` of ``index`` over
    ``len(a)`` segments) skips even the plan lookup.
    """
    a = as_tensor(a)
    if kernels.is_row_index(index):
        out = np.take(a.data, index, axis=0)
        num_rows = a.data.shape[0]

        def backward(g):
            return (kernels.scatter_sum(np.asarray(g), index, num_rows, plan),)

        return Tensor._from_op(out, (a,), backward)

    out = a.data[index]

    def backward(g):
        grad = np.zeros_like(a.data)
        kernels.index_add(grad, index, g)
        return (grad,)

    return Tensor._from_op(out, (a,), backward)


def linear(x, weight, bias=None) -> Tensor:
    """Affine map ``x @ weight + bias`` as a single tape node.

    The composed ``matmul`` + ``add`` spelling records two nodes and
    recovers the bias gradient by unbroadcasting a full-size gradient;
    fusing computes ``grad_bias`` as a column sum directly. ``weight``
    must be 2-D; ``x`` may carry leading batch dimensions.
    """
    x, weight = as_tensor(x), as_tensor(weight)
    if x.ndim < 2 or weight.ndim != 2:
        raise ValueError(
            f"linear expects x.ndim >= 2 and a 2-D weight, got "
            f"{x.shape} @ {weight.shape}"
        )
    out = x.data @ weight.data
    if bias is not None:
        bias = as_tensor(bias)
        out = out + bias.data

    def backward(g):
        grad_x = g @ weight.data.T if x.requires_grad else None
        if not weight.requires_grad:
            grad_w = None
        elif x.ndim == 2:
            grad_w = x.data.T @ g
        else:
            batch_axes = tuple(range(x.ndim - 1))
            grad_w = np.tensordot(x.data, g, axes=(batch_axes, batch_axes))
        if bias is None:
            return grad_x, grad_w
        grad_b = (
            g.reshape(-1, g.shape[-1]).sum(axis=0)
            if bias.requires_grad
            else None
        )
        return grad_x, grad_w, grad_b

    parents = (x, weight) if bias is None else (x, weight, bias)
    return Tensor._from_op(out, parents, backward)


def weighted_sum(tensors, weights) -> Tensor:
    """``sum_i weights[i] * tensors[i]`` as a single tape node.

    The mixture primitive of the supernet (Eq. 2): ``weights`` is a 1-D
    tensor with one scalar per candidate, ``tensors`` the candidate
    outputs (all the same shape). Fusing the mixture collapses the
    per-candidate ``getitem``/``mul``/``add`` chain — and its per-node
    temporaries on both passes — into one op; the weight gradient is a
    direct inner product instead of a full-size elementwise product
    reduced after the fact.
    """
    tensors = [as_tensor(t) for t in tensors]
    weights = as_tensor(weights)
    if weights.ndim != 1 or len(weights) != len(tensors):
        raise ValueError(
            f"weighted_sum needs one weight per tensor, got {weights.shape} "
            f"for {len(tensors)} tensors"
        )
    w = weights.data
    out = w[0] * tensors[0].data
    for i in range(1, len(tensors)):
        out += w[i] * tensors[i].data

    def backward(g):
        grads = [
            w[i] * g if t.requires_grad else None
            for i, t in enumerate(tensors)
        ]
        if weights.requires_grad:
            grads.append(np.array([np.vdot(g, t.data) for t in tensors]))
        else:
            grads.append(None)
        return tuple(grads)

    return Tensor._from_op(out, (*tensors, weights), backward)


def concatenate(tensors, axis: int = 0) -> Tensor:
    tensors = [as_tensor(t) for t in tensors]
    out = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g):
        grads = []
        for start, stop in zip(offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * g.ndim
            slicer[axis] = slice(start, stop)
            grads.append(g[tuple(slicer)])
        return tuple(grads)

    return Tensor._from_op(out, tensors, backward)


def stack(tensors, axis: int = 0) -> Tensor:
    tensors = [as_tensor(t) for t in tensors]
    out = np.stack([t.data for t in tensors], axis=axis)

    def backward(g):
        return tuple(np.take(g, i, axis=axis) for i in range(len(tensors)))

    return Tensor._from_op(out, tensors, backward)
