"""Reverse-mode autodiff substrate (numpy-backed PyTorch stand-in)."""

from repro.autograd.tensor import (
    Tensor,
    as_tensor,
    get_tape_hook,
    is_grad_enabled,
    no_grad,
    set_grad_enabled,
    set_tape_hook,
)
from repro.autograd import functional, kernels, ops, scatter

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "set_grad_enabled",
    "set_tape_hook",
    "get_tape_hook",
    "ops",
    "functional",
    "kernels",
    "scatter",
]
