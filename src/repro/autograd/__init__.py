"""Reverse-mode autodiff substrate (numpy-backed PyTorch stand-in)."""

from repro.autograd.tensor import (
    Tensor,
    as_tensor,
    is_grad_enabled,
    no_grad,
    set_grad_enabled,
)
from repro.autograd import ops, functional, scatter

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "set_grad_enabled",
    "ops",
    "functional",
    "scatter",
]
