"""Seeded synthetic graph generators.

The public benchmark graphs of the paper (Cora, CiteSeer, PubMed, PPI)
are not downloadable in this offline environment, so these generators
produce structurally analogous graphs:

* :func:`citation_graph` — a degree-corrected stochastic block model
  (communities = classes, homophilous) with class-conditional sparse
  bag-of-words features, mirroring the citation benchmarks;
* :func:`community_multilabel_graph` — overlapping communities whose
  memberships are the (multi-)labels, mirroring a PPI tissue graph.

All randomness flows through an explicit generator so every dataset is
reproducible from its seed; determinism is property-tested.
"""

from __future__ import annotations

import numpy as np

from repro.graph.data import Graph
from repro.graph.utils import to_undirected

__all__ = ["citation_graph", "community_multilabel_graph"]


def citation_graph(
    num_nodes: int,
    num_classes: int,
    num_features: int,
    rng: np.random.Generator,
    avg_degree: float = 4.0,
    homophily: float = 0.85,
    feature_signal: float = 0.7,
    words_per_node: int = 12,
    name: str = "citation",
) -> Graph:
    """Generate a homophilous citation-style graph.

    Parameters
    ----------
    homophily:
        Probability that an edge endpoint is drawn from the same class
        as the source (the rest are uniform over other classes). Lower
        values make aggregation noisier — we use this to qualitatively
        differentiate the Cora/CiteSeer/PubMed analogues.
    feature_signal:
        Fraction of each node's active "words" drawn from its class
        signature vocabulary rather than uniformly.
    words_per_node:
        Expected number of non-zero bag-of-words entries per node.
    """
    if num_classes < 2:
        raise ValueError("need at least two classes")
    labels = rng.integers(0, num_classes, size=num_nodes)

    # --- degree-corrected homophilous edges -------------------------------
    # Power-law-ish degree propensity: a few hub papers, many leaves.
    propensity = rng.pareto(2.5, size=num_nodes) + 1.0
    num_undirected = int(round(num_nodes * avg_degree / 2.0))
    by_class = [np.flatnonzero(labels == c) for c in range(num_classes)]
    class_props = [propensity[idx] for idx in by_class]
    class_probs = [p / p.sum() for p in class_props]
    overall_probs = propensity / propensity.sum()

    sources = rng.choice(num_nodes, size=num_undirected, p=overall_probs)
    same_class = rng.random(num_undirected) < homophily
    targets = np.empty(num_undirected, dtype=np.int64)
    for i, src in enumerate(sources):
        if same_class[i] and len(by_class[labels[src]]) > 1:
            cls = labels[src]
            targets[i] = rng.choice(by_class[cls], p=class_probs[cls])
        else:
            targets[i] = rng.integers(0, num_nodes)
    keep = sources != targets
    edge_index = np.stack([sources[keep], targets[keep]])
    edge_index = to_undirected(edge_index, num_nodes)

    features = _bag_of_words_features(
        labels, num_classes, num_features, rng, feature_signal, words_per_node
    )
    return Graph(edge_index=edge_index, features=features, labels=labels, name=name)


def _bag_of_words_features(
    labels: np.ndarray,
    num_classes: int,
    num_features: int,
    rng: np.random.Generator,
    feature_signal: float,
    words_per_node: int,
) -> np.ndarray:
    """Sparse binary features whose support correlates with the class."""
    num_nodes = len(labels)
    vocab_per_class = max(4, num_features // num_classes)
    signatures = [
        rng.choice(num_features, size=vocab_per_class, replace=False)
        for __ in range(num_classes)
    ]
    features = np.zeros((num_nodes, num_features), dtype=np.float64)
    counts = rng.poisson(words_per_node, size=num_nodes) + 1
    for node in range(num_nodes):
        n_words = counts[node]
        n_signal = int(round(feature_signal * n_words))
        signature = signatures[labels[node]]
        signal_words = rng.choice(signature, size=min(n_signal, len(signature)), replace=False)
        noise_words = rng.integers(0, num_features, size=n_words - len(signal_words))
        features[node, signal_words] = 1.0
        features[node, noise_words] = 1.0
    # Row-normalise as is standard for bag-of-words citation features.
    row_sums = features.sum(axis=1, keepdims=True)
    row_sums[row_sums == 0] = 1.0
    return features / row_sums


def community_multilabel_graph(
    num_nodes: int,
    num_communities: int,
    num_features: int,
    rng: np.random.Generator,
    avg_memberships: float = 2.0,
    intra_degree: float = 6.0,
    noise_degree: float = 1.0,
    feature_noise: float = 0.4,
    projection: np.ndarray | None = None,
    name: str = "ppi-graph",
) -> Graph:
    """Generate one overlapping-community graph with multi-label targets.

    Each node belongs to a random subset of communities; edges form
    preferentially between nodes sharing a community, and the label of
    a node is its binary membership vector — exactly the structure a
    GNN exploits on PPI (micro-F1 over 121 ontology labels there,
    ``num_communities`` labels here).

    Features are noisy linear projections of the membership vector
    (plus dense Gaussian noise), mimicking gene-signature features.
    ``projection`` is the community→feature map; pass the same matrix
    for every graph of an inductive dataset so the feature semantics
    are shared across graphs (as they are across PPI tissues) —
    otherwise a model trained on some graphs could not possibly
    generalise to unseen ones.
    """
    memberships = np.zeros((num_nodes, num_communities), dtype=np.float64)
    prob = min(0.9, avg_memberships / num_communities)
    memberships = (rng.random((num_nodes, num_communities)) < prob).astype(np.float64)
    # Ensure nobody is communityless.
    lonely = memberships.sum(axis=1) == 0
    memberships[lonely, rng.integers(0, num_communities, size=lonely.sum())] = 1.0

    community_members = [np.flatnonzero(memberships[:, c]) for c in range(num_communities)]
    edges: list[tuple[int, int]] = []
    num_intra = int(round(num_nodes * intra_degree / 2.0))
    community_sizes = np.array([max(len(m), 1) for m in community_members], dtype=np.float64)
    community_probs = community_sizes / community_sizes.sum()
    communities = rng.choice(num_communities, size=num_intra, p=community_probs)
    for community in communities:
        members = community_members[community]
        if len(members) < 2:
            continue
        u, v = rng.choice(members, size=2, replace=False)
        edges.append((u, v))
    num_noise = int(round(num_nodes * noise_degree / 2.0))
    for __ in range(num_noise):
        u, v = rng.integers(0, num_nodes, size=2)
        if u != v:
            edges.append((u, v))
    edge_index = np.asarray(edges, dtype=np.int64).T
    edge_index = to_undirected(edge_index, num_nodes)

    if projection is None:
        projection = rng.normal(0.0, 1.0, size=(num_communities, num_features))
    if projection.shape != (num_communities, num_features):
        raise ValueError(
            f"projection must be ({num_communities}, {num_features}), "
            f"got {projection.shape}"
        )
    features = memberships @ projection
    features += feature_noise * rng.normal(0.0, 1.0, size=features.shape)
    features /= np.maximum(np.linalg.norm(features, axis=1, keepdims=True), 1e-9)

    return Graph(
        edge_index=edge_index,
        features=features,
        labels=memberships.astype(np.int64),
        name=name,
    )
