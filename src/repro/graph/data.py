"""Graph containers used throughout the reproduction.

:class:`Graph` is the single-graph container for transductive node
classification (Cora/CiteSeer/PubMed analogues) and
:class:`MultiGraphDataset` is the inductive container (PPI analogue,
where training/validation/test use disjoint graphs).

Edges are stored as a ``(2, E)`` integer ``edge_index`` in COO layout
— row 0 holds source nodes, row 1 destinations — matching the PyG
convention the paper's code uses. Undirected graphs store both
directions explicitly.
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = ["Graph", "MultiGraphDataset"]


@dataclasses.dataclass
class Graph:
    """A featured, optionally labelled graph.

    Attributes
    ----------
    edge_index:
        ``(2, E)`` int64 array; both directions present for undirected
        graphs. May include self-loops (see
        :func:`repro.graph.utils.add_self_loops`).
    features:
        ``(N, F)`` float node-feature matrix.
    labels:
        ``(N,)`` int class labels for single-label tasks, or ``(N, C)``
        binary indicator matrix for multi-label tasks, or ``None``.
    train_mask / val_mask / test_mask:
        Boolean ``(N,)`` masks for transductive splits (``None`` for
        graphs used in inductive datasets, where the whole graph
        belongs to one split).
    name:
        Human-readable identifier used in experiment reports.
    """

    edge_index: np.ndarray
    features: np.ndarray
    labels: np.ndarray | None = None
    train_mask: np.ndarray | None = None
    val_mask: np.ndarray | None = None
    test_mask: np.ndarray | None = None
    name: str = "graph"

    def __post_init__(self):
        self.edge_index = np.asarray(self.edge_index, dtype=np.int64)
        if self.edge_index.ndim != 2 or self.edge_index.shape[0] != 2:
            raise ValueError(
                f"edge_index must be (2, E), got {self.edge_index.shape}"
            )
        self.features = np.asarray(self.features, dtype=np.float64)
        if self.features.ndim != 2:
            raise ValueError(f"features must be (N, F), got {self.features.shape}")
        if self.edge_index.size and self.edge_index.max() >= self.num_nodes:
            raise ValueError("edge_index references a node beyond num_nodes")
        if self.labels is not None:
            self.labels = np.asarray(self.labels)

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.features.shape[0]

    @property
    def num_edges(self) -> int:
        return self.edge_index.shape[1]

    @property
    def num_features(self) -> int:
        return self.features.shape[1]

    @property
    def num_classes(self) -> int:
        if self.labels is None:
            raise ValueError(f"graph {self.name!r} has no labels")
        if self.labels.ndim == 2:
            return self.labels.shape[1]
        return int(self.labels.max()) + 1

    @property
    def is_multilabel(self) -> bool:
        return self.labels is not None and self.labels.ndim == 2

    @property
    def src(self) -> np.ndarray:
        return self.edge_index[0]

    @property
    def dst(self) -> np.ndarray:
        return self.edge_index[1]

    def mask(self, split: str) -> np.ndarray:
        """Return the boolean mask for ``'train' | 'val' | 'test'``."""
        value = getattr(self, f"{split}_mask", None)
        if value is None:
            raise ValueError(f"graph {self.name!r} has no {split} mask")
        return value

    def replace(self, **updates) -> "Graph":
        """Functional update returning a new Graph."""
        return dataclasses.replace(self, **updates)

    def __repr__(self) -> str:
        return (
            f"Graph(name={self.name!r}, N={self.num_nodes}, "
            f"E={self.num_edges}, F={self.num_features})"
        )


@dataclasses.dataclass
class MultiGraphDataset:
    """Inductive dataset: disjoint graph lists per split (PPI-style)."""

    train_graphs: list[Graph]
    val_graphs: list[Graph]
    test_graphs: list[Graph]
    name: str = "multigraph"

    def __post_init__(self):
        if not self.train_graphs:
            raise ValueError("inductive dataset needs at least one training graph")
        feature_dims = {
            g.num_features
            for g in self.train_graphs + self.val_graphs + self.test_graphs
        }
        if len(feature_dims) != 1:
            raise ValueError(f"inconsistent feature dims across graphs: {feature_dims}")

    @property
    def num_features(self) -> int:
        return self.train_graphs[0].num_features

    @property
    def num_classes(self) -> int:
        return self.train_graphs[0].num_classes

    @property
    def all_graphs(self) -> list[Graph]:
        return self.train_graphs + self.val_graphs + self.test_graphs

    def totals(self) -> tuple[int, int]:
        """(total nodes, total edges) across every split."""
        nodes = sum(g.num_nodes for g in self.all_graphs)
        edges = sum(g.num_edges for g in self.all_graphs)
        return nodes, edges

    def __repr__(self) -> str:
        nodes, edges = self.totals()
        return (
            f"MultiGraphDataset(name={self.name!r}, graphs="
            f"{len(self.train_graphs)}/{len(self.val_graphs)}/{len(self.test_graphs)}, "
            f"N={nodes}, E={edges})"
        )
