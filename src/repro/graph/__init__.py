"""Graph substrate: containers, preprocessing, synthetic benchmarks."""

from repro.graph.data import Graph, MultiGraphDataset
from repro.graph import utils, generators, datasets, io
from repro.graph.datasets import load_dataset, dataset_statistics
from repro.graph.io import load_graph, load_multigraph, save_graph, save_multigraph

__all__ = [
    "Graph",
    "MultiGraphDataset",
    "utils",
    "generators",
    "datasets",
    "io",
    "load_dataset",
    "dataset_statistics",
    "save_graph",
    "load_graph",
    "save_multigraph",
    "load_multigraph",
]
