"""Graph serialisation: save/load datasets as ``.npz`` archives.

The synthetic benchmarks are cheap to regenerate from seeds, but a
release-quality library also lets users bring their own graphs and
freeze exact experiment inputs. A single :class:`~repro.graph.data.Graph`
maps to one ``.npz`` file; a :class:`~repro.graph.data.MultiGraphDataset`
maps to one file with per-graph prefixes.
"""

from __future__ import annotations

import os

import numpy as np

from repro.graph.data import Graph, MultiGraphDataset

__all__ = ["save_graph", "load_graph", "save_multigraph", "load_multigraph"]

_MASKS = ("train_mask", "val_mask", "test_mask")


def _graph_arrays(graph: Graph, prefix: str = "") -> dict[str, np.ndarray]:
    arrays = {
        f"{prefix}edge_index": graph.edge_index,
        f"{prefix}features": graph.features,
        f"{prefix}name": np.asarray(graph.name),
    }
    if graph.labels is not None:
        arrays[f"{prefix}labels"] = graph.labels
    for mask in _MASKS:
        value = getattr(graph, mask)
        if value is not None:
            arrays[f"{prefix}{mask}"] = value
    return arrays


def _graph_from(arrays, prefix: str = "") -> Graph:
    def get(key):
        full = f"{prefix}{key}"
        return arrays[full] if full in arrays else None

    return Graph(
        edge_index=arrays[f"{prefix}edge_index"],
        features=arrays[f"{prefix}features"],
        labels=get("labels"),
        train_mask=get("train_mask"),
        val_mask=get("val_mask"),
        test_mask=get("test_mask"),
        name=str(arrays[f"{prefix}name"]),
    )


def save_graph(graph: Graph, path: str | os.PathLike) -> None:
    """Write one graph to a ``.npz`` archive."""
    np.savez_compressed(path, **_graph_arrays(graph))


def load_graph(path: str | os.PathLike) -> Graph:
    """Read a graph written by :func:`save_graph`."""
    with np.load(path, allow_pickle=False) as arrays:
        return _graph_from(arrays)


def save_multigraph(dataset: MultiGraphDataset, path: str | os.PathLike) -> None:
    """Write an inductive dataset to one ``.npz`` archive."""
    arrays: dict[str, np.ndarray] = {
        "meta_name": np.asarray(dataset.name),
        "meta_counts": np.asarray(
            [len(dataset.train_graphs), len(dataset.val_graphs), len(dataset.test_graphs)]
        ),
    }
    for split, graphs in (
        ("train", dataset.train_graphs),
        ("val", dataset.val_graphs),
        ("test", dataset.test_graphs),
    ):
        for i, graph in enumerate(graphs):
            arrays.update(_graph_arrays(graph, prefix=f"{split}{i}_"))
    np.savez_compressed(path, **arrays)


def load_multigraph(path: str | os.PathLike) -> MultiGraphDataset:
    """Read a dataset written by :func:`save_multigraph`."""
    with np.load(path, allow_pickle=False) as arrays:
        n_train, n_val, n_test = arrays["meta_counts"]
        return MultiGraphDataset(
            train_graphs=[
                _graph_from(arrays, f"train{i}_") for i in range(n_train)
            ],
            val_graphs=[_graph_from(arrays, f"val{i}_") for i in range(n_val)],
            test_graphs=[_graph_from(arrays, f"test{i}_") for i in range(n_test)],
            name=str(arrays["meta_name"]),
        )
