"""Named benchmark datasets (synthetic analogues of the paper's Table IV).

Each factory is deterministic in its ``seed`` and produces a graph (or
multi-graph dataset) whose class count matches the original benchmark
and whose size is scaled to CPU budgets via the ``scale`` multiplier:

========== ============================== =======================
paper       analogue here                  qualitative knobs
========== ============================== =======================
Cora        :func:`cora_like`              strong homophily, 7 classes
CiteSeer    :func:`citeseer_like`          weaker homophily/signal, 6 classes
PubMed      :func:`pubmed_like`            larger, 3 classes, denser
PPI         :func:`ppi_like`               inductive multigraph, multilabel
========== ============================== =======================

Transductive splits follow the paper: 60% train / 20% val / 20% test,
stratified per class. The inductive split uses disjoint graphs in the
paper's 20/2/2 proportion (scaled down).
"""

from __future__ import annotations

import numpy as np

from repro.graph.data import Graph, MultiGraphDataset
from repro.graph.generators import citation_graph, community_multilabel_graph

__all__ = [
    "cora_like",
    "citeseer_like",
    "pubmed_like",
    "ppi_like",
    "transductive_split",
    "load_dataset",
    "dataset_statistics",
    "TRANSDUCTIVE_DATASETS",
    "ALL_DATASETS",
]

TRANSDUCTIVE_DATASETS = ("cora", "citeseer", "pubmed")
ALL_DATASETS = TRANSDUCTIVE_DATASETS + ("ppi",)


def transductive_split(
    graph: Graph,
    rng: np.random.Generator,
    train_fraction: float = 0.6,
    val_fraction: float = 0.2,
) -> Graph:
    """Attach stratified 60/20/20 masks (paper Section IV-A1)."""
    if graph.labels is None or graph.labels.ndim != 1:
        raise ValueError("transductive split needs single-label node classes")
    num_nodes = graph.num_nodes
    train_mask = np.zeros(num_nodes, dtype=bool)
    val_mask = np.zeros(num_nodes, dtype=bool)
    test_mask = np.zeros(num_nodes, dtype=bool)
    for cls in np.unique(graph.labels):
        members = np.flatnonzero(graph.labels == cls)
        members = rng.permutation(members)
        n_train = max(1, int(round(train_fraction * len(members))))
        n_val = max(1, int(round(val_fraction * len(members))))
        train_mask[members[:n_train]] = True
        val_mask[members[n_train : n_train + n_val]] = True
        test_mask[members[n_train + n_val :]] = True
    return graph.replace(train_mask=train_mask, val_mask=val_mask, test_mask=test_mask)


def cora_like(seed: int = 0, scale: float = 1.0) -> Graph:
    """Cora analogue: 7 classes, strong homophily, sparse features."""
    rng = np.random.default_rng(seed)
    graph = citation_graph(
        num_nodes=max(80, int(600 * scale)),
        num_classes=7,
        num_features=128,
        rng=rng,
        avg_degree=4.0,
        homophily=0.76,
        feature_signal=0.42,
        words_per_node=8,
        name="cora",
    )
    return transductive_split(graph, rng)


def citeseer_like(seed: int = 0, scale: float = 1.0) -> Graph:
    """CiteSeer analogue: sparser, noisier — the hardest of the three."""
    rng = np.random.default_rng(seed + 1_000)
    graph = citation_graph(
        num_nodes=max(80, int(550 * scale)),
        num_classes=6,
        num_features=160,
        rng=rng,
        avg_degree=2.8,
        homophily=0.68,
        feature_signal=0.38,
        words_per_node=6,
        name="citeseer",
    )
    return transductive_split(graph, rng)


def pubmed_like(seed: int = 0, scale: float = 1.0) -> Graph:
    """PubMed analogue: larger, 3 classes, denser features."""
    rng = np.random.default_rng(seed + 2_000)
    graph = citation_graph(
        num_nodes=max(120, int(1200 * scale)),
        num_classes=3,
        num_features=96,
        rng=rng,
        avg_degree=4.5,
        homophily=0.74,
        feature_signal=0.42,
        words_per_node=9,
        name="pubmed",
    )
    return transductive_split(graph, rng)


def ppi_like(seed: int = 0, scale: float = 1.0) -> MultiGraphDataset:
    """PPI analogue: inductive multigraph, multi-label targets.

    The paper uses 24 tissue graphs split 20/2/2; we scale to 8 graphs
    split 5/1/2 by default (train/val/test graphs are fully disjoint,
    so validation/test graphs are unseen at training time).
    """
    rng = np.random.default_rng(seed + 3_000)
    num_graphs = max(4, int(8 * scale))
    n_val = max(1, num_graphs // 8)
    n_test = max(1, num_graphs // 4)
    n_train = num_graphs - n_val - n_test
    num_communities = 12
    num_features = 64
    # One shared community->feature projection: feature semantics must be
    # consistent across graphs for inductive generalisation to be possible.
    projection = rng.normal(0.0, 1.0, size=(num_communities, num_features))
    graphs = []
    for i in range(num_graphs):
        graphs.append(
            community_multilabel_graph(
                num_nodes=max(60, int(140 * scale)),
                num_communities=num_communities,
                num_features=num_features,
                rng=rng,
                avg_memberships=2.5,
                intra_degree=8.0,
                noise_degree=4.0,
                feature_noise=1.8,
                projection=projection,
                name=f"ppi-{i}",
            )
        )
    return MultiGraphDataset(
        train_graphs=graphs[:n_train],
        val_graphs=graphs[n_train : n_train + n_val],
        test_graphs=graphs[n_train + n_val :],
        name="ppi",
    )


_FACTORIES = {
    "cora": cora_like,
    "citeseer": citeseer_like,
    "pubmed": pubmed_like,
    "ppi": ppi_like,
}


def load_dataset(name: str, seed: int = 0, scale: float = 1.0):
    """Load a benchmark dataset by name (``cora|citeseer|pubmed|ppi``)."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; available: {sorted(_FACTORIES)}"
        ) from None
    return factory(seed=seed, scale=scale)


def dataset_statistics(seed: int = 0, scale: float = 1.0) -> list[dict]:
    """Rows of the Table IV analogue (N, E, F, C per dataset)."""
    rows = []
    for name in TRANSDUCTIVE_DATASETS:
        graph = load_dataset(name, seed=seed, scale=scale)
        rows.append(
            {
                "task": "Transductive",
                "dataset": name,
                "N": graph.num_nodes,
                "E": graph.num_edges // 2,  # undirected edge count
                "F": graph.num_features,
                "C": graph.num_classes,
            }
        )
    ppi = load_dataset("ppi", seed=seed, scale=scale)
    nodes, edges = ppi.totals()
    rows.append(
        {
            "task": "Inductive",
            "dataset": "ppi",
            "N": nodes,
            "E": edges // 2,
            "F": ppi.num_features,
            "C": ppi.num_classes,
        }
    )
    return rows
