"""Graph preprocessing utilities.

The paper's notation section defines ``N~(v) = {v} ∪ N(v)`` — every
dataset graph is used *with self-loops added* (their ``G~``). GCN-style
aggregators additionally need the symmetric normalisation
``D^-1/2 (A + I) D^-1/2`` which :func:`gcn_edge_weights` provides as
per-edge coefficients so it composes with the gather/segment autograd
primitives.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "coalesce",
    "to_undirected",
    "add_self_loops",
    "remove_self_loops",
    "degrees",
    "gcn_edge_weights",
    "padded_neighbor_index",
]


def coalesce(edge_index: np.ndarray, num_nodes: int) -> np.ndarray:
    """Sort edges by (dst, src) and drop duplicates."""
    edge_index = np.asarray(edge_index, dtype=np.int64)
    if edge_index.shape[1] == 0:
        return edge_index
    keys = edge_index[1] * num_nodes + edge_index[0]
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    keep = np.ones(len(order), dtype=bool)
    keep[1:] = sorted_keys[1:] != sorted_keys[:-1]
    return edge_index[:, order[keep]]


def to_undirected(edge_index: np.ndarray, num_nodes: int) -> np.ndarray:
    """Mirror every edge and deduplicate."""
    edge_index = np.asarray(edge_index, dtype=np.int64)
    mirrored = np.concatenate([edge_index, edge_index[::-1]], axis=1)
    return coalesce(mirrored, num_nodes)


def remove_self_loops(edge_index: np.ndarray) -> np.ndarray:
    edge_index = np.asarray(edge_index, dtype=np.int64)
    keep = edge_index[0] != edge_index[1]
    return edge_index[:, keep]


def add_self_loops(edge_index: np.ndarray, num_nodes: int) -> np.ndarray:
    """Return edges with exactly one self-loop per node (``G~``)."""
    edge_index = remove_self_loops(edge_index)
    loops = np.arange(num_nodes, dtype=np.int64)
    loops = np.stack([loops, loops])
    return np.concatenate([edge_index, loops], axis=1)


def degrees(edge_index: np.ndarray, num_nodes: int, direction: str = "in") -> np.ndarray:
    """In- or out-degree per node as float64."""
    row = 1 if direction == "in" else 0
    return np.bincount(edge_index[row], minlength=num_nodes).astype(np.float64)


def gcn_edge_weights(edge_index: np.ndarray, num_nodes: int) -> np.ndarray:
    """Per-edge weights of the symmetric GCN normalisation.

    With self-loops included in ``edge_index``, the weight of edge
    ``(u, v)`` is ``1 / sqrt(deg(u) * deg(v))`` where ``deg`` counts
    incoming edges of ``G~`` — exactly Kipf & Welling's propagation
    matrix expressed edgewise.
    """
    deg = degrees(edge_index, num_nodes, direction="in")
    inv_sqrt = np.zeros_like(deg)
    positive = deg > 0
    inv_sqrt[positive] = 1.0 / np.sqrt(deg[positive])
    return inv_sqrt[edge_index[0]] * inv_sqrt[edge_index[1]]


def padded_neighbor_index(
    edge_index: np.ndarray, num_nodes: int, k: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Fixed-size neighbor table for ranking-based aggregators (LGCN).

    Returns ``(index, mask)`` where ``index`` is ``(N, k)`` with the
    first ``min(deg, k)`` in-neighbors of each node (randomly
    subsampled when deg > k) and ``mask`` marks valid entries. Padding
    entries point at the node itself so gathered features are benign.
    """
    edge_index = np.asarray(edge_index, dtype=np.int64)
    index = np.tile(np.arange(num_nodes, dtype=np.int64)[:, None], (1, k))
    mask = np.zeros((num_nodes, k), dtype=bool)
    neighbors: list[list[int]] = [[] for __ in range(num_nodes)]
    for src, dst in edge_index.T:
        neighbors[dst].append(src)
    for node, nbrs in enumerate(neighbors):
        if not nbrs:
            continue
        nbrs = np.asarray(nbrs, dtype=np.int64)
        if len(nbrs) > k:
            nbrs = rng.choice(nbrs, size=k, replace=False)
        index[node, : len(nbrs)] = nbrs
        mask[node, : len(nbrs)] = True
    return index, mask
