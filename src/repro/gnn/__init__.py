"""GNN layer library: node/layer aggregators, models, baselines."""

from repro.gnn.common import GraphCache
from repro.gnn.aggregators import (
    NODE_AGGREGATORS,
    NodeAggregator,
    create_node_aggregator,
)
from repro.gnn.layer_aggregators import (
    LAYER_AGGREGATORS,
    LayerAggregator,
    create_layer_aggregator,
)
from repro.gnn.models import BASELINE_NAMES, GNNModel, build_baseline
from repro.gnn.lgcn import LGCNModel
from repro.gnn.mlp_aggregator import MLPAggregator

__all__ = [
    "GraphCache",
    "NODE_AGGREGATORS",
    "NodeAggregator",
    "create_node_aggregator",
    "LAYER_AGGREGATORS",
    "LayerAggregator",
    "create_layer_aggregator",
    "BASELINE_NAMES",
    "GNNModel",
    "build_baseline",
    "LGCNModel",
    "MLPAggregator",
]
