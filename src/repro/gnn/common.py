"""Shared machinery for GNN layers: per-graph precomputation.

Every aggregator needs the same handful of edge arrays (with/without
self-loops, GCN normalisation coefficients, …). :class:`GraphCache`
computes them once per graph so a search that evaluates thousands of
candidate layers never re-derives them.
"""

from __future__ import annotations

import numpy as np

from repro.graph.data import Graph
from repro.graph.utils import (
    add_self_loops,
    gcn_edge_weights,
    padded_neighbor_index,
    remove_self_loops,
)

__all__ = ["GraphCache"]


class GraphCache:
    """Immutable preprocessed view of one graph.

    Attributes
    ----------
    num_nodes:
        Node count ``N``.
    src, dst:
        Endpoints of ``G~`` (self-loops included) — used by GCN, the
        GAT family, GeniePath, i.e. aggregators over ``N~(v)``.
    nbr_src, nbr_dst:
        Endpoints without self-loops — used by SAGE (which treats the
        root separately) and GIN (which sums strict neighbors).
    gcn_weights:
        Symmetric-normalisation coefficient per ``G~`` edge.
    """

    def __init__(self, graph: Graph):
        self.graph = graph
        self.num_nodes = graph.num_nodes

        loops = add_self_loops(graph.edge_index, graph.num_nodes)
        self.src = loops[0]
        self.dst = loops[1]
        self.gcn_weights = gcn_edge_weights(loops, graph.num_nodes)

        plain = remove_self_loops(graph.edge_index)
        self.nbr_src = plain[0]
        self.nbr_dst = plain[1]

        self._padded: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def padded_neighbors(self, k: int, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
        """Fixed-size neighbor table (used by the LGCN baseline)."""
        if k not in self._padded:
            rng = np.random.default_rng(seed)
            self._padded[k] = padded_neighbor_index(
                np.stack([self.nbr_src, self.nbr_dst]), self.num_nodes, k, rng
            )
        return self._padded[k]
