"""Shared machinery for GNN layers: per-graph precomputation.

Every aggregator needs the same handful of edge arrays (with/without
self-loops, GCN normalisation coefficients, …). :class:`GraphCache`
computes them once per graph so a search that evaluates thousands of
candidate layers never re-derives them. On top of the raw arrays it
precomputes the :class:`~repro.autograd.kernels.SegmentPlan` CSR
layouts the fused segment kernels reduce over, and the per-node
in-degree counts, so no forward pass ever re-sorts an edge list or
re-runs ``np.bincount``.

:class:`LayerContext` is the per-forward companion: one supernet layer
evaluates many candidate aggregators on the same input features, and
the context memoises the gathered source-feature tensors so all
candidates share a single tape node — one gather forward and one
adjoint scatter per layer instead of one per op.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.kernels import SegmentPlan, plan_for
from repro.autograd.scatter import gather, segment_sum
from repro.autograd.tensor import Tensor, as_tensor
from repro.graph.data import Graph
from repro.graph.utils import (
    add_self_loops,
    gcn_edge_weights,
    padded_neighbor_index,
    remove_self_loops,
)

__all__ = ["GraphCache", "LayerContext"]


class GraphCache:
    """Immutable preprocessed view of one graph.

    Attributes
    ----------
    num_nodes:
        Node count ``N``.
    src, dst:
        Endpoints of ``G~`` (self-loops included) — used by GCN, the
        GAT family, GeniePath, i.e. aggregators over ``N~(v)``.
    nbr_src, nbr_dst:
        Endpoints without self-loops — used by SAGE (which treats the
        root separately) and GIN (which sums strict neighbors).
    gcn_weights:
        Symmetric-normalisation coefficient per ``G~`` edge.
    dst_plan, nbr_dst_plan:
        Segment plans of the destination arrays over ``N`` — the
        layouts every ``segment_*`` reduction over the two edge sets
        uses.
    src_plan, nbr_src_plan:
        Segment plans of the source arrays over ``N`` — the layouts of
        the gather-adjoint scatters.
    """

    def __init__(self, graph: Graph):
        self.graph = graph
        self.num_nodes = graph.num_nodes

        loops = add_self_loops(graph.edge_index, graph.num_nodes)
        self.src = np.ascontiguousarray(loops[0], dtype=np.int64)
        self.dst = np.ascontiguousarray(loops[1], dtype=np.int64)
        self.gcn_weights = gcn_edge_weights(loops, graph.num_nodes)

        plain = remove_self_loops(graph.edge_index)
        self.nbr_src = np.ascontiguousarray(plain[0], dtype=np.int64)
        self.nbr_dst = np.ascontiguousarray(plain[1], dtype=np.int64)

        # CSR layouts, built once per graph. Registered through
        # plan_for so plan-less call sites (plain gather on the same
        # arrays) hit the memo instead of re-sorting.
        self.dst_plan = plan_for(self.dst, self.num_nodes)
        self.nbr_dst_plan = plan_for(self.nbr_dst, self.num_nodes)
        self.src_plan = plan_for(self.src, self.num_nodes)
        self.nbr_src_plan = plan_for(self.nbr_src, self.num_nodes)

        self._padded: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._head_layouts: dict[int, tuple[np.ndarray, SegmentPlan]] = {}

    def in_degrees(self, self_loops: bool = True) -> np.ndarray:
        """Cached in-degree per node as float64 (read-only array)."""
        plan = self.dst_plan if self_loops else self.nbr_dst_plan
        return plan.counts_float

    def head_layout(self, heads: int) -> tuple[np.ndarray, SegmentPlan]:
        """Flattened per-(destination, head) segment layout for attention.

        Multi-head attention normalises scores per destination *and*
        head by flattening the two axes into ``head * N + dst``
        segments. The flattened id array and its plan only depend on
        the graph and ``heads``, so they are built once here instead of
        on every op forward; ``heads == 1`` degenerates to the plain
        destination layout.
        """
        if heads == 1:
            return self.dst, self.dst_plan
        cached = self._head_layouts.get(heads)
        if cached is None:
            num_edges = self.dst.shape[0]
            seg = (
                np.repeat(np.arange(heads, dtype=np.int64), num_edges)
                * self.num_nodes
                + np.tile(self.dst, heads)
            )
            cached = (seg, plan_for(seg, heads * self.num_nodes))
            self._head_layouts[heads] = cached
        return cached

    def padded_neighbors(self, k: int, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
        """Fixed-size neighbor table (used by the LGCN baseline)."""
        if k not in self._padded:
            rng = np.random.default_rng(seed)
            self._padded[k] = padded_neighbor_index(
                np.stack([self.nbr_src, self.nbr_dst]), self.num_nodes, k, rng
            )
        return self._padded[k]


class LayerContext:
    """Shared forward state for the candidate ops of one supernet layer.

    All candidates of a layer read the same input features, and several
    of them (the SAGE family, GIN, the MLP aggregator) start from the
    same gathered source rows. Memoising that gather means the
    candidates share one tape node: its adjoint scatter runs once per
    layer during backward, with the op gradients accumulated first —
    instead of one buffered scatter per op.

    A context is only valid for the exact feature tensor it was built
    from; consumers must check ``ctx.x is x`` (aggregators do) before
    reusing its gathers.
    """

    __slots__ = ("x", "cache", "_source_features", "_neighbor_sum")

    def __init__(self, x, cache: GraphCache):
        self.x: Tensor = as_tensor(x)
        self.cache = cache
        self._source_features: dict[bool, Tensor] = {}
        self._neighbor_sum: Tensor | None = None

    def source_features(self, self_loops: bool) -> Tensor:
        """``x[src]`` over ``G~`` (``self_loops=True``) or strict neighbors."""
        key = bool(self_loops)
        cached = self._source_features.get(key)
        if cached is None:
            cache = self.cache
            if key:
                cached = gather(self.x, cache.src, plan=cache.src_plan)
            else:
                cached = gather(self.x, cache.nbr_src, plan=cache.nbr_src_plan)
            self._source_features[key] = cached
        return cached

    def neighbor_sum(self) -> Tensor:
        """Strict-neighbor feature sum, shared across candidates.

        SAGE-SUM, SAGE-MEAN (after dividing by in-degree) and GIN all
        reduce the same gathered neighbor rows with the same segment
        sum; memoising it leaves one scatter forward and one gathered
        adjoint per layer for all three.
        """
        if self._neighbor_sum is None:
            cache = self.cache
            self._neighbor_sum = segment_sum(
                self.source_features(False),
                cache.nbr_dst,
                cache.num_nodes,
                cache.nbr_dst_plan,
            )
        return self._neighbor_sum
