"""GNN models: the generic stacked architecture and the human baselines.

:class:`GNNModel` realises *any* architecture in the SANE search space
as a discrete model — a sequence of node aggregators, per-layer skip
connections and an optional layer aggregator (the JK backbone of the
paper's Fig. 1). The human-designed baselines of Table VI are thin
presets over it (uniform aggregator, with/without JK), except LGCN
which lives in :mod:`repro.gnn.lgcn`.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor, as_tensor
from repro.gnn.aggregators import create_node_aggregator
from repro.gnn.common import GraphCache
from repro.gnn.layer_aggregators import create_layer_aggregator
from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module

__all__ = ["GNNModel", "build_baseline", "BASELINE_NAMES", "SAGE_VARIANTS"]

SAGE_VARIANTS = ("sage-sum", "sage-mean", "sage-max")


class GNNModel(Module):
    """K-layer GNN with per-layer aggregator choice and optional JK head.

    Parameters
    ----------
    node_aggregators:
        One Table I aggregator name per layer (length K).
    skip_connections:
        For JK models, whether layer ``l`` feeds the layer aggregator
        (the paper's IDENTITY/ZERO choice). ``None`` means all
        IDENTITY. Ignored when ``layer_aggregator`` is ``None``.
    layer_aggregator:
        ``'concat' | 'max' | 'lstm'`` or ``None`` (plain stacking, the
        final layer output feeds the classifier directly).
    """

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int | list[int],
        num_classes: int,
        node_aggregators: list[str],
        rng: np.random.Generator,
        skip_connections: list[bool] | None = None,
        layer_aggregator: str | None = None,
        dropout: float = 0.5,
        activation: str | list[str] = "relu",
        heads: int | list[int] = 1,
    ):
        super().__init__()
        if not node_aggregators:
            raise ValueError("need at least one GNN layer")
        num_layers = len(node_aggregators)
        if skip_connections is None:
            skip_connections = [True] * num_layers
        if len(skip_connections) != num_layers:
            raise ValueError("skip_connections length must equal number of layers")

        hidden_dims = _per_layer(hidden_dim, num_layers, "hidden_dim")
        activations = _per_layer(activation, num_layers, "activation")
        heads_list = _per_layer(heads, num_layers, "heads")
        if layer_aggregator is not None and len(set(hidden_dims)) != 1:
            raise ValueError(
                "a layer aggregator requires equal per-layer hidden dims"
            )

        self.node_aggregator_names = list(node_aggregators)
        self.skip_connections = list(skip_connections)
        self.layer_aggregator_name = layer_aggregator
        self.hidden_dim = hidden_dims[-1]
        self.activations = [F.ACTIVATIONS[name] for name in activations]

        dims_in = [in_dim] + hidden_dims[:-1]
        self.layers = [
            create_node_aggregator(name, d_in, d_out, rng, heads=n_heads)
            for name, d_in, d_out, n_heads in zip(
                node_aggregators, dims_in, hidden_dims, heads_list
            )
        ]
        self.dropout = Dropout(dropout, rng)

        if layer_aggregator is not None:
            self.layer_aggregator = create_layer_aggregator(
                layer_aggregator, num_layers, hidden_dims[-1], rng
            )
            head_dim = self.layer_aggregator.output_dim
        else:
            self.layer_aggregator = None
            head_dim = hidden_dims[-1]
        self.classifier = Linear(head_dim, num_classes, rng)

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def embed(self, features, cache: GraphCache) -> Tensor:
        """Final node representation ``z_v`` before the classifier."""
        h = self.dropout(as_tensor(features))
        layer_outputs: list[Tensor] = []
        for layer, activation in zip(self.layers, self.activations):
            h = activation(layer(h, cache))
            h = self.dropout(h)
            layer_outputs.append(h)
        if self.layer_aggregator is None:
            return layer_outputs[-1]
        inputs = [
            out if keep else out * 0.0
            for out, keep in zip(layer_outputs, self.skip_connections)
        ]
        return self.layer_aggregator(inputs)

    def forward(self, features, cache: GraphCache) -> Tensor:
        return self.classifier(self.embed(features, cache))

    def describe(self) -> str:
        skips = "".join("I" if s else "Z" for s in self.skip_connections)
        jk = self.layer_aggregator_name or "none"
        aggs = ", ".join(self.node_aggregator_names)
        return f"[{aggs}] skips={skips} jk={jk}"


def _per_layer(value, num_layers: int, name: str) -> list:
    """Broadcast a scalar setting to all layers or validate a list."""
    if isinstance(value, (list, tuple)):
        if len(value) != num_layers:
            raise ValueError(
                f"{name} list must have {num_layers} entries, got {len(value)}"
            )
        return list(value)
    return [value] * num_layers


# ---------------------------------------------------------------------------
# Human-designed baselines (paper Table VI / Table XIII)
# ---------------------------------------------------------------------------

_BASE_AGGREGATOR = {
    "gcn": "gcn",
    "sage": "sage-mean",
    "sage-sum": "sage-sum",
    "sage-mean": "sage-mean",
    "sage-max": "sage-max",
    "gat": "gat",
    "gat-sym": "gat-sym",
    "gat-cos": "gat-cos",
    "gat-linear": "gat-linear",
    "gat-gen-linear": "gat-gen-linear",
    "gin": "gin",
    "geniepath": "geniepath",
}

BASELINE_NAMES = (
    "gcn",
    "gcn-jk",
    "sage",
    "sage-jk",
    "gat",
    "gat-jk",
    "gin",
    "gin-jk",
    "geniepath",
    "geniepath-jk",
)


def build_baseline(
    name: str,
    in_dim: int,
    num_classes: int,
    rng: np.random.Generator,
    hidden_dim: int = 64,
    num_layers: int = 3,
    dropout: float = 0.5,
    activation: str = "relu",
    heads: int = 1,
    jk_mode: str = "concat",
) -> GNNModel:
    """Build a human-designed baseline by name.

    ``<base>`` or ``<base>-jk`` where ``<base>`` is one of GCN / SAGE
    (any variant) / GAT (any variant) / GIN / GeniePath. The ``-jk``
    form adds a JK layer aggregator (Table XIII uses CONCAT on the
    citation graphs and LSTM on PPI; choose via ``jk_mode``).
    """
    if name.endswith("-jk"):
        base = name[: -len("-jk")]
        layer_aggregator = jk_mode
    else:
        base = name
        layer_aggregator = None
    try:
        aggregator = _BASE_AGGREGATOR[base]
    except KeyError:
        raise ValueError(f"unknown baseline {name!r}") from None
    return GNNModel(
        in_dim=in_dim,
        hidden_dim=hidden_dim,
        num_classes=num_classes,
        node_aggregators=[aggregator] * num_layers,
        rng=rng,
        layer_aggregator=layer_aggregator,
        dropout=dropout,
        activation=activation,
        heads=heads,
    )
