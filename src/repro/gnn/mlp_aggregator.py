"""MLP node aggregator for the Table X universal-approximator study.

Section IV-E4 of the paper replaces the curated node aggregators with
a plain MLP applied to the summed neighborhood (a universal function
approximator in the GIN sense) and searches its width
``w ∈ {8, 16, 32, 64}`` and depth ``d ∈ {1, 2, 3}`` with Random/TPE —
showing that, without the inductive bias of hand-designed aggregators,
search fails to reach SANE-level accuracy.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.autograd.scatter import gather, segment_sum
from repro.autograd.tensor import Tensor, as_tensor
from repro.autograd import functional as F
from repro.gnn.aggregators import NodeAggregator
from repro.gnn.common import GraphCache, LayerContext
from repro.nn.layers import MLP, Dropout, Linear
from repro.nn.module import Module

__all__ = ["MLPAggregator", "MLPGNNModel", "MLP_WIDTHS", "MLP_DEPTHS", "mlp_space"]

MLP_WIDTHS = (8, 16, 32, 64)
MLP_DEPTHS = (1, 2, 3)


class MLPAggregator(NodeAggregator):
    """``MLP(sum over N~(v) of x_u)`` with searchable width/depth."""

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        rng: np.random.Generator,
        width: int = 32,
        depth: int = 2,
    ):
        super().__init__(in_dim, out_dim)
        if depth < 1:
            raise ValueError("MLP aggregator depth must be >= 1")
        self.width = width
        self.depth = depth
        dims = [in_dim] + [width] * (depth - 1) + [out_dim]
        self.mlp = MLP(dims, rng, activation="relu")

    def forward(
        self, x: Tensor, cache: GraphCache, ctx: LayerContext | None = None
    ) -> Tensor:
        x = as_tensor(x)
        messages = self._source_features(x, cache, ctx, self_loops=True)
        summed = segment_sum(messages, cache.dst, cache.num_nodes, cache.dst_plan)
        return self.mlp(summed)


def mlp_space(num_layers: int) -> list[tuple[tuple[int, int], ...]]:
    """Enumerate per-layer (width, depth) assignments of the MLP space."""
    per_layer = list(itertools.product(MLP_WIDTHS, MLP_DEPTHS))
    return list(itertools.product(per_layer, repeat=num_layers))


class MLPGNNModel(Module):
    """Stacked MLP-aggregator GNN (the Table X candidate model).

    Structure mirrors :class:`repro.gnn.models.GNNModel` without a
    layer aggregator; each layer's (width, depth) comes from the
    searched assignment.
    """

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        num_classes: int,
        layer_specs: list[tuple[int, int]],
        rng: np.random.Generator,
        dropout: float = 0.5,
    ):
        super().__init__()
        if not layer_specs:
            raise ValueError("need at least one layer spec")
        self.layers = []
        d_in = in_dim
        for width, depth in layer_specs:
            self.layers.append(MLPAggregator(d_in, hidden_dim, rng, width, depth))
            d_in = hidden_dim
        self.dropout = Dropout(dropout, rng)
        self.activation = F.ACTIVATIONS["relu"]
        self.classifier = Linear(hidden_dim, num_classes, rng)
        self.layer_specs = list(layer_specs)

    def forward(self, features, cache: GraphCache) -> Tensor:
        h = self.dropout(as_tensor(features))
        for layer in self.layers:
            h = self.activation(layer(h, cache))
            h = self.dropout(h)
        return self.classifier(h)
