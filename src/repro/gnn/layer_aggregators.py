"""The 3 layer aggregators of the SANE search space (Table I, ``O_l``).

A layer aggregator combines the K per-layer node embeddings
``h_v^1 … h_v^K`` into the final representation ``z_v`` (the paper's
Eq. 5, inherited from JK-Network). All layers must share the hidden
dimension ``d``; CONCAT outputs ``K * d`` while MAX and LSTM keep ``d``
(:attr:`LayerAggregator.output_dim` reports which).
"""

from __future__ import annotations

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.nn.lstm import BiLSTMAttention
from repro.nn.module import Module

__all__ = [
    "LayerAggregator",
    "ConcatLayerAggregator",
    "MaxLayerAggregator",
    "LSTMLayerAggregator",
    "LAYER_AGGREGATORS",
    "create_layer_aggregator",
]


class LayerAggregator(Module):
    """Base class: combine K tensors of shape ``(N, d)`` into one."""

    def __init__(self, num_layers: int, hidden_dim: int):
        super().__init__()
        self.num_layers = num_layers
        self.hidden_dim = hidden_dim

    @property
    def output_dim(self) -> int:
        return self.hidden_dim

    def forward(self, layer_outputs: list[Tensor]) -> Tensor:
        raise NotImplementedError

    def _check(self, layer_outputs: list[Tensor]) -> None:
        if len(layer_outputs) != self.num_layers:
            raise ValueError(
                f"expected {self.num_layers} layer outputs, got {len(layer_outputs)}"
            )


class ConcatLayerAggregator(LayerAggregator):
    """``z_v = [h_v^1 || … || h_v^K]`` — the JK-Net default."""

    @property
    def output_dim(self) -> int:
        return self.num_layers * self.hidden_dim

    def forward(self, layer_outputs: list[Tensor]) -> Tensor:
        self._check(layer_outputs)
        return ops.concatenate(layer_outputs, axis=1)


class MaxLayerAggregator(LayerAggregator):
    """Elementwise max over layers: adaptive receptive-field selection."""

    def forward(self, layer_outputs: list[Tensor]) -> Tensor:
        self._check(layer_outputs)
        stacked = ops.stack(layer_outputs, axis=1)  # (N, K, d)
        return ops.max(stacked, axis=1)


class LSTMLayerAggregator(LayerAggregator):
    """Bi-directional LSTM + attention over the layer sequence."""

    def __init__(self, num_layers: int, hidden_dim: int, rng: np.random.Generator):
        super().__init__(num_layers, hidden_dim)
        lstm_hidden = max(8, hidden_dim // 2)
        self.encoder = BiLSTMAttention(hidden_dim, lstm_hidden, rng)

    def forward(self, layer_outputs: list[Tensor]) -> Tensor:
        self._check(layer_outputs)
        stacked = ops.stack(layer_outputs, axis=1)  # (N, K, d)
        return self.encoder(stacked)


LAYER_AGGREGATORS = {
    "concat": lambda num_layers, hidden_dim, rng: ConcatLayerAggregator(
        num_layers, hidden_dim
    ),
    "max": lambda num_layers, hidden_dim, rng: MaxLayerAggregator(
        num_layers, hidden_dim
    ),
    "lstm": LSTMLayerAggregator,
}


def create_layer_aggregator(
    name: str, num_layers: int, hidden_dim: int, rng: np.random.Generator
) -> LayerAggregator:
    """Instantiate a layer aggregator from the Table I registry."""
    try:
        factory = LAYER_AGGREGATORS[name]
    except KeyError:
        raise ValueError(
            f"unknown layer aggregator {name!r}; available: {sorted(LAYER_AGGREGATORS)}"
        ) from None
    return factory(num_layers, hidden_dim, rng)
