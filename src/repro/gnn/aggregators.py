"""The 11 node aggregators of the SANE search space (paper Tables I & XI).

Each aggregator is a :class:`~repro.nn.module.Module` mapping node
features ``(N, in_dim)`` to pre-activation outputs ``(N, out_dim)``
given a :class:`~repro.gnn.common.GraphCache`. Following the official
SANE implementation, each candidate op owns its transform weights; the
supernet (:mod:`repro.core.supernet`) mixes op *outputs* per Eq. 2.

========== ====================================================
name        semantics (Table XI)
========== ====================================================
sage-sum    W_s x_v + W_n * sum_{u in N(v)} x_u
sage-mean   mean variant of the above
sage-max    max variant
gcn         D^-1/2 (A+I) D^-1/2 X W
gat         attention, e = LeakyReLU(a [W x_u || W x_v])
gat-sym     e_sym(u,v) = e_gat(u,v) + e_gat(v,u)
gat-cos     e = <W x_u, W' x_v>
gat-linear  e = tanh(a_l W x_u + a_r W x_v)
gat-gen-linear  e = w_g tanh(W_l x_u + W_r x_v)
gin         MLP((1 + eps) x_v + sum_{u in N(v)} x_u)
geniepath   GAT-style breadth (tanh) followed by LSTM depth gating
========== ====================================================
"""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd import ops
from repro.autograd.scatter import (
    gather,
    segment_attention_sum,
    segment_max,
    segment_softmax,
    segment_sum,
)
from repro.autograd.tensor import Tensor, as_tensor
from repro.gnn.common import GraphCache, LayerContext
from repro.nn import init
from repro.nn.layers import Linear, MLP
from repro.nn.lstm import LSTMCell
from repro.nn.module import Module, Parameter

__all__ = [
    "NodeAggregator",
    "SageAggregator",
    "GCNAggregator",
    "GATAggregator",
    "GINAggregator",
    "GeniePathAggregator",
    "NODE_AGGREGATORS",
    "create_node_aggregator",
]


class NodeAggregator(Module):
    """Base class; concrete aggregators implement :meth:`forward`.

    ``ctx`` is an optional :class:`~repro.gnn.common.LayerContext`: the
    supernet evaluates all candidate ops of a layer on the same input
    and passes one context so ops that gather the raw source features
    share a single tape node (one adjoint scatter per layer).
    """

    def __init__(self, in_dim: int, out_dim: int):
        super().__init__()
        self.in_dim = in_dim
        self.out_dim = out_dim

    def forward(
        self, x: Tensor, cache: GraphCache, ctx: LayerContext | None = None
    ) -> Tensor:
        raise NotImplementedError

    @staticmethod
    def _source_features(
        x: Tensor, cache: GraphCache, ctx: LayerContext | None, self_loops: bool
    ) -> Tensor:
        """Gathered source rows of ``x``, shared through ``ctx`` when valid."""
        if ctx is not None and ctx.x is x:
            return ctx.source_features(self_loops)
        if self_loops:
            return gather(x, cache.src, plan=cache.src_plan)
        return gather(x, cache.nbr_src, plan=cache.nbr_src_plan)


class SageAggregator(NodeAggregator):
    """GraphSAGE: separate root transform plus a neighbor reduction."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator, reduce: str):
        super().__init__(in_dim, out_dim)
        if reduce not in ("sum", "mean", "max"):
            raise ValueError(f"unknown SAGE reduction {reduce!r}")
        self.reduce = reduce
        self.lin_self = Linear(in_dim, out_dim, rng)
        self.lin_neighbor = Linear(in_dim, out_dim, rng, bias=False)

    def forward(
        self, x: Tensor, cache: GraphCache, ctx: LayerContext | None = None
    ) -> Tensor:
        x = as_tensor(x)
        plan = cache.nbr_dst_plan
        shared = ctx is not None and ctx.x is x
        if self.reduce == "max":
            messages = self._source_features(x, cache, ctx, self_loops=False)
            agg = segment_max(messages, cache.nbr_dst, cache.num_nodes, plan)
        else:
            # SUM and MEAN share one scatter through the layer context
            # (mean is the shared sum scaled by in-degree).
            if shared:
                agg = ctx.neighbor_sum()
            else:
                messages = self._source_features(
                    x, cache, ctx, self_loops=False
                )
                agg = segment_sum(
                    messages, cache.nbr_dst, cache.num_nodes, plan
                )
            if self.reduce == "mean":
                agg = agg / plan.counts_clamped[:, None]
        return self.lin_self(x) + self.lin_neighbor(agg)


class GCNAggregator(NodeAggregator):
    """Kipf & Welling symmetric-normalised propagation."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator):
        super().__init__(in_dim, out_dim)
        self.lin = Linear(in_dim, out_dim, rng)

    def forward(
        self, x: Tensor, cache: GraphCache, ctx: LayerContext | None = None
    ) -> Tensor:
        h = self.lin(x)
        return segment_attention_sum(
            h,
            cache.gcn_weights,
            cache.src,
            cache.dst,
            cache.num_nodes,
            cache.src_plan,
            cache.dst_plan,
        )


class GATAggregator(NodeAggregator):
    """Multi-head attention aggregator with five scoring variants.

    ``variant`` selects the edge-score function of Table XI; attention
    is normalised over each destination's incoming ``G~`` edges and the
    heads' outputs are concatenated (``out_dim`` must be divisible by
    ``heads``).
    """

    VARIANTS = ("gat", "sym", "cos", "linear", "gen-linear")

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        rng: np.random.Generator,
        variant: str = "gat",
        heads: int = 1,
        negative_slope: float = 0.2,
    ):
        super().__init__(in_dim, out_dim)
        if variant not in self.VARIANTS:
            raise ValueError(f"unknown GAT variant {variant!r}")
        if out_dim % heads != 0:
            raise ValueError(f"out_dim {out_dim} not divisible by heads {heads}")
        self.variant = variant
        self.heads = heads
        self.head_dim = out_dim // heads
        self.negative_slope = negative_slope
        self.lin = Linear(in_dim, out_dim, rng, bias=False)
        d = self.head_dim
        if variant == "cos":
            # Second projection so <W x_u, W' x_v> is not trivially symmetric.
            self.lin_dst = Linear(in_dim, out_dim, rng, bias=False)
        if variant in ("gat", "sym", "linear"):
            self.att_src = Parameter(init.xavier_uniform((self.heads, d), rng))
            self.att_dst = Parameter(init.xavier_uniform((self.heads, d), rng))
        if variant == "gen-linear":
            self.lin_src = Linear(in_dim, out_dim, rng, bias=False)
            self.lin_dst_score = Linear(in_dim, out_dim, rng, bias=False)
            self.w_g = Parameter(init.xavier_uniform((self.heads, d), rng))
        self.bias = Parameter(init.zeros((out_dim,)))

    def _edge_scores(self, x: Tensor, h_heads: Tensor, cache: GraphCache) -> Tensor:
        """Per-edge, per-head unnormalised attention scores ``(E, heads)``."""
        src, dst = cache.src, cache.dst
        src_plan, dst_plan = cache.src_plan, cache.dst_plan
        if self.variant in ("gat", "sym"):
            score_src = ops.sum(h_heads * self.att_src, axis=-1)  # (N, heads)
            score_dst = ops.sum(h_heads * self.att_dst, axis=-1)
            forward = F.leaky_relu(
                gather(score_src, src, src_plan) + gather(score_dst, dst, dst_plan),
                self.negative_slope,
            )
            if self.variant == "gat":
                return forward
            backward = F.leaky_relu(
                gather(score_src, dst, dst_plan) + gather(score_dst, src, src_plan),
                self.negative_slope,
            )
            return forward + backward
        if self.variant == "cos":
            h_dst = self.lin_dst(x).reshape(-1, self.heads, self.head_dim)
            return ops.sum(
                gather(h_heads, src, src_plan) * gather(h_dst, dst, dst_plan),
                axis=-1,
            )
        if self.variant == "linear":
            score_src = ops.sum(h_heads * self.att_src, axis=-1)
            score_dst = ops.sum(h_heads * self.att_dst, axis=-1)
            return ops.tanh(
                gather(score_src, src, src_plan) + gather(score_dst, dst, dst_plan)
            )
        # gen-linear
        h_src = self.lin_src(x).reshape(-1, self.heads, self.head_dim)
        h_dst = self.lin_dst_score(x).reshape(-1, self.heads, self.head_dim)
        hidden = ops.tanh(
            gather(h_src, src, src_plan) + gather(h_dst, dst, dst_plan)
        )
        return ops.sum(hidden * self.w_g, axis=-1)

    def forward(
        self, x: Tensor, cache: GraphCache, ctx: LayerContext | None = None
    ) -> Tensor:
        x = as_tensor(x)
        h = self.lin(x)
        h_heads = h.reshape(-1, self.heads, self.head_dim)
        scores = self._edge_scores(x, h_heads, cache)  # (E, heads)

        # Normalise per (destination, head) by flattening the two axes;
        # the flattened segment layout is cached on the graph.
        num_edges = len(cache.src)
        flat_scores = scores.transpose().reshape(num_edges * self.heads)
        seg, seg_plan = cache.head_layout(self.heads)
        attention = segment_softmax(
            flat_scores, seg, self.heads * cache.num_nodes, seg_plan
        )
        attention = attention.reshape(self.heads, num_edges).transpose()  # (E, heads)

        out = segment_attention_sum(
            h_heads,
            attention,
            cache.src,
            cache.dst,
            cache.num_nodes,
            cache.src_plan,
            cache.dst_plan,
        )
        return out.reshape(-1, self.heads * self.head_dim) + self.bias


class GINAggregator(NodeAggregator):
    """Graph Isomorphism Network: injective sum + MLP, trainable eps."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator):
        super().__init__(in_dim, out_dim)
        self.mlp = MLP([in_dim, out_dim, out_dim], rng, activation="relu")
        self.eps = Parameter(np.zeros(1))

    def forward(
        self, x: Tensor, cache: GraphCache, ctx: LayerContext | None = None
    ) -> Tensor:
        x = as_tensor(x)
        if ctx is not None and ctx.x is x:
            neighbor_sum = ctx.neighbor_sum()
        else:
            messages = self._source_features(x, cache, ctx, self_loops=False)
            neighbor_sum = segment_sum(
                messages, cache.nbr_dst, cache.num_nodes, cache.nbr_dst_plan
            )
        combined = (1.0 + self.eps) * x + neighbor_sum
        return self.mlp(combined)


class GeniePathAggregator(NodeAggregator):
    """GeniePath layer: attentive breadth + LSTM-gated depth.

    Breadth: GAT-style attention with a ``tanh`` score (adaptive
    receptive breadth). Depth: the attended message drives an LSTM-cell
    update whose hidden state is the layer output (adaptive depth
    filtering). Following the per-layer op granularity of the SANE
    search space, each instance owns its cell and starts from a zero
    memory state.
    """

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator):
        super().__init__(in_dim, out_dim)
        self.lin = Linear(in_dim, out_dim, rng, bias=False)
        self.att_src = Parameter(init.xavier_uniform((out_dim,), rng))
        self.att_dst = Parameter(init.xavier_uniform((out_dim,), rng))
        self.cell = LSTMCell(out_dim, out_dim, rng)
        # The depth LSTM starts from a zero state, so the input and
        # output gates sit at sigmoid(0) = 0.5 and the layer attenuates
        # its message by ~4x at init — stacked layers then barely train.
        # Biasing both gates open restores unit-scale signal flow.
        self.cell.bias.data[:out_dim] = 1.0  # lint: disable=tape-mutation -- bias init before any forward pass records a tape
        self.cell.bias.data[3 * out_dim :] = 1.0  # lint: disable=tape-mutation -- bias init before any forward pass records a tape

    def forward(
        self, x: Tensor, cache: GraphCache, ctx: LayerContext | None = None
    ) -> Tensor:
        h = self.lin(x)
        score_src = ops.sum(h * self.att_src.reshape(1, -1), axis=1)
        score_dst = ops.sum(h * self.att_dst.reshape(1, -1), axis=1)
        scores = ops.tanh(
            gather(score_src, cache.src, cache.src_plan)
            + gather(score_dst, cache.dst, cache.dst_plan)
        )
        attention = segment_softmax(
            scores, cache.dst, cache.num_nodes, cache.dst_plan
        )
        breadth = segment_attention_sum(
            h,
            attention,
            cache.src,
            cache.dst,
            cache.num_nodes,
            cache.src_plan,
            cache.dst_plan,
        )
        breadth = ops.tanh(breadth)
        state = self.cell.init_state(cache.num_nodes)
        hidden, __ = self.cell(breadth, state)
        return hidden


def _sage_factory(reduce: str):
    def factory(in_dim, out_dim, rng, heads=1):
        return SageAggregator(in_dim, out_dim, rng, reduce=reduce)

    return factory


def _gat_factory(variant: str):
    def factory(in_dim, out_dim, rng, heads=1):
        if out_dim % heads != 0:
            heads = 1
        return GATAggregator(in_dim, out_dim, rng, variant=variant, heads=heads)

    return factory


NODE_AGGREGATORS = {
    "sage-sum": _sage_factory("sum"),
    "sage-mean": _sage_factory("mean"),
    "sage-max": _sage_factory("max"),
    "gcn": lambda in_dim, out_dim, rng, heads=1: GCNAggregator(in_dim, out_dim, rng),
    "gat": _gat_factory("gat"),
    "gat-sym": _gat_factory("sym"),
    "gat-cos": _gat_factory("cos"),
    "gat-linear": _gat_factory("linear"),
    "gat-gen-linear": _gat_factory("gen-linear"),
    "gin": lambda in_dim, out_dim, rng, heads=1: GINAggregator(in_dim, out_dim, rng),
    "geniepath": lambda in_dim, out_dim, rng, heads=1: GeniePathAggregator(
        in_dim, out_dim, rng
    ),
}


def create_node_aggregator(
    name: str, in_dim: int, out_dim: int, rng: np.random.Generator, heads: int = 1
) -> NodeAggregator:
    """Instantiate a node aggregator from the Table I registry."""
    try:
        factory = NODE_AGGREGATORS[name]
    except KeyError:
        raise ValueError(
            f"unknown node aggregator {name!r}; available: {sorted(NODE_AGGREGATORS)}"
        ) from None
    return factory(in_dim, out_dim, rng, heads=heads)
