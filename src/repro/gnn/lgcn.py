"""LGCN baseline (Gao et al., KDD 2018) — learnable graph convolution.

LGCN transforms irregular neighborhoods into grid-like data: for every
node it gathers neighbor features, *ranks* each feature channel
independently, keeps the top-k values, and applies a 1-D convolution
over the resulting ``(k+1)``-long sequence (the node itself first).
Table XI of the SANE paper summarises this as "1-D CNN aggregator,
equivalent to a weighted summation aggregator".

Our implementation vectorises the ranking with a fixed-size padded
neighbor table; padding positions are filled with ``-inf`` before the
per-channel top-k so they never win.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd import ops
from repro.autograd.scatter import gather
from repro.autograd.tensor import Tensor, as_tensor
from repro.gnn.common import GraphCache
from repro.nn import init
from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module, Parameter

__all__ = ["LGCNLayer", "LGCNModel"]


class LGCNLayer(Module):
    """One LGCN layer: channel-wise top-k ranking + 1-D convolution.

    The 1-D convolution over the length-``(k+1)`` sequence with a full
    receptive field degenerates to a learned weighted sum per position,
    which is exactly the "weighted summation" reading of Table XI; we
    keep per-position weight matrices, giving the layer strictly more
    capacity than a single mean.
    """

    def __init__(self, in_dim: int, out_dim: int, k: int, rng: np.random.Generator):
        super().__init__()
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.k = k
        # One weight matrix per sequence position (self + k ranked slots).
        self.position_weights = [
            Parameter(init.xavier_uniform((in_dim, out_dim), rng)) for __ in range(k + 1)
        ]
        self.bias = Parameter(init.zeros((out_dim,)))

    def forward(self, x: Tensor, cache: GraphCache) -> Tensor:
        x = as_tensor(x)
        index, mask = cache.padded_neighbors(self.k)
        gathered = gather(x, index)  # (N, k, F)
        # Mask out padding with -inf so it never enters the top-k.
        neg_inf = np.where(mask[:, :, None], 0.0, -np.inf)
        masked = gathered + Tensor(neg_inf)
        ranked = _channelwise_topk(masked, self.k)  # (N, k, F) sorted desc
        # Replace -inf slots (degree < k) with zeros.
        ranked = ops.where(np.isfinite(ranked.data), ranked, Tensor(np.zeros(ranked.shape)))

        sequence = [x] + [
            ops.getitem(ranked, (slice(None), position)) for position in range(self.k)
        ]
        out = None
        for position, item in enumerate(sequence):
            term = item @ self.position_weights[position]
            out = term if out is None else out + term
        return out + self.bias


def _channelwise_topk(values: Tensor, k: int) -> Tensor:
    """Sort each channel of ``(N, k, F)`` descending along axis 1.

    Sorting indices are computed on detached data (they are piecewise
    constant in the inputs), then applied with differentiable gather.
    """
    order = np.argsort(-values.data, axis=1, kind="stable")
    n_idx = np.arange(values.shape[0])[:, None, None]
    f_idx = np.arange(values.shape[2])[None, None, :]
    return ops.getitem(values, (n_idx, order, f_idx))


class LGCNModel(Module):
    """Stacked LGCN with an input transform and a classifier head."""

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        num_classes: int,
        rng: np.random.Generator,
        num_layers: int = 3,
        k: int = 4,
        dropout: float = 0.5,
        activation: str = "relu",
    ):
        super().__init__()
        self.embed_in = Linear(in_dim, hidden_dim, rng)
        self.layers = [
            LGCNLayer(hidden_dim, hidden_dim, k, rng) for __ in range(num_layers)
        ]
        self.dropout = Dropout(dropout, rng)
        self.activation = F.ACTIVATIONS[activation]
        self.classifier = Linear(hidden_dim, num_classes, rng)
        self.node_aggregator_names = ["lgcn"] * num_layers

    def forward(self, features, cache: GraphCache) -> Tensor:
        h = self.activation(self.embed_in(self.dropout(as_tensor(features))))
        for layer in self.layers:
            h = self.activation(layer(h, cache))
            h = self.dropout(h)
        return self.classifier(h)

    def describe(self) -> str:
        return f"[lgcn x {len(self.layers)}]"
