"""DB task substrate: cross-lingual entity alignment (Section IV-D)."""

from repro.kg.data import AlignmentDataset, KnowledgeGraph, generate_alignment_dataset
from repro.kg.align import (
    AlignConfig,
    AlignResult,
    EmbeddingAligner,
    GNNAligner,
    margin_ranking_loss,
    train_aligner,
)
from repro.kg.metrics import evaluate_alignment, hits_at_k, pairwise_l1
from repro.kg.search import (
    AlignSearchConfig,
    AlignSearchResult,
    AlignSupernet,
    search_alignment,
)

__all__ = [
    "AlignmentDataset",
    "KnowledgeGraph",
    "generate_alignment_dataset",
    "AlignConfig",
    "AlignResult",
    "EmbeddingAligner",
    "GNNAligner",
    "margin_ranking_loss",
    "train_aligner",
    "evaluate_alignment",
    "hits_at_k",
    "pairwise_l1",
    "AlignSearchConfig",
    "AlignSearchResult",
    "AlignSupernet",
    "search_alignment",
]
