"""Entity-alignment evaluation: Hits@k in both directions.

Table VIII reports Hits@{1, 10, 50} for ZH→EN and EN→ZH. Following the
GCN-Align protocol, each test source entity ranks the *test* target
entities of the other KG by embedding distance; Hits@k is the fraction
whose gold counterpart lands in the top k.
"""

from __future__ import annotations

import numpy as np

__all__ = ["pairwise_l1", "hits_at_k", "evaluate_alignment"]


def pairwise_l1(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """(n, m) matrix of L1 distances between rows of ``a`` and ``b``."""
    return np.abs(a[:, None, :] - b[None, :, :]).sum(axis=2)


def hits_at_k(distances: np.ndarray, ks: tuple[int, ...]) -> dict[int, float]:
    """Hits@k assuming the gold target of row i is column i."""
    n = distances.shape[0]
    if distances.shape[1] != n:
        raise ValueError("hits_at_k expects a square gold-on-diagonal matrix")
    # Rank of the gold entry within each row (0-based).
    gold = distances[np.arange(n), np.arange(n)]
    ranks = (distances < gold[:, None]).sum(axis=1)
    return {k: float((ranks < k).mean()) for k in ks}


def evaluate_alignment(
    z1: np.ndarray,
    z2: np.ndarray,
    test_links: np.ndarray,
    ks: tuple[int, ...] = (1, 10, 50),
) -> dict[str, dict[int, float]]:
    """Hits@k for both directions on the test alignment links.

    ``z1``/``z2`` are full embedding matrices of the two KGs; rows are
    selected by the link indices so the candidate pool is the test set
    (the standard DBP15K protocol).
    """
    test_links = np.asarray(test_links, dtype=np.int64)
    emb1 = z1[test_links[:, 0]]
    emb2 = z2[test_links[:, 1]]
    distances = pairwise_l1(emb1, emb2)
    return {
        "zh->en": hits_at_k(distances, ks),
        "en->zh": hits_at_k(distances.T, ks),
    }
