"""Synthetic cross-lingual knowledge-base pair (DBP15K stand-in).

The paper's DB task aligns entities between the Chinese and English
DBpedia views (DBP15K_ZH-EN, Table V). Offline, we generate an
analogous bilingual pair from one latent KB:

1. sample a latent KB over ``num_core`` entities with ``num_relations``
   relation types and hub-biased triples;
2. produce two language *views*; each keeps an independent random
   subset of the latent triples (so the two graphs agree only
   partially — the signal entity alignment exploits) and adds its own
   extra entities and noise triples (DBpedia's EN view is larger than
   ZH, mirrored here);
3. the core entities are the gold alignment, split 30/10/60 into
   train/val/test links exactly as in Section IV-A1.

Entity indices are shuffled per view so alignment cannot leak through
index identity.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.graph.data import Graph
from repro.graph.utils import to_undirected

__all__ = ["KnowledgeGraph", "AlignmentDataset", "generate_alignment_dataset"]


@dataclasses.dataclass
class KnowledgeGraph:
    """One language view: typed triples over its own entity index."""

    num_entities: int
    triples: np.ndarray  # (T, 3) int64 rows: head, relation, tail
    name: str = "kg"

    def __post_init__(self):
        self.triples = np.asarray(self.triples, dtype=np.int64)
        if self.triples.ndim != 2 or self.triples.shape[1] != 3:
            raise ValueError(f"triples must be (T, 3), got {self.triples.shape}")
        entity_refs = self.triples[:, [0, 2]]
        if entity_refs.size and entity_refs.max() >= self.num_entities:
            raise ValueError("triple references entity beyond num_entities")

    @property
    def num_relations(self) -> int:
        if len(self.triples) == 0:
            return 0
        return int(self.triples[:, 1].max()) + 1

    @property
    def num_triples(self) -> int:
        return len(self.triples)

    def as_graph(self) -> Graph:
        """Untyped undirected graph view used by the GNN encoders."""
        edge_index = np.stack([self.triples[:, 0], self.triples[:, 2]])
        edge_index = to_undirected(edge_index, self.num_entities)
        features = np.zeros((self.num_entities, 1))  # embeddings are learned
        return Graph(edge_index=edge_index, features=features, name=self.name)


@dataclasses.dataclass
class AlignmentDataset:
    """A bilingual KG pair with seed alignment splits.

    ``train_links`` etc. are ``(n, 2)`` arrays of (kg1 index, kg2
    index) gold pairs.
    """

    kg1: KnowledgeGraph
    kg2: KnowledgeGraph
    train_links: np.ndarray
    val_links: np.ndarray
    test_links: np.ndarray
    name: str = "dbp15k-like"

    def __post_init__(self):
        for attr in ("train_links", "val_links", "test_links"):
            value = np.asarray(getattr(self, attr), dtype=np.int64)
            if value.ndim != 2 or value.shape[1] != 2:
                raise ValueError(f"{attr} must be (n, 2)")
            setattr(self, attr, value)

    @property
    def num_links(self) -> int:
        return len(self.train_links) + len(self.val_links) + len(self.test_links)

    def statistics(self) -> dict:
        """Table V analogue rows."""
        return {
            "kg1": {
                "entities": self.kg1.num_entities,
                "relations": self.kg1.num_relations,
                "triples": self.kg1.num_triples,
            },
            "kg2": {
                "entities": self.kg2.num_entities,
                "relations": self.kg2.num_relations,
                "triples": self.kg2.num_triples,
            },
            "links": {
                "train": len(self.train_links),
                "val": len(self.val_links),
                "test": len(self.test_links),
            },
        }


def generate_alignment_dataset(
    seed: int = 0,
    num_core: int = 240,
    extra_1: int = 40,
    extra_2: int = 80,
    num_relations: int = 8,
    triples_per_entity: float = 10.0,
    keep_1: float = 0.95,
    keep_2: float = 0.90,
    noise_triples: int = 40,
    train_fraction: float = 0.3,
    val_fraction: float = 0.1,
) -> AlignmentDataset:
    """Build the synthetic bilingual pair (see module docstring).

    ``keep_i`` is the fraction of latent triples retained by view i;
    the *overlap* of the two retained sets (≈ ``keep_1 * keep_2``) is
    the structural signal available to alignment models.
    """
    rng = np.random.default_rng(seed)

    # Latent KB over the core entities, hub-biased like real KBs.
    num_latent = int(num_core * triples_per_entity)
    propensity = rng.pareto(2.0, size=num_core) + 1.0
    probs = propensity / propensity.sum()
    heads = rng.choice(num_core, size=num_latent, p=probs)
    tails = rng.choice(num_core, size=num_latent, p=probs)
    keep = heads != tails
    heads, tails = heads[keep], tails[keep]
    relations = rng.integers(0, num_relations, size=len(heads))
    latent = np.stack([heads, relations, tails], axis=1)

    def make_view(keep_fraction: float, extra: int, view_seed: int, name: str):
        view_rng = np.random.default_rng(view_seed)
        mask = view_rng.random(len(latent)) < keep_fraction
        triples = latent[mask].copy()
        total_entities = num_core + extra
        # Extra, view-specific entities with noise triples to anything.
        if extra > 0 or noise_triples > 0:
            noise_heads = view_rng.integers(0, total_entities, size=noise_triples)
            noise_tails = view_rng.integers(0, total_entities, size=noise_triples)
            ok = noise_heads != noise_tails
            noise = np.stack(
                [
                    noise_heads[ok],
                    view_rng.integers(0, num_relations, size=ok.sum()),
                    noise_tails[ok],
                ],
                axis=1,
            )
            triples = np.concatenate([triples, noise])
        # Shuffle entity indices so identity carries no signal.
        permutation = view_rng.permutation(total_entities)
        triples[:, 0] = permutation[triples[:, 0]]
        triples[:, 2] = permutation[triples[:, 2]]
        core_position = permutation[:num_core]  # where core entity i ended up
        return KnowledgeGraph(total_entities, triples, name=name), core_position

    kg1, core_1 = make_view(keep_1, extra_1, seed + 11, "zh")
    kg2, core_2 = make_view(keep_2, extra_2, seed + 23, "en")

    pairs = np.stack([core_1, core_2], axis=1)
    pairs = pairs[rng.permutation(num_core)]
    n_train = int(round(train_fraction * num_core))
    n_val = int(round(val_fraction * num_core))
    return AlignmentDataset(
        kg1=kg1,
        kg2=kg2,
        train_links=pairs[:n_train],
        val_links=pairs[n_train : n_train + n_val],
        test_links=pairs[n_train + n_val :],
    )
