"""Entity-alignment models and training (DB task, Section IV-D).

Three model families from Table VIII:

* :class:`EmbeddingAligner` — the JAPE-like baseline: per-KG TransE
  embeddings pulled together on seed links, no graph convolution;
* :class:`GNNAligner` — GCN-Align-style: learned entity embeddings
  refined by a (shared-weight) GNN encoder per KG; with
  ``node_aggregators=['gcn', 'gcn']`` this *is* our GCN-Align, and any
  other aggregator combination realises a SANE-searched alignment
  architecture (the paper finds "GAT-GeniePath");
* training — margin-based ranking with negative sampling, early
  stopping on validation Hits@1.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import obs
from repro.autograd import functional as F
from repro.autograd import no_grad, ops
from repro.autograd.scatter import gather
from repro.autograd.tensor import Tensor
from repro.gnn.aggregators import create_node_aggregator
from repro.gnn.common import GraphCache
from repro.kg.data import AlignmentDataset
from repro.kg.metrics import evaluate_alignment
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.optim import Adam, clip_grad_norm

__all__ = [
    "AlignConfig",
    "AlignResult",
    "EmbeddingAligner",
    "GNNAligner",
    "l2_normalize",
    "margin_ranking_loss",
    "train_aligner",
]


def l2_normalize(embeddings: Tensor) -> Tensor:
    """Row-normalise embeddings to the unit sphere.

    GCN-Align normalises entity embeddings before the L1 ranking;
    without it the margin loss can satisfy itself by shrinking norms
    and Hits@k collapses (observed ~0.03 → ~0.44 Hits@1 here).
    """
    squared = ops.clip(ops.sum(embeddings * embeddings, axis=1, keepdims=True), low=1e-12)
    return embeddings / squared**0.5


@dataclasses.dataclass
class AlignConfig:
    """Training hyper-parameters for alignment models."""

    epochs: int = 300
    lr: float = 1e-2
    weight_decay: float = 1e-5
    margin: float = 1.0
    num_negatives: int = 8
    patience: int = 60
    grad_clip: float = 5.0
    embedding_dim: int = 48

    def replace(self, **updates) -> "AlignConfig":
        return dataclasses.replace(self, **updates)


@dataclasses.dataclass
class AlignResult:
    """Hits@k tables at the best-validation epoch."""

    val_hits1: float
    test_hits: dict[str, dict[int, float]]
    best_epoch: int
    train_time: float


class EmbeddingAligner(Module):
    """JAPE-like baseline: joint translation embedding with merged seeds.

    Following JAPE's structure-embedding component, both KGs live in a
    single embedding table; every *training* seed pair shares one row
    (hard alignment), so the TransE objective ``h + r ≈ t`` over both
    triple sets propagates alignment from seeds to test entities
    through shared relational context. No neighborhood aggregation is
    performed — which is why the GNN methods beat it in Table VIII.
    """

    def __init__(self, dataset: AlignmentDataset, dim: int, rng: np.random.Generator):
        super().__init__()
        self.dataset = dataset
        n1 = dataset.kg1.num_entities
        n2 = dataset.kg2.num_entities
        # kg1 entities map to rows [0, n1); kg2 entities map either to
        # their seed partner's row or to their own fresh row.
        self._map_1 = np.arange(n1, dtype=np.int64)
        self._map_2 = np.full(n2, -1, dtype=np.int64)
        for kg1_index, kg2_index in dataset.train_links:
            self._map_2[kg2_index] = kg1_index
        fresh = np.flatnonzero(self._map_2 < 0)
        self._map_2[fresh] = n1 + np.arange(len(fresh))
        num_rows = n1 + len(fresh)

        self.entities = Parameter(init.xavier_uniform((num_rows, dim), rng))
        num_rel = max(dataset.kg1.num_relations, dataset.kg2.num_relations, 1)
        self.relations = Parameter(init.xavier_uniform((num_rel, dim), rng))

    def encode(self) -> tuple[Tensor, Tensor]:
        table = l2_normalize(self.entities)
        return gather(table, self._map_1), gather(table, self._map_2)

    def structure_loss(self, rng: np.random.Generator) -> Tensor:
        """TransE margin loss over both KGs in the merged index space."""
        total = None
        for triples, mapping in (
            (self.dataset.kg1.triples, self._map_1),
            (self.dataset.kg2.triples, self._map_2),
        ):
            heads = gather(self.entities, mapping[triples[:, 0]])
            rels = gather(self.relations, triples[:, 1])
            tails = gather(self.entities, mapping[triples[:, 2]])
            corrupt = rng.integers(0, self.entities.shape[0], size=len(triples))
            fake_tails = gather(self.entities, corrupt)
            pos = ops.sum(ops.abs(heads + rels - tails), axis=1)
            neg = ops.sum(ops.abs(heads + rels - fake_tails), axis=1)
            loss = ops.mean(F.relu(pos - neg + 1.0))
            total = loss if total is None else total + loss
        return total


class GNNAligner(Module):
    """GCN-Align-style model: embeddings + per-KG GNN encoder.

    The encoder weights are shared between the two KGs (as in
    GCN-Align), so structural roles map to the same embedding regions
    in both languages. ``node_aggregators`` picks the per-layer ops —
    the degrees of freedom SANE searches over for this task.
    """

    def __init__(
        self,
        dataset: AlignmentDataset,
        node_aggregators: list[str],
        dim: int,
        rng: np.random.Generator,
        activation: str = "tanh",
    ):
        super().__init__()
        if not node_aggregators:
            raise ValueError("need at least one encoder layer")
        self.dataset = dataset
        self.entities_1 = Parameter(init.xavier_uniform((dataset.kg1.num_entities, dim), rng))
        self.entities_2 = Parameter(init.xavier_uniform((dataset.kg2.num_entities, dim), rng))
        self.layers = [
            create_node_aggregator(name, dim, dim, rng) for name in node_aggregators
        ]
        self.activation = F.ACTIVATIONS[activation]
        self.cache_1 = GraphCache(dataset.kg1.as_graph())
        self.cache_2 = GraphCache(dataset.kg2.as_graph())
        self.node_aggregator_names = list(node_aggregators)

    def _encode_one(self, embeddings: Tensor, cache: GraphCache) -> Tensor:
        h = embeddings
        for layer in self.layers:
            h = self.activation(layer(h, cache))
        return l2_normalize(h)

    def encode(self) -> tuple[Tensor, Tensor]:
        z1 = self._encode_one(self.entities_1, self.cache_1)
        z2 = self._encode_one(self.entities_2, self.cache_2)
        return z1, z2

    def structure_loss(self, rng: np.random.Generator) -> Tensor | None:
        return None  # structure enters through the GNN propagation


def margin_ranking_loss(
    z1: Tensor,
    z2: Tensor,
    links: np.ndarray,
    rng: np.random.Generator,
    margin: float,
    num_negatives: int,
) -> Tensor:
    """Hinge loss pulling seed pairs together, negatives apart.

    For every gold link (i, j): ``relu(d(i, j) - d(i, j') + margin)``
    plus the symmetric corruption of the first side, L1 distances.
    """
    links = np.asarray(links, dtype=np.int64)
    anchors_1 = gather(z1, links[:, 0])
    anchors_2 = gather(z2, links[:, 1])
    pos = ops.sum(ops.abs(anchors_1 - anchors_2), axis=1)
    total = None
    for __ in range(num_negatives):
        fake_2 = gather(z2, rng.integers(0, z2.shape[0], size=len(links)))
        fake_1 = gather(z1, rng.integers(0, z1.shape[0], size=len(links)))
        neg_right = ops.sum(ops.abs(anchors_1 - fake_2), axis=1)
        neg_left = ops.sum(ops.abs(fake_1 - anchors_2), axis=1)
        loss = ops.mean(F.relu(pos - neg_right + margin)) + ops.mean(
            F.relu(pos - neg_left + margin)
        )
        total = loss if total is None else total + loss
    return total / (2 * num_negatives)


def train_aligner(
    model: Module,
    dataset: AlignmentDataset,
    config: AlignConfig | None = None,
    seed: int = 0,
) -> AlignResult:
    """Train any aligner exposing ``encode()``; early-stop on val Hits@1."""
    config = config or AlignConfig()
    rng = np.random.default_rng(seed)
    optimizer = Adam(model.parameters(), lr=config.lr, weight_decay=config.weight_decay)

    best = {"val": -1.0, "test": None, "epoch": 0, "state": None}
    since_best = 0
    train_span = obs.span("train", kind="train", task="kg-align").start()
    for epoch in range(config.epochs):
        with obs.span("epoch", index=epoch):
            model.train()
            optimizer.zero_grad()
            with obs.span("forward"):
                z1, z2 = model.encode()
                loss = margin_ranking_loss(
                    z1, z2, dataset.train_links, rng, config.margin, config.num_negatives
                )
                structure = model.structure_loss(rng)
                if structure is not None:
                    loss = loss + 0.5 * structure
            with obs.span("backward"):
                loss.backward()
            clip_grad_norm(model.parameters(), config.grad_clip)
            optimizer.step()

            model.eval()
            with obs.span("eval"), no_grad():
                z1_eval, z2_eval = model.encode()
            val = evaluate_alignment(
                z1_eval.numpy(), z2_eval.numpy(), dataset.val_links, ks=(1,)
            )
            val_hits1 = val["zh->en"][1]
            if val_hits1 > best["val"]:
                best.update(
                    val=val_hits1,
                    test=evaluate_alignment(
                        z1_eval.numpy(), z2_eval.numpy(), dataset.test_links
                    ),
                    epoch=epoch,
                    state=model.state_dict(),
                )
                since_best = 0
            else:
                since_best += 1
                if since_best >= config.patience:
                    break

    if best["state"] is not None:
        model.load_state_dict(best["state"])
    train_span.finish()
    return AlignResult(
        val_hits1=best["val"],
        test_hits=best["test"],
        best_epoch=best["epoch"],
        train_time=train_span.duration,
    )
