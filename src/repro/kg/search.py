"""SANE adapted to the entity-alignment task (Section IV-D).

Following the paper, the DB-task search differs from the benchmark
tasks: the backbone is a 2-layer GNN and the layer aggregator is
removed ("the performance decreases when simply adding the layer
aggregator"), so only node-aggregator combinations are searched. The
supernet mixes the candidate aggregators inside a shared-weight
GCN-Align-style encoder; ``alpha`` descends the validation margin loss
and ``w`` the training margin loss, exactly as Algorithm 1.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import obs
from repro.autograd import functional as F
from repro.autograd import no_grad, ops
from repro.autograd.tensor import Tensor
from repro.core.search_space import NODE_OPS
from repro.gnn.aggregators import create_node_aggregator
from repro.gnn.common import GraphCache
from repro.kg.align import AlignConfig, l2_normalize, margin_ranking_loss
from repro.kg.data import AlignmentDataset
from repro.kg.metrics import evaluate_alignment
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.optim import Adam, clip_grad_norm
from repro.obs import health

__all__ = ["AlignSearchConfig", "AlignSearchResult", "AlignSupernet", "search_alignment"]


@dataclasses.dataclass
class AlignSearchConfig:
    """Search hyper-parameters for the DB task."""

    epochs: int = 60
    num_layers: int = 2
    embedding_dim: int = 32
    node_ops: tuple[str, ...] = NODE_OPS
    w_lr: float = 1e-2
    w_weight_decay: float = 1e-5
    alpha_lr: float = 3e-3
    alpha_weight_decay: float = 1e-3
    margin: float = 1.0
    num_negatives: int = 3
    grad_clip: float = 5.0


@dataclasses.dataclass
class AlignSearchResult:
    node_aggregators: tuple[str, ...]
    search_time: float
    history: list[tuple[float, float]]


class AlignSupernet(Module):
    """Mixed-op alignment encoder (2 layers by default, no layer agg)."""

    def __init__(
        self,
        dataset: AlignmentDataset,
        config: AlignSearchConfig,
        rng: np.random.Generator,
    ):
        super().__init__()
        self.config = config
        dim = config.embedding_dim
        self.entities_1 = Parameter(
            init.xavier_uniform((dataset.kg1.num_entities, dim), rng)
        )
        self.entities_2 = Parameter(
            init.xavier_uniform((dataset.kg2.num_entities, dim), rng)
        )
        self.candidates = [
            [create_node_aggregator(name, dim, dim, rng) for name in config.node_ops]
            for __ in range(config.num_layers)
        ]
        self.alpha_node = Parameter(
            1e-3 * rng.normal(size=(config.num_layers, len(config.node_ops)))
        )
        self.cache_1 = GraphCache(dataset.kg1.as_graph())
        self.cache_2 = GraphCache(dataset.kg2.as_graph())

    def arch_parameters(self) -> list[Parameter]:
        return [self.alpha_node]

    def weight_parameters(self) -> list[Parameter]:
        return [p for p in self.parameters() if id(p) != id(self.alpha_node)]

    def _encode_one(self, embeddings: Tensor, cache: GraphCache) -> Tensor:
        h = embeddings
        for layer_index, candidates in enumerate(self.candidates):
            weights = F.softmax(ops.getitem(self.alpha_node, layer_index), axis=-1)
            mixed = None
            for op_index, candidate in enumerate(candidates):
                # Normalise each candidate's output before mixing so the
                # alpha competition compares *directions*, not output
                # magnitudes (otherwise large-magnitude ops like
                # sage-max dominate the mixture gradient regardless of
                # their stand-alone quality).
                with health.op_scope(
                    edge=f"node/{layer_index}",
                    layer=layer_index,
                    op=self.config.node_ops[op_index],
                ):
                    out = l2_normalize(candidate(h, cache))
                    term = out * weights[op_index]
                mixed = term if mixed is None else mixed + term
            h = ops.tanh(mixed)
        return l2_normalize(h)

    def encode(self) -> tuple[Tensor, Tensor]:
        return (
            self._encode_one(self.entities_1, self.cache_1),
            self._encode_one(self.entities_2, self.cache_2),
        )

    def derive(self) -> tuple[str, ...]:
        choices = self.alpha_node.data.argmax(axis=1)
        return tuple(self.config.node_ops[int(c)] for c in choices)


def search_alignment(
    dataset: AlignmentDataset,
    config: AlignSearchConfig | None = None,
    seed: int = 0,
) -> AlignSearchResult:
    """Run differentiable search for the alignment encoder ops."""
    config = config or AlignSearchConfig()
    rng = np.random.default_rng(seed)
    supernet = AlignSupernet(dataset, config, rng)
    w_optimizer = Adam(
        supernet.weight_parameters(), lr=config.w_lr, weight_decay=config.w_weight_decay
    )
    alpha_optimizer = Adam(
        supernet.arch_parameters(),
        lr=config.alpha_lr,
        weight_decay=config.alpha_weight_decay,
    )

    history: list[tuple[float, float]] = []
    monitor = health.get_monitor()
    search_span = obs.span("search", kind="search", algo="sane", task="kg-align").start()
    for epoch in range(config.epochs):
        with obs.span("epoch", index=epoch):
            arch_before = (
                [p.data.copy() for p in supernet.arch_parameters()]
                if monitor is not None
                else None
            )
            weight_before = (
                [p.data.copy() for p in supernet.weight_parameters()]
                if monitor is not None
                else None
            )
            # alpha step on validation links.
            supernet.train()
            supernet.zero_grad()
            with obs.span("alpha_step"):
                z1, z2 = supernet.encode()
                val_loss = margin_ranking_loss(
                    z1, z2, dataset.val_links, rng, config.margin, config.num_negatives
                )
                val_loss.backward()
                clip_grad_norm(supernet.arch_parameters(), config.grad_clip)
                alpha_optimizer.step()

            # w step on training links.
            supernet.zero_grad()
            with obs.span("weight_step"):
                z1, z2 = supernet.encode()
                train_loss = margin_ranking_loss(
                    z1, z2, dataset.train_links, rng, config.margin, config.num_negatives
                )
                train_loss.backward()
                clip_grad_norm(supernet.weight_parameters(), config.grad_clip)
                w_optimizer.step()

            supernet.eval()
            with obs.span("validation"):
                with no_grad():
                    z1_eval, z2_eval = supernet.encode()
                hits = evaluate_alignment(
                    z1_eval.numpy(), z2_eval.numpy(), dataset.val_links, ks=(1,)
                )
            history.append((search_span.elapsed(), hits["zh->en"][1]))
            if monitor is not None:
                monitor.observe_epoch(
                    epoch,
                    arch_params=supernet.arch_parameters(),
                    weight_params=supernet.weight_parameters(),
                    arch_before=arch_before,
                    weight_before=weight_before,
                    mixtures={"node": supernet.alpha_node.data},
                    op_names={"node": config.node_ops},
                )

    search_span.finish()
    return AlignSearchResult(
        node_aggregators=supernet.derive(),
        search_time=search_span.duration,
        history=history,
    )
