"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``stats``            print the Table IV/V dataset statistics
``search``           run SANE on one dataset, print the architecture
``baseline``         train a named human baseline on one dataset
``table``            regenerate a paper table (6/7/8/9/10)
``figure``           regenerate a paper figure (2/3/4a/4b)
``lint``             static analysis of repo invariants (repro.analysis)
``profile``          run search/baseline under the profiler (repro.obs)

All commands take ``--scale smoke|default|full`` (default: value of
``REPRO_SCALE`` or ``default``) and ``--seed``. ``profile`` also
accepts them after the subcommand for convenience.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.analysis import lint_paths, render_json, render_text
from repro.obs import ProfileSession
from repro.experiments import (
    SCALES,
    run_figure2,
    run_figure3,
    run_figure4a,
    run_figure4b,
    run_human_baseline,
    run_sane,
    run_table4,
    run_table6,
    run_table7,
    run_table8,
    run_table9,
    run_table10,
)
from repro.graph.datasets import ALL_DATASETS, load_dataset
from repro.train.metrics import format_mean_std

__all__ = ["build_parser", "main"]

_TABLE_RUNNERS = {
    "4": run_table4,
    "6": run_table6,
    "7": run_table7,
    "8": run_table8,
    "9": run_table9,
    "10": run_table10,
}
_FIGURE_RUNNERS = {
    "2": run_figure2,
    "3": run_figure3,
    "4a": run_figure4a,
    "4b": run_figure4b,
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SANE (ICDE 2021) reproduction command-line interface",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=os.environ.get("REPRO_SCALE", "default"),
        help="compute budget preset",
    )
    parser.add_argument("--seed", type=int, default=0)
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("stats", help="dataset statistics (Tables IV/V)")

    search = commands.add_parser("search", help="run SANE on one dataset")
    search.add_argument("dataset", choices=ALL_DATASETS)
    search.add_argument("--layers", type=int, default=3)
    search.add_argument("--epsilon", type=float, default=0.0)

    baseline = commands.add_parser("baseline", help="train a human baseline")
    baseline.add_argument("name", help="e.g. gcn, gat-jk, lgcn")
    baseline.add_argument("dataset", choices=ALL_DATASETS)

    table = commands.add_parser("table", help="regenerate a paper table")
    table.add_argument("number", choices=sorted(_TABLE_RUNNERS))
    table.add_argument(
        "--datasets", nargs="*", default=None, help="restrict to these datasets"
    )

    figure = commands.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("number", choices=sorted(_FIGURE_RUNNERS))
    figure.add_argument("--datasets", nargs="*", default=None)

    lint = commands.add_parser(
        "lint", help="static analysis enforcing autograd/NAS invariants"
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to lint (default: the repro package)",
    )
    lint.add_argument("--format", choices=("text", "json"), default="text")

    profile = commands.add_parser(
        "profile",
        help="run a command under the observability layer and report hotspots",
    )
    profile.add_argument(
        "target", choices=("search", "baseline"), help="what to profile"
    )
    profile.add_argument("--dataset", choices=ALL_DATASETS, default="cora")
    profile.add_argument(
        "--name", default="gcn", help="baseline architecture (target=baseline)"
    )
    profile.add_argument("--layers", type=int, default=3)
    profile.add_argument("--epsilon", type=float, default=0.0)
    profile.add_argument(
        "--trace",
        default=None,
        help="trace JSONL path (default: trace-<target>-<dataset>.jsonl)",
    )
    profile.add_argument("--top", type=int, default=10, help="hotspot table size")
    profile.add_argument(
        "--no-autograd",
        action="store_true",
        help="skip per-op autograd profiling (spans only)",
    )
    # Accepted after the subcommand too; SUPPRESS keeps an absent flag
    # from clobbering the top-level value already parsed.
    profile.add_argument(
        "--scale", choices=sorted(SCALES), default=argparse.SUPPRESS
    )
    profile.add_argument("--seed", type=int, default=argparse.SUPPRESS)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "lint":
        paths = args.paths or [os.path.dirname(os.path.abspath(__file__))]
        try:
            result = lint_paths(paths)
        except FileNotFoundError as exc:
            print(f"repro lint: error: {exc}", file=sys.stderr)
            return 2
        render = render_json if args.format == "json" else render_text
        print(render(result))
        return 1 if result.error_count else 0

    scale = SCALES[args.scale]

    if args.command == "profile":
        return _run_profile(args, scale)

    if args.command == "stats":
        print(run_table4(scale, seed=args.seed).render())
        return 0

    if args.command == "search":
        data = load_dataset(args.dataset, seed=args.seed, scale=scale.dataset_scale)
        run = run_sane(
            data, scale, seed=args.seed, num_layers=args.layers, epsilon=args.epsilon
        )
        print(f"architecture: {run.architecture}")
        print(f"search time:  {run.search_time:.1f}s")
        print(f"test score:   {format_mean_std(run.test_scores)}")
        return 0

    if args.command == "baseline":
        data = load_dataset(args.dataset, seed=args.seed, scale=scale.dataset_scale)
        scores = run_human_baseline(args.name, data, scale, seed=args.seed)
        print(f"{args.name} on {args.dataset}: {format_mean_std(scores)}")
        return 0

    if args.command == "table":
        runner = _TABLE_RUNNERS[args.number]
        kwargs = {"seed": args.seed}
        if args.datasets and args.number in ("6", "7", "9", "10"):
            kwargs["datasets"] = tuple(args.datasets)
        print(runner(scale, **kwargs).render())
        return 0

    if args.command == "figure":
        runner = _FIGURE_RUNNERS[args.number]
        kwargs = {"seed": args.seed}
        if args.datasets:
            kwargs["datasets"] = tuple(args.datasets)
        print(runner(scale, **kwargs).render())
        return 0

    return 1  # unreachable: argparse enforces a command


def _run_profile(args, scale) -> int:
    """``repro profile``: wrap search/baseline in a ProfileSession."""
    trace_path = args.trace or f"trace-{args.target}-{args.dataset}.jsonl"
    data = load_dataset(args.dataset, seed=args.seed, scale=scale.dataset_scale)
    label = f"{args.target}:{args.dataset}"
    with ProfileSession(
        trace_path=trace_path, autograd=not args.no_autograd, label=label
    ) as session:
        if args.target == "search":
            run = run_sane(
                data,
                scale,
                seed=args.seed,
                num_layers=args.layers,
                epsilon=args.epsilon,
            )
            headline = (
                f"architecture: {run.architecture}\n"
                f"search time:  {run.search_time:.1f}s\n"
                f"test score:   {format_mean_std(run.test_scores)}"
            )
            session.metrics.gauge("search_time_s").set(run.search_time)
            session.metrics.histogram("test_score").observe(
                float(sum(run.test_scores) / len(run.test_scores))
            )
        else:
            scores = run_human_baseline(args.name, data, scale, seed=args.seed)
            headline = f"{args.name} on {args.dataset}: {format_mean_std(scores)}"
            session.metrics.histogram("test_score").observe(
                float(sum(scores) / len(scores))
            )
    print(headline)
    print()
    print(session.report(top=args.top))
    print()
    print(f"trace: {trace_path} ({session.duration:.1f}s profiled)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
