"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``stats``            print the Table IV/V dataset statistics
``search``           run SANE on one dataset, print the architecture
``sweep``            multi-dataset/method search sweep on a worker pool
``baseline``         train a named human baseline on one dataset
``table``            regenerate a paper table (6/7/8/9/10)
``figure``           regenerate a paper figure (2/3/4a/4b)
``lint``             static analysis of repo invariants (repro.analysis)
``check``            interprocedural autograd contract analysis (dataflow)
``profile``          run search/baseline under the profiler (repro.obs)
``report``           render telemetry dashboards and the bench gate
``export``           train a model and bundle it as a servable artifact
``serve``            serve an exported artifact (demo or load bench)
``runs``             run-ledger history, lineage, and the trend gate

Every entry point that does work appends a provenance manifest to the
run ledger (``benchmarks/history/runs.jsonl``; directory overridable
via ``REPRO_HISTORY_DIR``, recording disabled with
``REPRO_RUN_LEDGER=off``) — the ``unledgered-entrypoint`` lint rule
keeps it that way.

All commands take ``--scale smoke|default|full`` (default: value of
``REPRO_SCALE`` or ``default``), ``--seed``, and ``--kernels
naive|fused`` (default: value of ``REPRO_KERNELS`` or ``fused``),
accepted both before and after the subcommand.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
from pathlib import Path

import numpy as np

from repro.analysis import (
    check_paths,
    lint_paths,
    render_check_json,
    render_check_text,
    render_json,
    render_text,
)
from repro.autograd import kernels
from repro.obs import ProfileSession, record_events, render_diff, render_run
from repro.obs.health import MODES, HealthMonitor, NumericsAnomaly
from repro.obs.memory import render_memory_report_file
from repro.obs.bench_gate import compare_bench, load_bench, render_bench_diff
from repro.obs.metrics import MetricsRegistry
from repro.obs.runs import (
    RunLedger,
    build_manifest,
    env_fingerprint,
    record_run,
    text_digest,
)
from repro.obs.runs_report import (
    DEFAULT_TOLERANCE,
    DEFAULT_WINDOW,
    render_run_show,
    render_runs_diff,
    render_runs_list,
    render_trend,
)
from repro.experiments import (
    SCALES,
    run_figure2,
    run_figure3,
    run_figure4a,
    run_figure4b,
    run_human_baseline,
    run_sane,
    run_table4,
    run_table6,
    run_table7,
    run_table8,
    run_table9,
    run_table10,
)
from repro.graph.datasets import ALL_DATASETS, load_dataset
from repro.parallel.sweep import SWEEP_METHODS, run_sweep
from repro.obs import (
    InMemorySink,
    JsonlSink,
    MetricsExporter,
    MetricsSnapshotter,
    get_tracer,
    render_serve_report,
)
from repro.serve import (
    ArtifactError,
    InferenceEngine,
    ServeServer,
    emit_serve_bench,
    export_alignment,
    export_baseline,
    export_search,
    load_artifact,
    render_load_report,
    run_load,
    save_artifact,
    sweep_levels,
)
from repro.train.metrics import format_mean_std

__all__ = ["build_parser", "main"]

_TABLE_RUNNERS = {
    "4": run_table4,
    "6": run_table6,
    "7": run_table7,
    "8": run_table8,
    "9": run_table9,
    "10": run_table10,
}
_FIGURE_RUNNERS = {
    "2": run_figure2,
    "3": run_figure3,
    "4a": run_figure4a,
    "4b": run_figure4b,
}


def _add_common_options(*parsers) -> None:
    """Accept ``--scale``/``--seed`` after a subcommand too.

    SUPPRESS keeps an absent flag from clobbering the top-level value
    already parsed, so both positions work and the later one wins.
    """
    for sub in parsers:
        sub.add_argument(
            "--scale", choices=sorted(SCALES), default=argparse.SUPPRESS
        )
        sub.add_argument("--seed", type=int, default=argparse.SUPPRESS)
        sub.add_argument(
            "--kernels", choices=kernels.BACKENDS, default=argparse.SUPPRESS
        )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SANE (ICDE 2021) reproduction command-line interface",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=os.environ.get("REPRO_SCALE", "default"),
        help="compute budget preset",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--kernels",
        choices=kernels.BACKENDS,
        default=kernels.get_backend(),
        help="segment-kernel backend (default: REPRO_KERNELS or 'fused')",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    stats = commands.add_parser("stats", help="dataset statistics (Tables IV/V)")

    search = commands.add_parser("search", help="run SANE on one dataset")
    search.add_argument("dataset", choices=ALL_DATASETS)
    search.add_argument("--layers", type=int, default=3)
    search.add_argument("--epsilon", type=float, default=0.0)
    search.add_argument(
        "--events",
        default=None,
        metavar="PATH",
        help="record search-dynamics telemetry to this events JSONL file",
    )
    search.add_argument(
        "--check-numerics",
        choices=MODES + ("off",),
        default="off",
        help="tape health monitor: 'raise' aborts on the first NaN/Inf "
        "with op/edge/layer/epoch provenance, 'warn' records anomalies "
        "and reports at the end, 'off' (default) installs nothing",
    )
    search.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes for search seeds/probes/retrains "
        "(0/1 = in-process; any count yields identical results)",
    )

    sweep = commands.add_parser(
        "sweep", help="multi-dataset/method search sweep on a worker pool"
    )
    sweep.add_argument("datasets", nargs="+", choices=ALL_DATASETS)
    sweep.add_argument(
        "--methods",
        nargs="+",
        choices=SWEEP_METHODS,
        default=["sane", "random", "graphnas"],
        help="search methods per dataset (default: sane random graphnas)",
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes shared by every cell's job waves "
        "(0/1 = in-process; the digest is identical at any count)",
    )
    sweep.add_argument(
        "--rollout-batch",
        type=int,
        default=1,
        help="candidates per round for the adaptive methods (batched-BO "
        "semantics when > 1; 1 = the sequential algorithm)",
    )

    baseline = commands.add_parser("baseline", help="train a human baseline")
    baseline.add_argument("name", help="e.g. gcn, gat-jk, lgcn")
    baseline.add_argument("dataset", choices=ALL_DATASETS)

    table = commands.add_parser("table", help="regenerate a paper table")
    table.add_argument("number", choices=sorted(_TABLE_RUNNERS))
    table.add_argument(
        "--datasets", nargs="*", default=None, help="restrict to these datasets"
    )
    table.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes for per-cell search jobs (table 7 only)",
    )

    figure = commands.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("number", choices=sorted(_FIGURE_RUNNERS))
    figure.add_argument("--datasets", nargs="*", default=None)
    figure.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes for per-cell search jobs (figure 3 only)",
    )

    lint = commands.add_parser(
        "lint", help="static analysis enforcing autograd/NAS invariants"
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=None,
        help=(
            "files or directories to lint (default: the repro package "
            "plus the checkout's examples/ and scripts/ trees)"
        ),
    )
    lint.add_argument("--format", choices=("text", "json"), default="text")

    check = commands.add_parser(
        "check",
        help="interprocedural autograd contract analysis (VJP completeness, "
        "capture weight, in-place escape, kernel purity)",
    )
    check.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to check (default: the autograd package)",
    )
    check.add_argument("--format", choices=("text", "json"), default="text")
    check.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="grandfathered-findings file (default: the committed "
        "src/repro/analysis/check_baseline.json)",
    )

    profile = commands.add_parser(
        "profile",
        help="run a command under the observability layer and report hotspots",
    )
    profile.add_argument(
        "target", choices=("search", "baseline"), help="what to profile"
    )
    profile.add_argument("--dataset", choices=ALL_DATASETS, default="cora")
    profile.add_argument(
        "--name", default="gcn", help="baseline architecture (target=baseline)"
    )
    profile.add_argument("--layers", type=int, default=3)
    profile.add_argument("--epsilon", type=float, default=0.0)
    profile.add_argument(
        "--trace",
        default=None,
        help="trace JSONL path (default: trace-<target>-<dataset>.jsonl)",
    )
    profile.add_argument("--top", type=int, default=10, help="hotspot table size")
    profile.add_argument(
        "--no-autograd",
        action="store_true",
        help="skip per-op autograd profiling (spans only)",
    )
    profile.add_argument(
        "--events",
        action="store_true",
        help="interleave telemetry events into the trace file",
    )
    profile.add_argument(
        "--memory",
        action="store_true",
        help="track tape memory (live set, retained buffers) and append "
        "a memory_stats record to the trace",
    )

    report = commands.add_parser(
        "report", help="telemetry dashboards and the bench regression gate"
    )
    views = report.add_subparsers(dest="view", required=True)
    report_run = views.add_parser(
        "run", help="render one recorded run's search-dynamics dashboard"
    )
    report_run.add_argument("events", help="events/trace JSONL file")
    report_diff = views.add_parser(
        "diff", help="compare two recorded runs (genotype, curves, hotspots)"
    )
    report_diff.add_argument("a", help="events/trace JSONL file (baseline)")
    report_diff.add_argument("b", help="events/trace JSONL file (candidate)")
    report_memory = views.add_parser(
        "memory", help="render the tape-memory hotspot table from a trace"
    )
    report_memory.add_argument(
        "trace", help="trace JSONL recorded with `repro profile --memory`"
    )
    report_memory.add_argument(
        "--top", type=int, default=10, help="rows per hotspot table"
    )
    report_serve = views.add_parser(
        "serve",
        help="per-stage latency breakdown, queue timeline, and slowest-trace "
        "drilldown from a serve trace",
    )
    report_serve.add_argument(
        "trace", help="trace JSONL recorded with `repro serve --trace`"
    )
    report_serve.add_argument(
        "--top", type=int, default=5, help="slowest traces to drill into"
    )
    report_bench = views.add_parser(
        "bench", help="gate fresh BENCH_*.json files against committed baselines"
    )
    report_bench.add_argument(
        "files",
        nargs="*",
        help="fresh BENCH_<name>.json files (default: every baseline's "
        "counterpart in --bench-dir)",
    )
    report_bench.add_argument(
        "--baselines",
        default="benchmarks/baselines",
        help="directory of committed baseline BENCH_<name>.json files",
    )
    report_bench.add_argument(
        "--bench-dir",
        default=None,
        help="directory of fresh bench output (default: REPRO_BENCH_DIR or .)",
    )
    report_bench.add_argument(
        "--tolerance",
        type=float,
        default=0.1,
        help="relative degradation allowed for score-like metrics",
    )
    report_bench.add_argument(
        "--time-tolerance",
        type=float,
        default=0.5,
        help="relative degradation allowed for wall-clock metrics",
    )
    report_bench.add_argument(
        "--abs-floor-ms",
        type=float,
        default=1.0,
        help="noise floor for seconds-valued metrics: when baseline and "
        "current are both below this many milliseconds, the delta never "
        "gates (sub-millisecond tails are timer jitter at smoke scale)",
    )
    report_bench.add_argument(
        "--gate-spans",
        action="store_true",
        help="also gate per-phase span timings (noisy across machines)",
    )
    report_bench.add_argument(
        "--gate-tails",
        action="store_true",
        help="also gate p95/p99 tail percentiles (max-like statistics: a "
        "single co-tenant scheduler burst moves them several hundred "
        "percent; without this flag their moves report as 'noisy')",
    )

    export = commands.add_parser(
        "export", help="train a model and bundle it as a servable artifact"
    )
    targets = export.add_subparsers(dest="target", required=True)
    export_search_p = targets.add_parser(
        "search", help="run SANE, train the winning genotype, bundle it"
    )
    export_search_p.add_argument("dataset", choices=ALL_DATASETS)
    export_search_p.add_argument("--layers", type=int, default=3)
    export_search_p.add_argument("--epsilon", type=float, default=0.0)
    export_search_p.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="artifact path (default: artifact-search-<dataset>.json)",
    )
    export_baseline_p = targets.add_parser(
        "baseline", help="train a human baseline and bundle it"
    )
    export_baseline_p.add_argument("name", help="e.g. gcn, gat-jk")
    export_baseline_p.add_argument("dataset", choices=ALL_DATASETS)
    export_baseline_p.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="artifact path (default: artifact-baseline-<name>-<dataset>.json)",
    )
    export_kg_p = targets.add_parser(
        "kg", help="train an entity-alignment encoder and bundle it"
    )
    export_kg_p.add_argument(
        "--aggregators",
        nargs="+",
        default=["gat", "geniepath"],
        help="per-layer encoder aggregators (default: the paper's "
        "searched GAT-GeniePath)",
    )
    export_kg_p.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="artifact path (default: artifact-kg.json)",
    )

    serve = commands.add_parser(
        "serve", help="serve an exported artifact (demo or load bench)"
    )
    serve.add_argument("artifact", help="artifact JSON from `repro export`")
    serve.add_argument(
        "--bench",
        action="store_true",
        help="run the concurrency sweep and emit BENCH_serve_throughput.json "
        "to REPRO_BENCH_DIR",
    )
    serve.add_argument(
        "--levels",
        nargs="+",
        type=int,
        default=None,
        help="concurrency levels to sweep (default: per-scale preset)",
    )
    serve.add_argument(
        "--requests",
        type=int,
        default=None,
        help="requests per concurrency level (default: per-scale preset)",
    )
    serve.add_argument("--max-batch", type=int, default=64)
    serve.add_argument("--workers", type=int, default=1)
    serve.add_argument(
        "--bench-name",
        default="serve_throughput",
        metavar="NAME",
        help="bench payload name: emits BENCH_<NAME>.json and gates "
        "against the baseline of the same name (default: serve_throughput)",
    )
    serve.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record every request's span tree to this trace JSONL "
        "(render with `repro report serve`)",
    )
    serve.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="per-request latency SLO in milliseconds (accounting only: "
        "misses bump serve.deadline_exceeded, nothing is shed)",
    )
    serve.add_argument(
        "--export-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve a Prometheus-style /metrics scrape endpoint on this "
        "port (0 = ephemeral; the bound port is printed)",
    )
    serve.add_argument(
        "--export-snapshots",
        default=None,
        metavar="PATH",
        help="flush periodic metrics-registry snapshots to this JSONL file",
    )
    serve.add_argument(
        "--export-interval",
        type=float,
        default=0.5,
        help="seconds between snapshot flushes (default: 0.5)",
    )
    serve.add_argument(
        "--export-linger",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="after the work finishes, keep the scrape endpoint alive "
        "until one scrape lands or this many seconds pass (CI scrapes "
        "a bench run this way)",
    )

    runs = commands.add_parser(
        "runs", help="run-ledger history, lineage, and the trend gate"
    )
    runs_views = runs.add_subparsers(dest="view", required=True)
    runs_list_p = runs_views.add_parser(
        "list", help="the run history table, oldest first"
    )
    runs_list_p.add_argument(
        "--last", type=int, default=20, help="show only the newest N runs"
    )
    runs_list_p.add_argument(
        "--command",
        dest="filter_command",
        default=None,
        help="restrict to manifests of one command (search, serve, ...)",
    )
    runs_show_p = runs_views.add_parser(
        "show", help="one manifest in full, with lineage resolution"
    )
    runs_show_p.add_argument(
        "run",
        help="run-id prefix (latest append wins) or integer position "
        "(0 = oldest, -1 = newest)",
    )
    runs_diff_p = runs_views.add_parser(
        "diff", help="config/env drift and metric deltas between two runs"
    )
    runs_diff_p.add_argument("a", help="baseline run ref (id prefix or index)")
    runs_diff_p.add_argument("b", help="candidate run ref (id prefix or index)")
    runs_trend_p = runs_views.add_parser(
        "trend", help="metric history sparklines and the drift gate"
    )
    runs_trend_p.add_argument(
        "metrics", nargs="+", help="metric names, e.g. search.epoch_ms"
    )
    runs_trend_p.add_argument(
        "--gate",
        action="store_true",
        help="exit nonzero on sustained drift in the bad direction "
        "(or on a gated metric with no history)",
    )
    runs_trend_p.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="relative drift allowed before the trailing window gates",
    )
    runs_trend_p.add_argument(
        "--window",
        type=int,
        default=DEFAULT_WINDOW,
        help="longest trailing window compared against older history",
    )
    runs_trend_p.add_argument(
        "--last", type=int, default=0, help="consider only the newest N points"
    )
    runs_trend_p.add_argument(
        "--command",
        dest="filter_command",
        default=None,
        help="read the metric only from manifests of this command",
    )
    runs_gc_p = runs_views.add_parser(
        "gc", help="truncate the ledger to the newest N manifests"
    )
    runs_gc_p.add_argument(
        "--keep", type=int, default=200, help="manifests to retain"
    )
    for sub in (runs_list_p, runs_show_p, runs_diff_p, runs_trend_p, runs_gc_p):
        sub.add_argument(
            "--history",
            default=None,
            metavar="PATH",
            help="ledger file (default: <REPRO_HISTORY_DIR or "
            "benchmarks/history>/runs.jsonl)",
        )

    _add_common_options(
        stats, search, sweep, baseline, table, figure, lint, check, profile,
        report, report_run, report_diff, report_memory, report_serve,
        report_bench,
        export, export_search_p, export_baseline_p, export_kg_p, serve,
        runs, runs_list_p, runs_show_p, runs_diff_p, runs_trend_p, runs_gc_p,
    )
    return parser


def _default_lint_paths() -> list[str]:
    """The package itself plus the repo-level examples/ and scripts/
    trees when running from a source checkout (they don't ship in an
    installed package, so their absence is not an error)."""
    package_dir = os.path.dirname(os.path.abspath(__file__))
    repo_root = os.path.dirname(os.path.dirname(package_dir))
    paths = [package_dir]
    for name in ("examples", "scripts"):
        candidate = os.path.join(repo_root, name)
        if os.path.isdir(candidate):
            paths.append(candidate)
    return paths


def _ledger_env(args) -> dict:
    """One env-fingerprint shape for every handler's manifest."""
    return env_fingerprint(
        scale=args.scale,
        seed=getattr(args, "seed", None),
        kernels=args.kernels,
        workers=getattr(args, "workers", 0) or 0,
    )


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code.

    Dispatches to one ``_cmd_<command>`` handler per subcommand. Every
    handler that does work records a run manifest via
    :func:`repro.obs.runs.record_run` — the ``unledgered-entrypoint``
    lint rule enforces the convention (read-only handlers carry a
    justified suppression instead).
    """
    args = build_parser().parse_args(argv)
    kernels.set_backend(args.kernels)

    scaleless = {
        "lint": _cmd_lint,
        "check": _cmd_check,
        "report": _cmd_report,
        "runs": _cmd_runs,
    }
    if args.command in scaleless:
        return scaleless[args.command](args)

    handlers = {
        "stats": _cmd_stats,
        "search": _cmd_search,
        "sweep": _cmd_sweep,
        "baseline": _cmd_baseline,
        "table": _cmd_table,
        "figure": _cmd_figure,
        "profile": _cmd_profile,
        "export": _cmd_export,
        "serve": _cmd_serve,
    }
    return handlers[args.command](args, SCALES[args.scale])


def _cmd_lint(args) -> int:
    """``repro lint``: static analysis of repo invariants."""
    paths = args.paths or _default_lint_paths()
    try:
        result = lint_paths(paths)
    except FileNotFoundError as exc:
        print(f"repro lint: error: {exc}", file=sys.stderr)
        return 2
    render = render_json if args.format == "json" else render_text
    print(render(result))
    code = 1 if result.error_count else 0
    record_run(
        "lint",
        {"paths": [str(p) for p in (args.paths or [])], "format": args.format},
        env=_ledger_env(args),
        outputs={
            "exit_code": code,
            "files": result.files,
            "errors": result.error_count,
            "warnings": result.warning_count,
        },
    )
    return code


def _cmd_check(args) -> int:
    """``repro check``: interprocedural autograd contract analysis."""
    default_root = os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "autograd"
    )
    paths = args.paths or [default_root]
    try:
        check = check_paths(paths, baseline_path=args.baseline)
    except FileNotFoundError as exc:
        print(f"repro check: error: {exc}", file=sys.stderr)
        return 2
    render = render_check_json if args.format == "json" else render_check_text
    print(render(check))
    record_run(
        "check",
        {"paths": [str(p) for p in (args.paths or [])], "format": args.format},
        env=_ledger_env(args),
        outputs={
            "exit_code": check.exit_code,
            "files": check.result.files,
            "errors": check.result.error_count,
            "warnings": check.result.warning_count,
        },
    )
    return check.exit_code


def _cmd_stats(args, scale) -> int:
    """``repro stats``: the Table IV/V dataset statistics."""
    clock = get_tracer().clock
    t0 = clock()
    rendered = run_table4(scale, seed=args.seed).render()
    print(rendered)
    record_run(
        "stats",
        {"scale": args.scale},
        env=_ledger_env(args),
        outputs={"render_sha256": text_digest(rendered)},
        duration_s=clock() - t0,
    )
    return 0


def _cmd_search(args, scale) -> int:
    """``repro search``: run SANE on one dataset."""
    clock = get_tracer().clock
    t0 = clock()
    data = load_dataset(args.dataset, seed=args.seed, scale=scale.dataset_scale)
    monitor = None
    if args.check_numerics != "off":
        monitor = HealthMonitor(mode=args.check_numerics).install()

    def run_search():
        if args.events:
            with record_events(
                args.events, label=f"search:{args.dataset}", spans=True
            ):
                return run_sane(
                    data, scale, seed=args.seed,
                    num_layers=args.layers, epsilon=args.epsilon,
                    workers=args.workers,
                )
        return run_sane(
            data, scale, seed=args.seed,
            num_layers=args.layers, epsilon=args.epsilon,
            workers=args.workers,
        )

    try:
        run = run_search()
    except NumericsAnomaly as anomaly:
        print(f"repro search: numerics anomaly: {anomaly}", file=sys.stderr)
        return 3
    finally:
        if monitor is not None:
            monitor.uninstall()
    print(f"architecture: {run.architecture}")
    print(f"search time:  {run.search_time:.1f}s")
    print(f"test score:   {format_mean_std(run.test_scores)}")
    if monitor is not None:
        summary = monitor.summary()
        print(
            f"tape health:  {summary['checked_entries']} entries checked, "
            f"{len(summary['anomalies'])} anomalies, "
            f"{len(summary['dead_ops'])} dead-op sightings"
        )
        for entry in summary["anomalies"]:
            print(
                "  anomaly: "
                f"{entry['kind']} in {entry['phase']} of op={entry['op']!r}, "
                f"edge={entry['edge']!r}, layer={entry['layer']}, "
                f"epoch={entry['epoch']}"
            )
    if args.events:
        print(f"events:       {args.events} (render with `repro report run`)")
    record_run(
        "search",
        {
            "dataset": args.dataset,
            "layers": args.layers,
            "epsilon": args.epsilon,
            "scale": args.scale,
        },
        env=_ledger_env(args),
        metrics={
            "search.time_s": run.search_time,
            "search.epoch_ms": run.search_time
            / max(1, scale.search_epochs) * 1000.0,
            "search.test_score": float(np.mean(run.test_scores)),
        },
        outputs={
            "architecture": str(run.architecture),
            "test_scores": [float(s) for s in run.test_scores],
        },
        files=[args.events] if args.events else None,
        duration_s=clock() - t0,
    )
    return 0


def _cmd_sweep(args, scale) -> int:
    """``repro sweep``: the (dataset, method) grid on a worker pool."""
    clock = get_tracer().clock
    t0 = clock()
    registry = MetricsRegistry()
    result = run_sweep(
        args.datasets,
        scale,
        seed=args.seed,
        methods=tuple(args.methods),
        workers=args.workers,
        rollout_batch=args.rollout_batch,
        metrics=registry,
    )
    print(result.render())
    # One manifest per sweep; the grid rides along as children so
    # `repro runs show` renders the whole (dataset, method) table.
    children = [
        {
            "dataset": cell.dataset,
            "method": cell.method,
            "test_mean": round(
                sum(cell.test_scores) / max(1, len(cell.test_scores)), 6
            ),
            "val_score": round(cell.val_score, 6),
            "best": cell.best,
            "search_s": round(cell.search_time, 3),
        }
        for cell in result.cells
    ]
    record_run(
        "sweep",
        {
            "datasets": list(args.datasets),
            "methods": list(args.methods),
            "rollout_batch": args.rollout_batch,
            "scale": args.scale,
        },
        env=_ledger_env(args),
        registry=registry,
        outputs={"digest": result.digest()},
        children=children,
        duration_s=clock() - t0,
    )
    return 0


def _cmd_baseline(args, scale) -> int:
    """``repro baseline``: train a named human baseline."""
    clock = get_tracer().clock
    t0 = clock()
    data = load_dataset(args.dataset, seed=args.seed, scale=scale.dataset_scale)
    scores = run_human_baseline(args.name, data, scale, seed=args.seed)
    print(f"{args.name} on {args.dataset}: {format_mean_std(scores)}")
    record_run(
        "baseline",
        {"name": args.name, "dataset": args.dataset, "scale": args.scale},
        env=_ledger_env(args),
        metrics={"baseline.test_score": float(np.mean(scores))},
        outputs={"scores": [float(s) for s in scores]},
        duration_s=clock() - t0,
    )
    return 0


def _cmd_table(args, scale) -> int:
    """``repro table``: regenerate a paper table."""
    clock = get_tracer().clock
    t0 = clock()
    runner = _TABLE_RUNNERS[args.number]
    kwargs = {"seed": args.seed}
    if args.datasets and args.number in ("6", "7", "9", "10"):
        kwargs["datasets"] = tuple(args.datasets)
    if args.workers and args.number == "7":
        kwargs["workers"] = args.workers
    rendered = runner(scale, **kwargs).render()
    print(rendered)
    record_run(
        "table",
        {
            "number": args.number,
            "datasets": list(args.datasets or []),
            "scale": args.scale,
        },
        env=_ledger_env(args),
        outputs={"render_sha256": text_digest(rendered)},
        duration_s=clock() - t0,
    )
    return 0


def _cmd_figure(args, scale) -> int:
    """``repro figure``: regenerate a paper figure."""
    clock = get_tracer().clock
    t0 = clock()
    runner = _FIGURE_RUNNERS[args.number]
    kwargs = {"seed": args.seed}
    if args.datasets:
        kwargs["datasets"] = tuple(args.datasets)
    if args.workers and args.number == "3":
        kwargs["workers"] = args.workers
    rendered = runner(scale, **kwargs).render()
    print(rendered)
    record_run(
        "figure",
        {
            "number": args.number,
            "datasets": list(args.datasets or []),
            "scale": args.scale,
        },
        env=_ledger_env(args),
        outputs={"render_sha256": text_digest(rendered)},
        duration_s=clock() - t0,
    )
    return 0


def _cmd_runs(args) -> int:  # lint: disable=unledgered-entrypoint -- reading the ledger must never write it
    """``repro runs``: history, lineage, and the trend gate."""
    ledger = RunLedger(args.history)
    if args.view == "gc":
        dropped = ledger.gc(args.keep)
        print(
            f"run ledger gc: kept newest {args.keep}, dropped {dropped} "
            f"entr{'y' if dropped == 1 else 'ies'} ({ledger.path})"
        )
        return 0
    manifests = ledger.read()

    if args.view == "list":
        print(
            render_runs_list(
                manifests, last=args.last, command=args.filter_command
            )
        )
        return 0

    if args.view == "show":
        hit = ledger.resolve(args.run, manifests)
        if hit is None:
            print(
                f"repro runs show: error: no run matching {args.run!r} "
                f"in {ledger.path}",
                file=sys.stderr,
            )
            return 2
        manifest, seq = hit
        producer = None
        producer_id = (manifest.lineage or {}).get("producer_run_id")
        if producer_id:
            parent = ledger.resolve(str(producer_id), manifests)
            producer = parent[0] if parent is not None else None
        print(render_run_show(manifest, seq=seq, producer=producer))
        return 0

    if args.view == "diff":
        hits = [ledger.resolve(ref, manifests) for ref in (args.a, args.b)]
        if None in hits:
            missing = args.a if hits[0] is None else args.b
            print(
                f"repro runs diff: error: no run matching {missing!r} "
                f"in {ledger.path}",
                file=sys.stderr,
            )
            return 2
        print(render_runs_diff(hits[0][0], hits[1][0]))
        return 0

    text, failed = render_trend(
        manifests,
        args.metrics,
        tolerance=args.tolerance,
        window=args.window,
        last=args.last,
        command=args.filter_command,
    )
    print(text)
    return 1 if (failed and args.gate) else 0


def _cmd_report(args) -> int:  # lint: disable=unledgered-entrypoint -- read-only dashboards and gate renderers
    """``repro report``: run/diff dashboards and the bench gate."""
    if args.view == "run":
        try:
            print(render_run(args.events))
        except (OSError, ValueError) as exc:
            print(f"repro report run: error: {exc}", file=sys.stderr)
            return 2
        return 0

    if args.view == "diff":
        try:
            print(render_diff(args.a, args.b))
        except (OSError, ValueError) as exc:
            print(f"repro report diff: error: {exc}", file=sys.stderr)
            return 2
        return 0

    if args.view == "memory":
        try:
            print(render_memory_report_file(args.trace, top=args.top))
        except (OSError, ValueError) as exc:
            print(f"repro report memory: error: {exc}", file=sys.stderr)
            return 2
        return 0

    if args.view == "serve":
        try:
            print(render_serve_report(args.trace, top=args.top))
        except (OSError, ValueError) as exc:
            print(f"repro report serve: error: {exc}", file=sys.stderr)
            return 2
        return 0

    return _run_report_bench(args)


def _run_report_bench(args) -> int:
    """Gate fresh BENCH_*.json files against committed baselines."""
    baseline_dir = Path(args.baselines)
    bench_dir = Path(args.bench_dir or os.environ.get("REPRO_BENCH_DIR", "."))
    if not baseline_dir.is_dir():
        print(
            f"repro report bench: error: no baseline directory {baseline_dir}",
            file=sys.stderr,
        )
        return 2

    if args.files:
        # Explicit fresh files; each pairs with the same-named baseline.
        pairs = [(baseline_dir / Path(f).name, Path(f)) for f in args.files]
    else:
        pairs = [
            (base, bench_dir / base.name)
            for base in sorted(baseline_dir.glob("BENCH_*.json"))
        ]
        if not pairs:
            print(
                f"repro report bench: error: no BENCH_*.json baselines "
                f"in {baseline_dir}",
                file=sys.stderr,
            )
            return 2

    failed = False
    for baseline_path, fresh_path in pairs:
        name = fresh_path.name
        if not baseline_path.exists():
            print(f"== Bench {name}: no baseline ({baseline_path}) — skipped ==")
            print()
            continue
        baseline = load_bench(baseline_path)
        if not fresh_path.exists():
            print(
                f"== Bench {name}: REGRESSION (fresh results missing: "
                f"{fresh_path}) =="
            )
            print()
            failed = True
            continue
        current = load_bench(fresh_path)
        notes = []
        base_scale = baseline.get("scale")
        cur_scale = current.get("scale")
        if base_scale != cur_scale:
            notes.append(
                f"scale mismatch: baseline={base_scale!r} current={cur_scale!r}"
                " — deltas are not comparable"
            )
        deltas = compare_bench(
            baseline,
            current,
            tolerance=args.tolerance,
            time_tolerance=args.time_tolerance,
            gate_spans=args.gate_spans,
            abs_floor_s=args.abs_floor_ms / 1000.0,
            gate_tails=args.gate_tails,
        )
        print(render_bench_diff(name, deltas, notes=notes))
        print()
        if any(delta.gates for delta in deltas):
            failed = True
    return 1 if failed else 0


# Requests per concurrency level when `repro serve --bench` is not
# given an explicit --requests budget.
_SERVE_BENCH_REQUESTS = {"smoke": 64, "default": 256, "full": 2048}


def _cmd_export(args, scale) -> int:
    """``repro export``: train a model and write its artifact bundle.

    The run id must exist *before* the artifact is saved so it can be
    embedded as provenance (hash-covered), which is what lets ``repro
    serve`` manifests point back at the producing run. The manifest is
    therefore built first — its id covers command/config/env/outputs,
    never the artifact hash — and recorded after the save with the
    final content hash attached.
    """
    clock = get_tracer().clock
    t0 = clock()
    try:
        if args.target == "search":
            artifact = export_search(
                args.dataset, scale, seed=args.seed,
                num_layers=args.layers, epsilon=args.epsilon,
            )
            default_out = f"artifact-search-{args.dataset}.json"
            config = {
                "target": "search", "dataset": args.dataset,
                "layers": args.layers, "epsilon": args.epsilon,
                "scale": args.scale,
            }
        elif args.target == "baseline":
            artifact = export_baseline(
                args.name, args.dataset, scale, seed=args.seed
            )
            default_out = f"artifact-baseline-{args.name}-{args.dataset}.json"
            config = {
                "target": "baseline", "name": args.name,
                "dataset": args.dataset, "scale": args.scale,
            }
        else:
            artifact = export_alignment(
                scale, seed=args.seed,
                node_aggregators=tuple(args.aggregators),
            )
            default_out = "artifact-kg.json"
            config = {
                "target": "kg", "aggregators": list(args.aggregators),
                "scale": args.scale,
            }
    except ArtifactError as exc:
        print(f"repro export: error: {exc}", file=sys.stderr)
        return 2
    manifest = build_manifest(
        "export",
        config,
        env=_ledger_env(args),
        outputs={
            "target": args.target,
            "task": artifact.task,
            "genotype": str(artifact.genotype)
            if artifact.genotype is not None else None,
        },
    )
    artifact.provenance = {
        "run_id": manifest.run_id,
        "command": "export",
        "config_digest": manifest.config_digest,
    }
    path = save_artifact(artifact, args.out or default_out)
    payload = artifact.to_payload()
    print(f"artifact:  {path}")
    print(f"task:      {artifact.task}")
    if artifact.genotype is not None:
        print(f"genotype:  {artifact.architecture() or artifact.genotype}")
    for key, value in sorted(artifact.training.items()):
        print(f"{key + ':':<11}{value:.4f}" if isinstance(value, float)
              else f"{key + ':':<11}{value}")
    print(f"weights:   {len(artifact.weights)} tensors")
    print(f"hash:      {payload['content_hash']}")
    manifest.metrics = {
        f"export.{key}": float(value)
        for key, value in artifact.training.items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }
    manifest.artifacts.append(
        {
            "role": "output",
            "path": str(path),
            "content_hash": payload["content_hash"],
        }
    )
    manifest.duration_s = clock() - t0
    record_run(manifest=manifest)
    return 0


def _cmd_serve(args, scale) -> int:
    """``repro serve``: load an artifact, run demo traffic or the bench."""
    clock = get_tracer().clock
    t0 = clock()
    try:
        artifact = load_artifact(args.artifact)
        engine = InferenceEngine.from_artifact(artifact)
    except (OSError, ArtifactError) as exc:
        print(f"repro serve: error: {exc}", file=sys.stderr)
        return 2
    print(f"artifact:  {args.artifact}")
    print(f"task:      {artifact.task}")
    if artifact.genotype is not None:
        print(f"genotype:  {artifact.architecture() or artifact.genotype}")

    deadline_s = args.deadline_ms / 1e3 if args.deadline_ms else None
    trace_sink = None
    if args.trace:
        trace_sink = JsonlSink(
            args.trace, meta={"label": f"serve:{Path(args.artifact).name}"}
        )
    exporter = None
    if args.export_port is not None:
        # The provider closure reads live registry state on every
        # scrape; exemplars appear once finalize() has run.
        exporter = MetricsExporter(
            lambda: (engine.metrics.registry.snapshot(),
                     engine.metrics.exemplars),
            port=args.export_port,
        ).start()
        print(f"exporter:  {exporter.url}")
    snapshotter = None
    if args.export_snapshots:
        snapshotter = MetricsSnapshotter(
            engine.metrics.registry,
            args.export_snapshots,
            interval_s=args.export_interval,
            clock=get_tracer().clock,
        ).start()

    try:
        code = _serve_work(args, engine, artifact, deadline_s, trace_sink)
    finally:
        if snapshotter is not None:
            snapshotter.stop()
            snapshotter.close()
            print(f"snapshots: {args.export_snapshots} "
                  f"({snapshotter.flushes} flushes)")
        if exporter is not None:
            if args.export_linger > 0:
                exporter.wait_for_scrape(args.export_linger)
            exporter.stop()
        if trace_sink is not None:
            # The final registry snapshot rides in the trace so
            # `report serve` can render the SLO section.
            trace_sink.write_metrics(engine.metrics.registry)
            trace_sink.close()
            print(f"trace:     {args.trace} "
                  f"(render with `repro report serve`)")

    # Lineage: the artifact's embedded provenance (written by `repro
    # export`) resolves this serve run back to the producing run id.
    lineage = {
        "artifact": str(args.artifact),
        "content_hash": artifact.to_payload()["content_hash"],
    }
    provenance = artifact.provenance or {}
    if provenance.get("run_id"):
        lineage["producer_run_id"] = provenance["run_id"]
        if provenance.get("command"):
            lineage["producer_command"] = provenance["command"]
    record_run(
        "serve",
        {
            "bench": bool(args.bench),
            "bench_name": args.bench_name if args.bench else None,
            "max_batch": args.max_batch,
            "scale": args.scale,
        },
        env=_ledger_env(args),
        registry=engine.metrics.registry,
        outputs={"exit_code": code, "task": artifact.task},
        lineage=lineage,
        files=[args.trace] if args.trace else None,
        duration_s=clock() - t0,
    )
    return code


def _serve_work(args, engine, artifact, deadline_s, trace_sink) -> int:
    """The bench sweep or the one-shot demo, under attached sinks."""
    extra_sinks = (trace_sink,) if trace_sink is not None else ()

    if args.bench:
        levels = tuple(args.levels) if args.levels else sweep_levels(args.scale)
        budget = args.requests or _SERVE_BENCH_REQUESTS[args.scale]
        sink = InMemorySink()
        # Same kernel byte counters as benchmarks/common.py::tracked_run,
        # so the CLI payload carries every metric family the committed
        # baseline has (a family missing from a fresh run gates).
        counters = kernels.KernelCounters(clock=get_tracer().clock)
        with get_tracer().collect(sink, *extra_sinks), \
                kernels.count_kernels(counters):
            with ServeServer(
                engine, max_batch=args.max_batch, workers=args.workers
            ) as server:
                results = run_load(
                    server, levels, requests_per_level=budget,
                    seed=args.seed, deadline_s=deadline_s,
                )
        registry = engine.metrics.registry
        for kernel, stats in counters.snapshot().items():
            registry.gauge(f"kernel.{kernel}.bytes_moved").set(
                stats["bytes_moved"]
            )
            if stats["effective_gbps"] is not None:
                registry.gauge(f"kernel.{kernel}.effective_gbps").set(
                    stats["effective_gbps"]
                )
        engine.metrics.finalize(wall_s=sum(r.wall_s for r in results))
        bench_path = emit_serve_bench(
            args.bench_name,
            results,
            spans=sink.spans,
            registry=engine.metrics.registry,
            extra={
                "levels": [dataclasses.asdict(r) for r in results],
                "plan_cache": engine.plan_cache.stats(),
                "max_batch": args.max_batch,
                "workers": args.workers,
                "exemplars": dict(engine.metrics.exemplars),
            },
        )
        print()
        print(render_load_report(results))
        print()
        print(f"bench:     {bench_path}")
        return 0

    with get_tracer().collect(*extra_sinks):
        with ServeServer(
            engine, max_batch=args.max_batch, workers=args.workers
        ) as server:
            rng = np.random.default_rng(args.seed)
            ids = np.sort(
                rng.choice(
                    engine.num_targets,
                    size=min(8, engine.num_targets),
                    replace=False,
                )
            )
            predictions = server.submit(node_ids=ids, deadline_s=deadline_s)
    summary = engine.metrics.finalize()
    print(f"targets:   {ids.tolist()}")
    if artifact.task == "kg_alignment":
        top1 = np.argmax(predictions, axis=1)
        print(f"aligned:   {top1.tolist()} (top-1 kg2 entity per target)")
    else:
        classes = np.argmax(predictions, axis=1)
        print(f"classes:   {classes.tolist()}")
    if "p50_s" in summary:
        print(
            f"latency:   p50 {summary['p50_s'] * 1e3:.2f} ms, "
            f"p99 {summary['p99_s'] * 1e3:.2f} ms "
            f"({summary['requests']} request(s))"
        )
    slo = summary.get("slo", {})
    if slo.get("deadline_exceeded"):
        print(f"deadline:  {int(slo['deadline_exceeded'])} request(s) "
              f"exceeded {args.deadline_ms:.1f} ms")
    return 0


def _cmd_profile(args, scale) -> int:
    """``repro profile``: wrap search/baseline in a ProfileSession."""
    trace_path = args.trace or f"trace-{args.target}-{args.dataset}.jsonl"
    data = load_dataset(args.dataset, seed=args.seed, scale=scale.dataset_scale)
    label = f"{args.target}:{args.dataset}"
    with ProfileSession(
        trace_path=trace_path,
        autograd=not args.no_autograd,
        label=label,
        events=args.events,
        memory=args.memory,
    ) as session:
        if args.target == "search":
            run = run_sane(
                data,
                scale,
                seed=args.seed,
                num_layers=args.layers,
                epsilon=args.epsilon,
            )
            headline = (
                f"architecture: {run.architecture}\n"
                f"search time:  {run.search_time:.1f}s\n"
                f"test score:   {format_mean_std(run.test_scores)}"
            )
            session.metrics.gauge("search_time_s").set(run.search_time)
            session.metrics.histogram("test_score").observe(
                float(sum(run.test_scores) / len(run.test_scores))
            )
        else:
            scores = run_human_baseline(args.name, data, scale, seed=args.seed)
            headline = f"{args.name} on {args.dataset}: {format_mean_std(scores)}"
            session.metrics.histogram("test_score").observe(
                float(sum(scores) / len(scores))
            )
    print(headline)
    print()
    print(session.report(top=args.top))
    print()
    print(f"trace: {trace_path} ({session.duration:.1f}s profiled)")
    config = {
        "target": args.target, "dataset": args.dataset,
        "layers": args.layers, "epsilon": args.epsilon, "scale": args.scale,
    }
    if args.target == "baseline":
        config["name"] = args.name
    record_run(
        "profile",
        config,
        env=_ledger_env(args),
        metrics=session.metric_scalars(),
        files=[str(trace_path)],
        duration_s=session.duration,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
