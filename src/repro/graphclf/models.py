"""Graph-level models: batching, the classifier, and its trainer.

Batching uses the standard disjoint-union trick: the graphs of a batch
are relabelled into one big graph and a ``graph_ids`` vector routes
each node to its graph, so message passing runs once over the union
and pooling is a segment reduction — the same primitives as node-level
SANE, no per-graph Python loop.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import obs
from repro.autograd import functional as F
from repro.autograd import no_grad
from repro.autograd.tensor import Tensor
from repro.gnn.aggregators import create_node_aggregator
from repro.gnn.common import GraphCache
from repro.graph.data import Graph
from repro.graphclf.data import GraphClassificationDataset
from repro.graphclf.pooling import create_pooling_op
from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module
from repro.nn.optim import Adam, clip_grad_norm

__all__ = ["GraphBatch", "collate", "GraphClassifier", "GraphClfConfig", "train_graph_classifier"]


@dataclasses.dataclass
class GraphBatch:
    """Disjoint union of a list of graphs."""

    cache: GraphCache
    features: np.ndarray
    graph_ids: np.ndarray
    labels: np.ndarray
    num_graphs: int


def collate(samples: list[tuple[Graph, int]]) -> GraphBatch:
    """Merge (graph, label) pairs into one disjoint-union batch."""
    if not samples:
        raise ValueError("cannot collate an empty batch")
    edge_blocks = []
    feature_blocks = []
    graph_ids = []
    labels = []
    offset = 0
    for graph_index, (graph, label) in enumerate(samples):
        edge_blocks.append(graph.edge_index + offset)
        feature_blocks.append(graph.features)
        graph_ids.append(np.full(graph.num_nodes, graph_index, dtype=np.int64))
        labels.append(label)
        offset += graph.num_nodes
    union = Graph(
        edge_index=np.concatenate(edge_blocks, axis=1),
        features=np.concatenate(feature_blocks, axis=0),
        name="batch",
    )
    return GraphBatch(
        cache=GraphCache(union),
        features=union.features,
        graph_ids=np.concatenate(graph_ids),
        labels=np.asarray(labels, dtype=np.int64),
        num_graphs=len(samples),
    )


class GraphClassifier(Module):
    """Node aggregator stack + searchable pooling readout + MLP head."""

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        num_classes: int,
        node_aggregators: list[str],
        pooling: str,
        rng: np.random.Generator,
        dropout: float = 0.3,
    ):
        super().__init__()
        if not node_aggregators:
            raise ValueError("need at least one GNN layer")
        dims_in = [in_dim] + [hidden_dim] * (len(node_aggregators) - 1)
        self.layers = [
            create_node_aggregator(name, d_in, hidden_dim, rng)
            for name, d_in in zip(node_aggregators, dims_in)
        ]
        self.pooling = create_pooling_op(pooling, hidden_dim, rng)
        self.dropout = Dropout(dropout, rng)
        self.head = Linear(hidden_dim, num_classes, rng)
        self.node_aggregator_names = list(node_aggregators)
        self.pooling_name = pooling

    def forward(self, batch: GraphBatch) -> Tensor:
        h = self.dropout(Tensor(batch.features))
        for layer in self.layers:
            h = F.relu(layer(h, batch.cache))
            h = self.dropout(h)
        pooled = self.pooling(h, batch.graph_ids, batch.num_graphs)
        return self.head(pooled)

    def describe(self) -> str:
        return f"[{', '.join(self.node_aggregator_names)}] pool={self.pooling_name}"


@dataclasses.dataclass
class GraphClfConfig:
    epochs: int = 150
    lr: float = 5e-3
    weight_decay: float = 5e-4
    patience: int = 30
    grad_clip: float = 5.0


@dataclasses.dataclass
class GraphClfResult:
    val_score: float
    test_score: float
    best_epoch: int
    train_time: float


def _accuracy(model: GraphClassifier, batch: GraphBatch) -> float:
    model.eval()
    with no_grad():
        logits = model(batch).numpy()
    return float((logits.argmax(axis=1) == batch.labels).mean())


def train_graph_classifier(
    model: GraphClassifier,
    dataset: GraphClassificationDataset,
    config: GraphClfConfig | None = None,
) -> GraphClfResult:
    """Full-batch training with validation early stopping."""
    config = config or GraphClfConfig()
    train_batch = collate(dataset.train)
    val_batch = collate(dataset.val)
    test_batch = collate(dataset.test)
    optimizer = Adam(model.parameters(), lr=config.lr, weight_decay=config.weight_decay)

    best = {"val": -1.0, "test": 0.0, "epoch": 0, "state": None}
    since_best = 0
    train_span = obs.span("train", kind="train", task="graphclf").start()
    for epoch in range(config.epochs):
        with obs.span("epoch", index=epoch):
            model.train()
            optimizer.zero_grad()
            with obs.span("forward"):
                loss = F.cross_entropy(model(train_batch), train_batch.labels)
            with obs.span("backward"):
                loss.backward()
            clip_grad_norm(model.parameters(), config.grad_clip)
            optimizer.step()

            with obs.span("eval"):
                val_score = _accuracy(model, val_batch)
            if val_score > best["val"]:
                best.update(
                    val=val_score,
                    test=_accuracy(model, test_batch),
                    epoch=epoch,
                    state=model.state_dict(),
                )
                since_best = 0
            else:
                since_best += 1
                if since_best >= config.patience:
                    break
    if best["state"] is not None:
        model.load_state_dict(best["state"])
    train_span.finish()
    return GraphClfResult(
        val_score=best["val"],
        test_score=best["test"],
        best_epoch=best["epoch"],
        train_time=train_span.duration,
    )
