"""Synthetic graph-classification benchmark (future-work extension).

The paper's conclusion names whole-graph classification — where
"different graph pooling methods can be searched" — as the follow-up
direction for SANE. This module provides the data substrate: a seeded
generator of small graphs whose *class is a structural property*, so a
model must aggregate topology (not just read node features) to
classify:

==========  ======================================================
class        recipe
==========  ======================================================
``ring``     one long cycle plus chords
``star``     few high-degree hubs with leaf fans
``blocks``   two dense communities with a thin bridge
``random``   Erdős–Rényi at matched density
==========  ======================================================

Node features are degree/clustering summaries plus Gaussian noise —
informative about local structure, deliberately not linearly separable
by class at the node level.
"""

from __future__ import annotations

import dataclasses

import networkx as nx
import numpy as np

from repro.graph.data import Graph
from repro.graph.utils import to_undirected

__all__ = ["GraphClassificationDataset", "generate_graph_dataset", "GRAPH_CLASSES"]

GRAPH_CLASSES = ("ring", "star", "blocks", "random")


@dataclasses.dataclass
class GraphClassificationDataset:
    """Lists of (graph, label) pairs per split."""

    train: list[tuple[Graph, int]]
    val: list[tuple[Graph, int]]
    test: list[tuple[Graph, int]]
    num_classes: int
    name: str = "graphclf"

    def __post_init__(self):
        if not self.train:
            raise ValueError("graph classification needs training graphs")

    @property
    def num_features(self) -> int:
        return self.train[0][0].num_features

    def __repr__(self) -> str:
        return (
            f"GraphClassificationDataset(name={self.name!r}, "
            f"graphs={len(self.train)}/{len(self.val)}/{len(self.test)}, "
            f"C={self.num_classes})"
        )


def _make_topology(label: str, num_nodes: int, rng: np.random.Generator) -> nx.Graph:
    if label == "ring":
        graph = nx.cycle_graph(num_nodes)
        for __ in range(max(1, num_nodes // 8)):
            u, v = rng.integers(0, num_nodes, size=2)
            if u != v:
                graph.add_edge(int(u), int(v))
        return graph
    if label == "star":
        graph = nx.Graph()
        graph.add_nodes_from(range(num_nodes))
        hubs = rng.choice(num_nodes, size=max(2, num_nodes // 10), replace=False)
        for node in range(num_nodes):
            hub = int(rng.choice(hubs))
            if node != hub:
                graph.add_edge(node, hub)
        return graph
    if label == "blocks":
        half = num_nodes // 2
        sizes = [half, num_nodes - half]
        probs = [[0.35, 0.02], [0.02, 0.35]]
        return nx.stochastic_block_model(sizes, probs, seed=int(rng.integers(2**31)))
    if label == "random":
        p = 2.2 / max(1, num_nodes - 1)
        return nx.fast_gnp_random_graph(num_nodes, p, seed=int(rng.integers(2**31)))
    raise ValueError(f"unknown graph class {label!r}")


def _structural_features(
    graph: nx.Graph, num_features: int, rng: np.random.Generator, noise: float
) -> np.ndarray:
    """Per-node structural summaries padded with noise channels."""
    num_nodes = graph.number_of_nodes()
    degrees = np.array([d for __, d in sorted(graph.degree())], dtype=np.float64)
    clustering = np.array(
        [nx.clustering(graph, n) for n in sorted(graph.nodes)], dtype=np.float64
    )
    base = np.stack(
        [
            degrees / max(1.0, degrees.max()),
            clustering,
            np.ones(num_nodes),
        ],
        axis=1,
    )
    features = np.zeros((num_nodes, num_features), dtype=np.float64)
    features[:, : base.shape[1]] = base
    features += noise * rng.normal(size=features.shape)
    return features


def generate_graph_dataset(
    seed: int = 0,
    graphs_per_class: int = 12,
    num_nodes: int = 24,
    num_features: int = 8,
    feature_noise: float = 0.3,
    train_fraction: float = 0.6,
    val_fraction: float = 0.2,
) -> GraphClassificationDataset:
    """Build the four-class structural benchmark (stratified splits)."""
    rng = np.random.default_rng(seed)
    samples: list[tuple[Graph, int]] = []
    for class_index, label in enumerate(GRAPH_CLASSES):
        for i in range(graphs_per_class):
            size = num_nodes + int(rng.integers(-4, 5))
            topology = _make_topology(label, size, rng)
            edges = np.array(list(topology.edges), dtype=np.int64)
            if len(edges) == 0:
                edges = np.array([[0, 1]], dtype=np.int64)
            edge_index = to_undirected(edges.T, size)
            features = _structural_features(topology, num_features, rng, feature_noise)
            samples.append(
                (
                    Graph(
                        edge_index=edge_index,
                        features=features,
                        name=f"{label}-{i}",
                    ),
                    class_index,
                )
            )

    # Stratified split: slice within each class, then shuffle the pools.
    train, val, test = [], [], []
    for class_index in range(len(GRAPH_CLASSES)):
        members = [s for s in samples if s[1] == class_index]
        members = [members[i] for i in rng.permutation(len(members))]
        n_train = max(1, int(round(train_fraction * len(members))))
        n_val = max(1, int(round(val_fraction * len(members))))
        train.extend(members[:n_train])
        val.extend(members[n_train : n_train + n_val])
        test.extend(members[n_train + n_val :])
    return GraphClassificationDataset(
        train=[train[i] for i in rng.permutation(len(train))],
        val=val,
        test=test,
        num_classes=len(GRAPH_CLASSES),
    )
