"""Graph pooling operations — the searchable readouts.

A pooling op maps per-node embeddings of a *batch* of graphs (disjoint
union, with a ``graph_ids`` vector assigning nodes to graphs) to one
vector per graph. These are the ``O_p`` counterpart of the paper's
future-work direction: "different graph pooling methods can be
searched for the whole graph representations".
"""

from __future__ import annotations

import numpy as np

from repro.autograd import ops
from repro.autograd.scatter import gather, segment_max, segment_mean, segment_softmax, segment_sum
from repro.autograd.tensor import Tensor
from repro.nn import init
from repro.nn.layers import Linear
from repro.nn.module import Module, Parameter

__all__ = ["PoolingOp", "POOLING_OPS", "create_pooling_op"]


class PoolingOp(Module):
    """Base: ``(node_embeddings, graph_ids, num_graphs) -> (G, d)``."""

    def __init__(self, dim: int):
        super().__init__()
        self.dim = dim

    def forward(self, h: Tensor, graph_ids: np.ndarray, num_graphs: int) -> Tensor:
        raise NotImplementedError


class MeanPooling(PoolingOp):
    def forward(self, h, graph_ids, num_graphs):
        return segment_mean(h, graph_ids, num_graphs)


class MaxPooling(PoolingOp):
    def forward(self, h, graph_ids, num_graphs):
        return segment_max(h, graph_ids, num_graphs)


class SumPooling(PoolingOp):
    def forward(self, h, graph_ids, num_graphs):
        return segment_sum(h, graph_ids, num_graphs)


class AttentionPooling(PoolingOp):
    """Gated attention readout: softmax(score) weighted sum per graph."""

    def __init__(self, dim: int, rng: np.random.Generator):
        super().__init__(dim)
        self.scorer = Linear(dim, 1, rng)
        self.transform = Linear(dim, dim, rng)

    def forward(self, h, graph_ids, num_graphs):
        scores = self.scorer(h).reshape(len(graph_ids))
        weights = segment_softmax(scores, graph_ids, num_graphs)
        values = ops.tanh(self.transform(h))
        weighted = values * weights.reshape(-1, 1)
        return segment_sum(weighted, graph_ids, num_graphs)


POOLING_OPS = {
    "mean": lambda dim, rng: MeanPooling(dim),
    "max": lambda dim, rng: MaxPooling(dim),
    "sum": lambda dim, rng: SumPooling(dim),
    "attention": AttentionPooling,
}


def create_pooling_op(name: str, dim: int, rng: np.random.Generator) -> PoolingOp:
    try:
        factory = POOLING_OPS[name]
    except KeyError:
        raise ValueError(
            f"unknown pooling op {name!r}; available: {sorted(POOLING_OPS)}"
        ) from None
    return factory(dim, rng)
