"""SANE extended to whole-graph classification (pooling search).

Implements the paper's future-work proposal: the supernet mixes not
only node aggregators per layer but also the *pooling readout*
(mean/max/sum/attention), and the same first-order bi-level update
searches both. Deriving takes the argmax per edge exactly as in
Algorithm 1.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import obs
from repro.autograd import functional as F
from repro.autograd import no_grad, ops
from repro.autograd.tensor import Tensor
from repro.core.search_space import NODE_OPS
from repro.gnn.aggregators import create_node_aggregator
from repro.graphclf.data import GraphClassificationDataset
from repro.graphclf.models import GraphBatch, GraphClassifier, collate
from repro.graphclf.pooling import POOLING_OPS, create_pooling_op
from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module, Parameter
from repro.nn.optim import Adam, clip_grad_norm
from repro.obs import health

__all__ = ["GraphSearchConfig", "GraphSearchResult", "GraphSupernet", "search_graph_classifier"]

POOLING_CHOICES = tuple(sorted(POOLING_OPS))


@dataclasses.dataclass
class GraphSearchConfig:
    """Hyper-parameters of the pooling-search supernet."""

    epochs: int = 60
    num_layers: int = 2
    hidden_dim: int = 24
    dropout: float = 0.2
    node_ops: tuple[str, ...] = ("gcn", "gat", "gin", "sage-mean", "sage-max")
    pooling_ops: tuple[str, ...] = POOLING_CHOICES
    w_lr: float = 5e-3
    w_weight_decay: float = 2e-4
    alpha_lr: float = 3e-3
    alpha_weight_decay: float = 1e-3
    grad_clip: float = 5.0


@dataclasses.dataclass
class GraphSearchResult:
    """Derived encoder ops + pooling choice and the search trace."""

    node_aggregators: tuple[str, ...]
    pooling: str
    search_time: float
    history: list[tuple[float, float]]


class GraphSupernet(Module):
    """Mixed node-op layers plus a mixed pooling readout."""

    def __init__(
        self,
        in_dim: int,
        num_classes: int,
        config: GraphSearchConfig,
        rng: np.random.Generator,
    ):
        super().__init__()
        self.config = config
        dim = config.hidden_dim
        self.input_proj = Linear(in_dim, dim, rng)
        self.dropout = Dropout(config.dropout, rng)
        self.node_candidates = [
            [create_node_aggregator(name, dim, dim, rng) for name in config.node_ops]
            for __ in range(config.num_layers)
        ]
        self.pool_candidates = [
            create_pooling_op(name, dim, rng) for name in config.pooling_ops
        ]
        self.head = Linear(dim, num_classes, rng)
        self.alpha_node = Parameter(
            1e-3 * rng.normal(size=(config.num_layers, len(config.node_ops)))
        )
        self.alpha_pool = Parameter(
            1e-3 * rng.normal(size=(1, len(config.pooling_ops)))
        )

    def arch_parameters(self) -> list[Parameter]:
        return [self.alpha_node, self.alpha_pool]

    def weight_parameters(self) -> list[Parameter]:
        arch = {id(self.alpha_node), id(self.alpha_pool)}
        return [p for p in self.parameters() if id(p) not in arch]

    def forward(self, batch: GraphBatch) -> Tensor:
        h = F.relu(self.input_proj(self.dropout(Tensor(batch.features))))
        for layer_index, candidates in enumerate(self.node_candidates):
            weights = F.softmax(ops.getitem(self.alpha_node, layer_index), axis=-1)
            mixed = None
            for op_index, candidate in enumerate(candidates):
                with health.op_scope(
                    edge=f"node/{layer_index}",
                    layer=layer_index,
                    op=self.config.node_ops[op_index],
                ):
                    term = candidate(h, batch.cache) * weights[op_index]
                mixed = term if mixed is None else mixed + term
            h = F.relu(mixed)
            h = self.dropout(h)

        weights = F.softmax(ops.getitem(self.alpha_pool, 0), axis=-1)
        pooled = None
        for op_index, pool in enumerate(self.pool_candidates):
            with health.op_scope(
                edge="pool/0", layer=None, op=self.config.pooling_ops[op_index]
            ):
                term = pool(h, batch.graph_ids, batch.num_graphs) * weights[op_index]
            pooled = term if pooled is None else pooled + term
        return self.head(pooled)

    def derive(self) -> tuple[tuple[str, ...], str]:
        node_choices = tuple(
            self.config.node_ops[int(i)] for i in self.alpha_node.data.argmax(axis=1)
        )
        pooling = self.config.pooling_ops[int(self.alpha_pool.data[0].argmax())]
        return node_choices, pooling


def search_graph_classifier(
    dataset: GraphClassificationDataset,
    config: GraphSearchConfig | None = None,
    seed: int = 0,
) -> GraphSearchResult:
    """Bi-level search over node aggregators + pooling readout."""
    config = config or GraphSearchConfig()
    rng = np.random.default_rng(seed)
    supernet = GraphSupernet(dataset.num_features, dataset.num_classes, config, rng)
    w_optimizer = Adam(
        supernet.weight_parameters(), lr=config.w_lr, weight_decay=config.w_weight_decay
    )
    alpha_optimizer = Adam(
        supernet.arch_parameters(),
        lr=config.alpha_lr,
        weight_decay=config.alpha_weight_decay,
    )
    train_batch = collate(dataset.train)
    val_batch = collate(dataset.val)

    history: list[tuple[float, float]] = []
    monitor = health.get_monitor()
    search_span = obs.span("search", kind="search", algo="sane", task="graphclf").start()
    for epoch in range(config.epochs):
        with obs.span("epoch", index=epoch):
            arch_before = (
                [p.data.copy() for p in supernet.arch_parameters()]
                if monitor is not None
                else None
            )
            weight_before = (
                [p.data.copy() for p in supernet.weight_parameters()]
                if monitor is not None
                else None
            )
            supernet.train()
            supernet.zero_grad()
            with obs.span("alpha_step"):
                F.cross_entropy(supernet(val_batch), val_batch.labels).backward()
                clip_grad_norm(supernet.arch_parameters(), config.grad_clip)
                alpha_optimizer.step()

            supernet.zero_grad()
            with obs.span("weight_step"):
                F.cross_entropy(supernet(train_batch), train_batch.labels).backward()
                clip_grad_norm(supernet.weight_parameters(), config.grad_clip)
                w_optimizer.step()

            supernet.eval()
            with obs.span("validation"), no_grad():
                logits = supernet(val_batch).numpy()
            score = float((logits.argmax(axis=1) == val_batch.labels).mean())
            history.append((search_span.elapsed(), score))
            if monitor is not None:
                monitor.observe_epoch(
                    epoch,
                    arch_params=supernet.arch_parameters(),
                    weight_params=supernet.weight_parameters(),
                    arch_before=arch_before,
                    weight_before=weight_before,
                    mixtures={
                        "node": supernet.alpha_node.data,
                        "pool": supernet.alpha_pool.data,
                    },
                    op_names={
                        "node": config.node_ops,
                        "pool": config.pooling_ops,
                    },
                )

    search_span.finish()
    node_choices, pooling = supernet.derive()
    return GraphSearchResult(
        node_aggregators=node_choices,
        pooling=pooling,
        search_time=search_span.duration,
        history=history,
    )
