"""Whole-graph classification with searchable pooling (paper future work)."""

from repro.graphclf.data import (
    GRAPH_CLASSES,
    GraphClassificationDataset,
    generate_graph_dataset,
)
from repro.graphclf.pooling import POOLING_OPS, PoolingOp, create_pooling_op
from repro.graphclf.models import (
    GraphBatch,
    GraphClassifier,
    GraphClfConfig,
    collate,
    train_graph_classifier,
)
from repro.graphclf.search import (
    GraphSearchConfig,
    GraphSearchResult,
    GraphSupernet,
    search_graph_classifier,
)

__all__ = [
    "GRAPH_CLASSES",
    "GraphClassificationDataset",
    "generate_graph_dataset",
    "POOLING_OPS",
    "PoolingOp",
    "create_pooling_op",
    "GraphBatch",
    "GraphClassifier",
    "GraphClfConfig",
    "collate",
    "train_graph_classifier",
    "GraphSearchConfig",
    "GraphSearchResult",
    "GraphSupernet",
    "search_graph_classifier",
]
