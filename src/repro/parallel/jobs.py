"""Job descriptions and the single job-execution code path.

A :class:`SearchJob` names a unit of independent work — one SANE
search seed, one candidate training, one bench-table cell — as an
importable function plus picklable keyword arguments. The *same*
:func:`execute_job` runs the job whether the pool is in-process
(``workers <= 1``) or fanned out over spawn workers, so there is
exactly one seed-iteration code path (DESIGN.md section 12).

Seed derivation
---------------
:func:`derive_seed` maps ``(base_seed, job_id)`` through a
``numpy.random.SeedSequence`` so every job owns an independent,
platform-stable stream. Because the derived seed depends only on the
pair — never on scheduling, worker count, or completion order — the
merged output of a parallel run is bit-identical to the sequential
run.
"""

from __future__ import annotations

import dataclasses
import importlib

import numpy as np

__all__ = [
    "SearchJob",
    "derive_seed",
    "derive_rng",
    "execute_job",
    "resolve_job_fn",
    "ParallelError",
    "JobDispatchError",
    "JobError",
    "JobTimeoutError",
    "WorkerCrashError",
]


def derive_seed(base_seed: int, job_id: int) -> int:
    """Deterministic per-job seed from ``(base_seed, job_id)``.

    Spawned from a :class:`numpy.random.SeedSequence` so nearby pairs
    (``job_id`` 0, 1, 2, ...) still yield statistically independent
    streams — ``base_seed + job_id`` would alias job 1 of seed 0 with
    job 0 of seed 1.
    """
    sequence = np.random.SeedSequence([int(base_seed), int(job_id)])
    return int(sequence.generate_state(1)[0])


def derive_rng(base_seed: int, job_id: int) -> np.random.Generator:
    """A generator seeded with :func:`derive_seed`."""
    return np.random.default_rng(derive_seed(base_seed, job_id))


class ParallelError(RuntimeError):
    """Base class for orchestrator failures."""


class JobDispatchError(ParallelError):
    """A job could not be shipped to workers (unpicklable payload).

    Raised synchronously from :meth:`WorkerPool.run` before anything
    is enqueued — a poisoned task never reaches the queue, so it can
    never wedge a worker.
    """


class JobError(ParallelError):
    """A job raised inside a worker process.

    Carries the remote traceback text: the original exception object
    may not survive pickling, the formatted traceback always does.
    """

    def __init__(self, job_id: int, tag: str, error_type: str,
                 message: str, remote_traceback: str = ""):
        super().__init__(
            f"job {job_id} ({tag or 'untagged'}) failed in worker: "
            f"{error_type}: {message}"
        )
        self.job_id = job_id
        self.tag = tag
        self.error_type = error_type
        self.remote_traceback = remote_traceback


class WorkerCrashError(ParallelError):
    """A worker process died (non-zero exit, signal) while running a job."""

    def __init__(self, job_id: int, tag: str, exitcode: int | None):
        super().__init__(
            f"worker crashed (exitcode={exitcode}) while running "
            f"job {job_id} ({tag or 'untagged'}); retry budget exhausted"
        )
        self.job_id = job_id
        self.tag = tag
        self.exitcode = exitcode


class JobTimeoutError(ParallelError):
    """A job exceeded its timeout; its worker was killed."""

    def __init__(self, job_id: int, tag: str, timeout_s: float):
        super().__init__(
            f"job {job_id} ({tag or 'untagged'}) exceeded its "
            f"{timeout_s:.1f}s timeout; retry budget exhausted"
        )
        self.job_id = job_id
        self.tag = tag
        self.timeout_s = timeout_s


@dataclasses.dataclass(frozen=True)
class SearchJob:
    """One independent unit of search work.

    ``fn`` is an importable ``"module:function"`` path rather than a
    callable: spawn workers re-import it, which forces every job body
    to be a module-level function — the property that makes the
    sequential and parallel paths literally the same code.
    """

    job_id: int
    fn: str
    kwargs: dict = dataclasses.field(default_factory=dict)
    tag: str = ""
    timeout_s: float | None = None


def resolve_job_fn(path: str):
    """Import ``"module:function"`` and return the callable."""
    module_name, _, fn_name = path.partition(":")
    if not module_name or not fn_name:
        raise ValueError(
            f"job fn {path!r} is not of the form 'module:function'"
        )
    module = importlib.import_module(module_name)
    fn = getattr(module, fn_name, None)
    if fn is None or not callable(fn):
        raise ValueError(f"job fn {path!r} does not name a callable")
    return fn


def execute_job(job: SearchJob):
    """Run one job body — the code path shared by all execution modes."""
    return resolve_job_fn(job.fn)(**job.kwargs)
