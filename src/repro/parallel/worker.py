"""Worker-process entry point for the :class:`WorkerPool`.

Each worker is a spawn-started process looping over the shared task
queue. The protocol (DESIGN.md section 12) is three message kinds on
the result queue:

* ``("start", job_id, attempt, worker_id)`` — sent *before* the job
  body runs, so the parent can attribute an in-flight job to this
  worker for crash and timeout accounting;
* ``("ok", job_id, attempt, worker_id, result_bytes, span_records)``
  — the job finished; the result is pre-pickled *in the worker* so an
  unpicklable return value surfaces as a typed error instead of
  wedging the queue's feeder thread, and the job's spans ride along
  as plain dicts for :meth:`Tracer.adopt`;
* ``("error", job_id, attempt, worker_id, error_type, message,
  traceback)`` — the job raised; the formatted traceback travels
  because the exception object itself may not pickle.

A ``None`` task is the shutdown sentinel. The kernel backend is
passed explicitly: ``REPRO_KERNELS`` is read at import time in the
parent, and a ``--kernels`` CLI override never reaches the child's
environment.
"""

from __future__ import annotations

import pickle
import traceback

from repro.autograd import kernels
from repro.obs import InMemorySink, get_tracer
from repro.parallel.jobs import execute_job

__all__ = ["worker_main"]


def worker_main(worker_id: int, task_queue, result_queue, backend: str) -> None:
    """Loop: pull a task, run it, ship the result; exit on sentinel."""
    kernels.set_backend(backend)
    tracer = get_tracer()
    while True:
        item = task_queue.get()
        if item is None:
            break
        job_id, attempt, payload = item
        result_queue.put(("start", job_id, attempt, worker_id))
        sink = InMemorySink()
        try:
            job = pickle.loads(payload)
            with tracer.collect(sink):
                with tracer.span("job", kind="job", job=job_id, tag=job.tag):
                    result = execute_job(job)
            blob = pickle.dumps(result)
        except Exception as exc:
            result_queue.put((
                "error", job_id, attempt, worker_id,
                type(exc).__name__, str(exc), traceback.format_exc(),
            ))
            continue
        records = [span.to_dict() for span in sink.spans]
        result_queue.put(("ok", job_id, attempt, worker_id, blob, records))
