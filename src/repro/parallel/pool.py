"""Seeded multi-process worker pool with deterministic merge.

:class:`WorkerPool` executes :class:`SearchJob` batches. At
``workers <= 1`` it runs jobs in-process, in job-id order, through
the same :func:`execute_job` path the workers use — no separate
sequential loop exists anywhere. At ``workers >= 2`` it spawn-starts
persistent worker processes sharing one task queue and one result
queue, and merges results **by job id**, so the returned list is
bit-identical to the in-process run regardless of worker count or
completion order.

Robustness contract (exercised by ``tests/parallel/``):

* an unpicklable task raises :class:`JobDispatchError` before
  anything is enqueued;
* a worker that dies mid-job is detected (liveness poll), its job is
  retried at most ``max_retries`` times on a replacement worker, then
  :class:`WorkerCrashError` surfaces;
* a job exceeding its timeout gets its worker killed and the same
  bounded retry, then :class:`JobTimeoutError`;
* a job that raises is retried the same way, then :class:`JobError`
  carries the remote traceback. In-process mode re-raises the
  original exception unwrapped (callers like the CLI's
  ``--check-numerics raise`` depend on catching the real type).

On any fatal error the pool shuts its workers down before raising —
a failed run never leaves orphan processes or a wedged queue. The
pool is reusable afterwards (workers respawn lazily).

Telemetry lands in the pool's :class:`MetricsRegistry` (pass the
bench registry to fold it into a ``BENCH_*.json`` payload):
``parallel.jobs`` / ``parallel.retries`` / ``parallel.crashes`` /
``parallel.timeouts`` counters, ``parallel.workers`` /
``parallel.queue_depth`` / ``parallel.utilization`` /
``parallel.straggler_s`` gauges, plus per-worker utilization:
``parallel.worker.<i>.busy_frac`` gauges and
``parallel.worker.<i>.tasks`` counters, mirrored into a
``pool_utilization`` telemetry event per batch (rendered by ``repro
report run``). Per-job span trees recorded in the workers are
replayed under ``worker-<i>`` roots via :meth:`Tracer.adopt`.
"""

from __future__ import annotations

import pickle
import queue as queue_module

from repro.autograd import kernels
from repro.obs import MetricsRegistry, get_tracer
from repro.obs import events
from repro.parallel.jobs import (
    JobDispatchError,
    JobError,
    JobTimeoutError,
    SearchJob,
    WorkerCrashError,
    execute_job,
)

__all__ = ["WorkerPool"]

# Idle polls (result queue empty, every worker idle, task queue empty)
# tolerated before concluding a task was lost to a worker that died
# between dequeue and its "start" message — a narrow race, but leaving
# it unhandled would hang the pool forever.
_ORPHAN_SWEEP_POLLS = 40


class WorkerPool:
    """Executes :class:`SearchJob` batches; see the module docstring."""

    def __init__(
        self,
        workers: int = 0,
        max_retries: int = 1,
        timeout_s: float | None = None,
        metrics: MetricsRegistry | None = None,
        poll_s: float = 0.1,
        backend: str | None = None,
    ):
        self.workers = int(workers)
        self.max_retries = int(max_retries)
        self.timeout_s = timeout_s
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.poll_s = poll_s
        self._backend = backend
        self._ctx = None
        self._task_queue = None
        self._result_queue = None
        self._procs: dict[int, object] = {}  # worker_id -> Process
        self._next_worker_id = 0

    # ------------------------------------------------------------------
    def run(self, jobs) -> list:
        """Execute ``jobs``; return results aligned with the input order.

        Results are merged by job id, so the output is a pure function
        of the job list — never of scheduling.
        """
        jobs = list(jobs)
        ids = [job.job_id for job in jobs]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate job ids in batch: {sorted(ids)}")
        self.metrics.gauge("parallel.workers").set(max(1, self.workers))
        if not jobs:
            return []
        if self.workers <= 1:
            return self._run_inline(jobs)
        return self._run_parallel(jobs)

    # ------------------------------------------------------------------
    def _run_inline(self, jobs: list[SearchJob]) -> list:
        """In-process fallback: same job bodies, job-id order."""
        depth = self.metrics.gauge("parallel.queue_depth")
        done = self.metrics.counter("parallel.jobs")
        results = {}
        ordered = sorted(jobs, key=lambda job: job.job_id)
        for position, job in enumerate(ordered):
            depth.set(len(ordered) - position)
            results[job.job_id] = execute_job(job)
            done.inc()
        depth.set(0)
        self.metrics.gauge("parallel.utilization").set(1.0)
        self.metrics.gauge("parallel.straggler_s").set(0.0)
        # Pseudo-worker 0: the in-process path is one always-busy lane,
        # so the per-worker view stays uniform across worker counts.
        self._publish_worker_stats(
            {0: 1.0}, {0: len(ordered)}, utilization=1.0
        )
        return [results[job.job_id] for job in jobs]

    # ------------------------------------------------------------------
    def _run_parallel(self, jobs: list[SearchJob]) -> list:
        clock = get_tracer().clock
        by_id = {job.job_id: job for job in jobs}
        payloads = {}
        for job in jobs:
            try:
                payloads[job.job_id] = pickle.dumps(job)
            except Exception as exc:
                raise JobDispatchError(
                    f"job {job.job_id} ({job.tag or 'untagged'}) is not "
                    f"picklable and cannot be dispatched: {exc}"
                ) from exc

        self._ensure_workers()
        pending = set(by_id)
        failures = {job_id: 0 for job_id in by_id}
        inflight: dict[int, tuple[int, int, float]] = {}  # wid -> (jid, attempt, t0)
        results: dict[int, object] = {}
        finish_times: list[float] = []
        busy_s = 0.0
        worker_busy: dict[int, float] = {}
        worker_tasks: dict[int, int] = {}
        idle_polls = 0
        t_run = clock()

        depth = self.metrics.gauge("parallel.queue_depth")
        for job_id in sorted(pending):
            self._task_queue.put((job_id, 0, payloads[job_id]))
        depth.set(len(pending))

        def fail(error):
            self.shutdown()
            raise error

        def retry(job_id: int) -> bool:
            failures[job_id] += 1
            if failures[job_id] > self.max_retries:
                return False
            self.metrics.counter("parallel.retries").inc()
            self._task_queue.put(
                (job_id, failures[job_id], payloads[job_id])
            )
            return True

        while pending:
            try:
                message = self._result_queue.get(timeout=self.poll_s)
            except queue_module.Empty:
                message = None

            if message is not None:
                idle_polls = 0
                kind, job_id = message[0], message[1]
                if kind == "start":
                    __, __, attempt, worker_id = message
                    if job_id in pending:
                        inflight[worker_id] = (job_id, attempt, clock())
                elif kind == "ok":
                    __, __, attempt, worker_id, blob, records = message
                    inflight.pop(worker_id, None)
                    if job_id in pending:
                        results[job_id] = pickle.loads(blob)
                        pending.discard(job_id)
                        finish_times.append(clock())
                        self.metrics.counter("parallel.jobs").inc()
                        job_busy = self._adopt_spans(
                            worker_id, by_id[job_id], records
                        )
                        busy_s += job_busy
                        worker_busy[worker_id] = (
                            worker_busy.get(worker_id, 0.0) + job_busy
                        )
                        worker_tasks[worker_id] = (
                            worker_tasks.get(worker_id, 0) + 1
                        )
                elif kind == "error":
                    __, __, attempt, worker_id, etype, msg, tb = message
                    inflight.pop(worker_id, None)
                    if job_id in pending and not retry(job_id):
                        fail(JobError(job_id, by_id[job_id].tag, etype, msg, tb))
                depth.set(len(pending) - len(inflight))
            else:
                idle_polls += 1

            # Liveness: a dead worker's in-flight job is crashed work.
            for worker_id, proc in list(self._procs.items()):
                if proc.is_alive():
                    continue
                proc.join(timeout=1.0)  # reap, so exitcode is populated
                exitcode = proc.exitcode
                del self._procs[worker_id]
                job = inflight.pop(worker_id, None)
                if job is not None:
                    job_id = job[0]
                    if job_id in pending:
                        self.metrics.counter("parallel.crashes").inc()
                        if not retry(job_id):
                            fail(WorkerCrashError(
                                job_id, by_id[job_id].tag, exitcode
                            ))
                self._ensure_workers()

            # Timeouts: kill the worker, retry the job bounded times.
            now = clock()
            for worker_id, (job_id, attempt, t0) in list(inflight.items()):
                limit = by_id[job_id].timeout_s or self.timeout_s
                if limit is None or now - t0 <= limit:
                    continue
                inflight.pop(worker_id, None)
                self._kill_worker(worker_id)
                self.metrics.counter("parallel.timeouts").inc()
                if job_id in pending and not retry(job_id):
                    fail(JobTimeoutError(job_id, by_id[job_id].tag, limit))
                self._ensure_workers()

            # Orphan sweep: every worker idle and alive, nothing queued,
            # yet jobs are pending — their tasks died with a worker
            # before its "start" message. Re-enqueue, charging a retry.
            if (
                idle_polls >= _ORPHAN_SWEEP_POLLS
                and not inflight
                and pending
                and self._task_queue.empty()
            ):
                idle_polls = 0
                for job_id in sorted(pending):
                    self.metrics.counter("parallel.crashes").inc()
                    if not retry(job_id):
                        fail(WorkerCrashError(job_id, by_id[job_id].tag, None))

        wall = max(clock() - t_run, 1e-9)
        utilization = min(1.0, busy_s / (self.workers * wall))
        self.metrics.gauge("parallel.utilization").set(utilization)
        straggler = 0.0
        if len(finish_times) >= 2:
            tail = sorted(finish_times)[-2:]
            straggler = tail[1] - tail[0]
        self.metrics.gauge("parallel.straggler_s").set(straggler)
        depth.set(0)
        self._publish_worker_stats(
            {
                wid: min(1.0, worker_busy.get(wid, 0.0) / wall)
                for wid in set(worker_busy) | set(worker_tasks)
            },
            worker_tasks,
            utilization=utilization,
        )
        return [results[job.job_id] for job in jobs]

    # ------------------------------------------------------------------
    def _publish_worker_stats(
        self,
        busy_frac: dict[int, float],
        tasks: dict[int, int],
        utilization: float,
    ) -> None:
        """Per-worker gauges + the ``pool_utilization`` event.

        ``parallel.worker.<i>.busy_frac`` is last-batch (gauge);
        ``parallel.worker.<i>.tasks`` accumulates across batches
        (counter) — sweep manifests fold both in, and ``repro report
        run`` renders the per-worker table when the event stream was
        recorded. Emitted values in the in-process path are constants,
        so byte-identical seeded dashboards stay byte-identical.
        """
        per_worker = {}
        for wid in sorted(set(busy_frac) | set(tasks)):
            frac = float(busy_frac.get(wid, 0.0))
            count = int(tasks.get(wid, 0))
            self.metrics.gauge(f"parallel.worker.{wid}.busy_frac").set(frac)
            self.metrics.counter(f"parallel.worker.{wid}.tasks").inc(count)
            per_worker[str(wid)] = {"busy_frac": frac, "tasks": count}
        events.emit(
            "pool_utilization",
            workers=max(1, self.workers),
            utilization=float(utilization),
            per_worker=per_worker,
        )

    # ------------------------------------------------------------------
    def _adopt_spans(self, worker_id: int, job: SearchJob, records) -> float:
        """Replay a job's worker spans; return the job's busy seconds."""
        busy = 0.0
        for record in records:
            if record.get("name") == "job" and record.get("dur"):
                busy = float(record["dur"])
        tracer = get_tracer()
        if tracer.has_sinks:
            tracer.adopt(
                records, f"worker-{worker_id}", job=job.job_id, tag=job.tag
            )
        return busy

    # ------------------------------------------------------------------
    def _ensure_workers(self) -> None:
        """Spawn workers lazily up to the configured count."""
        import multiprocessing

        if self._ctx is None:
            self._ctx = multiprocessing.get_context("spawn")
            self._task_queue = self._ctx.Queue()
            self._result_queue = self._ctx.Queue()
        backend = self._backend or kernels.get_backend()
        from repro.parallel.worker import worker_main

        while len(self._procs) < self.workers:
            worker_id = self._next_worker_id
            self._next_worker_id += 1
            proc = self._ctx.Process(
                target=worker_main,
                args=(worker_id, self._task_queue, self._result_queue, backend),
                daemon=True,
                name=f"repro-worker-{worker_id}",
            )
            proc.start()
            self._procs[worker_id] = proc

    def _kill_worker(self, worker_id: int) -> None:
        proc = self._procs.pop(worker_id, None)
        if proc is None:
            return
        proc.terminate()
        proc.join(timeout=5.0)
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=5.0)

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Stop workers and drop the queues; the pool stays reusable."""
        if self._ctx is None:
            return
        for __ in self._procs:
            try:
                self._task_queue.put(None)
            except (OSError, ValueError):
                break
        for worker_id, proc in list(self._procs.items()):
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        self._procs.clear()
        for q in (self._task_queue, self._result_queue):
            if q is not None:
                q.cancel_join_thread()
                q.close()
        self._ctx = None
        self._task_queue = None
        self._result_queue = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.shutdown()
        return False
