"""Job bodies for exercising the pool's failure modes.

Fault-injection tests need job functions that crash the worker
process, sleep past a timeout, or fail exactly once — and spawn
workers can only run module-level importable functions, so they live
here rather than inline in the tests.

The ``flaky_*`` variants coordinate across worker processes through a
marker file (each attempt may land on a different process, so no
in-memory flag can express "fail the first attempt only").
"""

from __future__ import annotations

import os
import time

from repro import obs

__all__ = [
    "echo_job",
    "crash_job",
    "flaky_crash_job",
    "raise_job",
    "flaky_raise_job",
    "sleep_job",
    "spanned_job",
]


def echo_job(value):
    """Return ``value`` unchanged (smoke-tests the round trip)."""
    return value


def crash_job(exitcode: int = 3):
    """Kill the worker process abruptly — no exception, no cleanup."""
    os._exit(exitcode)


def flaky_crash_job(marker_path: str, value):
    """Crash the worker on the first attempt, succeed on the retry."""
    if not os.path.exists(marker_path):
        with open(marker_path, "w", encoding="utf-8") as fh:
            fh.write("attempted\n")
        os._exit(3)
    return value


def raise_job(message: str = "injected failure"):
    """Raise inside the job body (exercises the JobError path)."""
    raise ValueError(message)


def flaky_raise_job(marker_path: str, value):
    """Raise on the first attempt, succeed on the retry."""
    if not os.path.exists(marker_path):
        with open(marker_path, "w", encoding="utf-8") as fh:
            fh.write("attempted\n")
        raise ValueError("injected first-attempt failure")
    return value


def sleep_job(seconds: float, value=None):
    """Block past a timeout (the parent kills the worker)."""
    time.sleep(seconds)
    return value


def spanned_job(value):
    """Open a nested span tree so tests can assert worker-span replay."""
    with obs.span("outer", kind="test"):
        with obs.span("inner", kind="test"):
            pass
    return value
