"""Multi-dataset, multi-method search sweeps on one shared pool.

``repro sweep`` (and the parallel-search benchmark) run a grid of
(dataset, method) cells — SANE plus the trial-and-error baselines —
against a single :class:`repro.parallel.WorkerPool`. Cells execute in
a fixed order in the parent; each cell's internal stages (SANE search
seeds, candidate probes, retrain repeats, NAS candidate batches) fan
out as job waves over the shared workers.

Determinism is checked end to end through
:meth:`SweepResult.digest`: a SHA-256 over every seed-derived output
(scores, selected architectures) and none of the timings. The digest
at ``--workers 4`` must equal the digest at ``--workers 0`` — the
bit-identical-merge contract of DESIGN.md section 12, in one string.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json

from repro.experiments.config import Scale
from repro.experiments.runners import NAS_METHODS, run_nas_method, run_sane
from repro.graph.datasets import load_dataset
from repro.obs import MetricsRegistry, get_tracer
from repro.parallel.pool import WorkerPool

__all__ = ["SweepCell", "SweepResult", "run_sweep", "SWEEP_METHODS"]

SWEEP_METHODS = ("sane",) + NAS_METHODS


@dataclasses.dataclass
class SweepCell:
    """One (dataset, method) grid entry."""

    dataset: str
    method: str
    test_scores: list[float]
    val_score: float  # best validation score backing the selection
    best: str  # selected architecture / spec, stringified
    search_time: float  # seconds (excluded from the digest)


@dataclasses.dataclass
class SweepResult:
    """A finished sweep: the grid plus its reproducibility digest."""

    scale: str
    seed: int
    workers: int
    rollout_batch: int
    cells: list[SweepCell]
    wall_s: float

    def digest(self) -> str:
        """SHA-256 over seed-derived outputs only.

        Timings and worker count are excluded: two runs of the same
        (datasets, methods, scale, seed, rollout_batch) must agree
        regardless of parallelism, and this string is the test.
        """
        payload = {
            "scale": self.scale,
            "seed": self.seed,
            "rollout_batch": self.rollout_batch,
            "cells": [
                {
                    "dataset": cell.dataset,
                    "method": cell.method,
                    "test_scores": cell.test_scores,
                    "val_score": cell.val_score,
                    "best": cell.best,
                }
                for cell in self.cells
            ],
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def render(self) -> str:
        """Plain-text table for the CLI."""
        lines = [
            f"sweep @ {self.scale} seed={self.seed} workers={self.workers} "
            f"wall={self.wall_s:.1f}s",
            f"{'dataset':<12} {'method':<12} {'test':>8} {'val':>8} "
            f"{'search_s':>9}  best",
        ]
        for cell in self.cells:
            mean = sum(cell.test_scores) / max(1, len(cell.test_scores))
            lines.append(
                f"{cell.dataset:<12} {cell.method:<12} {mean:>8.4f} "
                f"{cell.val_score:>8.4f} {cell.search_time:>9.2f}  {cell.best}"
            )
        lines.append(f"digest: {self.digest()}")
        return "\n".join(lines)


def run_sweep(
    datasets,
    scale: Scale,
    seed: int = 0,
    methods=("sane", "random", "graphnas"),
    workers: int = 0,
    rollout_batch: int = 1,
    metrics: MetricsRegistry | None = None,
    pool: WorkerPool | None = None,
) -> SweepResult:
    """Run the (dataset, method) grid; see the module docstring.

    Pass ``metrics`` (e.g. a benchmark's registry) to fold the pool's
    ``parallel.*`` counters and gauges into an existing payload, or
    ``pool`` to reuse already-spawned workers across sweeps.
    """
    for method in methods:
        if method not in SWEEP_METHODS:
            raise ValueError(
                f"unknown sweep method {method!r}; choose from {SWEEP_METHODS}"
            )
    clock = get_tracer().clock
    own_pool = pool is None
    pool = pool if pool is not None else WorkerPool(workers=workers, metrics=metrics)
    workers = pool.workers
    cells: list[SweepCell] = []
    t0 = clock()
    try:
        for name in datasets:
            data = load_dataset(name, scale=scale.dataset_scale)
            for method in methods:
                if method == "sane":
                    run = run_sane(data, scale, seed=seed, pool=pool)
                    cells.append(
                        SweepCell(
                            dataset=name,
                            method=method,
                            test_scores=[float(s) for s in run.test_scores],
                            val_score=float(max(run.val_scores)),
                            best=str(run.architecture),
                            search_time=float(run.search_time),
                        )
                    )
                else:
                    nas = run_nas_method(
                        method,
                        data,
                        scale,
                        seed=seed,
                        rollout_batch=rollout_batch,
                        pool=pool,
                    )
                    cells.append(
                        SweepCell(
                            dataset=name,
                            method=method,
                            test_scores=[float(s) for s in nas.test_scores],
                            val_score=float(nas.outcome.best.val_score),
                            best=str(nas.best_decoded),
                            search_time=float(nas.outcome.search_time),
                        )
                    )
    finally:
        if own_pool:
            pool.shutdown()
    return SweepResult(
        scale=scale.name,
        seed=seed,
        workers=workers,
        rollout_batch=rollout_batch,
        cells=cells,
        wall_s=clock() - t0,
    )
