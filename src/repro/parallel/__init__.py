"""Multi-process search orchestration (DESIGN.md section 12).

The one place in ``src/repro`` allowed to touch ``multiprocessing``
(the ``raw-multiprocessing`` lint rule enforces it). Everything
embarrassingly parallel in the repo — SANE search seeds, NAS
candidate trainings, bench-table cells — is expressed as a
:class:`SearchJob` and executed by a :class:`WorkerPool`, which
merges results deterministically by job id.

:mod:`repro.parallel.sweep` (imported explicitly, not re-exported
here, to keep this package importable from the experiment runners
without a cycle) builds multi-seed/multi-dataset sweeps on top.
"""

from repro.parallel.jobs import (
    JobDispatchError,
    JobError,
    JobTimeoutError,
    ParallelError,
    SearchJob,
    WorkerCrashError,
    derive_rng,
    derive_seed,
    execute_job,
    resolve_job_fn,
)
from repro.parallel.pool import WorkerPool

__all__ = [
    "SearchJob",
    "WorkerPool",
    "derive_seed",
    "derive_rng",
    "execute_job",
    "resolve_job_fn",
    "ParallelError",
    "JobDispatchError",
    "JobError",
    "JobTimeoutError",
    "WorkerCrashError",
]
