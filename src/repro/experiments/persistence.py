"""Persisting experiment results to JSON.

Benchmarks print their tables, but a reproduction is more auditable
when raw score lists survive the run. :func:`save_table` /
:func:`load_table` round-trip :class:`ExperimentTable` objects, and
:func:`save_record` appends arbitrary tagged result dicts to a JSON
lines file (one experiment per line, with the scale preset and seed
recorded alongside).
"""

from __future__ import annotations

import json
import os

from repro.experiments.results import ExperimentTable

__all__ = ["save_table", "load_table", "save_record", "load_records"]


def save_table(table: ExperimentTable, path: str | os.PathLike) -> None:
    """Write an :class:`ExperimentTable` (with raw scores) to JSON."""
    payload = {
        "title": table.title,
        "headers": table.headers,
        "cells": table.cells,
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)


def load_table(path: str | os.PathLike) -> ExperimentTable:
    """Read a table written by :func:`save_table`."""
    with open(path) as handle:
        payload = json.load(handle)
    return ExperimentTable(
        title=payload["title"],
        headers=list(payload["headers"]),
        cells={
            row: {column: list(scores) for column, scores in columns.items()}
            for row, columns in payload["cells"].items()
        },
    )


def save_record(record: dict, path: str | os.PathLike) -> None:
    """Append one experiment record to a JSON-lines log."""
    if not isinstance(record, dict):
        raise TypeError("record must be a dict")
    with open(path, "a") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")


def load_records(path: str | os.PathLike) -> list[dict]:
    """Read every record from a JSON-lines log (empty if absent)."""
    if not os.path.exists(path):
        return []
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
