"""Figure 3: test accuracy versus search time (log10 seconds).

For the trial-and-error methods the trajectory is "best-so-far test
score after each candidate evaluation"; for SANE we replay the alpha
snapshots at a few checkpoints, derive the architecture each snapshot
implies and retrain it — giving the anytime curve of the one-shot
search. Expected shape: the SANE curve reaches its plateau one to two
orders of magnitude earlier on the time axis.

Each (dataset, method) curve is an independent :class:`SearchJob`, so
``workers > 1`` regenerates the figure's cells concurrently.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.derive import retrain
from repro.core.search import SaneSearcher, SearchConfig, derive_from_alphas
from repro.core.search_space import SearchSpace
from repro.experiments.config import Scale
from repro.experiments.results import render_table
from repro.experiments.runners import task_settings
from repro.graph.datasets import load_dataset
from repro.nas.encoding import sane_decision_space
from repro.nas.evaluation import ArchitectureEvaluator
from repro.nas.graphnas import graphnas_search
from repro.nas.random_search import random_search
from repro.nas.tpe import tpe_search
from repro.parallel import SearchJob, WorkerPool

__all__ = ["Figure3Result", "run_figure3"]


@dataclasses.dataclass
class Figure3Result:
    # dataset -> method -> [(seconds, best test so far)]
    trajectories: dict[str, dict[str, list[tuple[float, float]]]]

    def final_scores(self, dataset: str) -> dict[str, float]:
        return {
            method: series[-1][1]
            for method, series in self.trajectories[dataset].items()
            if series
        }

    def render(self) -> str:
        parts = ["Figure 3 — test score vs. search time (log10 s)"]
        for dataset, methods in self.trajectories.items():
            parts.append(f"\n[{dataset}]")
            rows = []
            for method, series in methods.items():
                points = "  ".join(
                    f"({np.log10(max(t, 1e-3)):.2f}, {score:.3f})"
                    for t, score in series
                )
                rows.append([method, points])
            parts.append(render_table(["method", "(log10 t, score) series"], rows))
        return "\n".join(parts)


def _figure3_cell(
    method: str,
    dataset: str,
    scale: Scale,
    seed: int,
    num_sane_checkpoints: int = 4,
) -> list[tuple[float, float]]:
    """One Figure 3 curve — the (dataset, method) cell job body.

    Every evaluator, sampler and searcher is seeded ``seed``, as in
    the original sequential loop.
    """
    data = load_dataset(dataset, seed=seed, scale=scale.dataset_scale)
    settings = task_settings(data, scale)
    space = SearchSpace(num_layers=3)

    if method != "sane":
        evaluator = ArchitectureEvaluator(
            sane_decision_space(space),
            data,
            train_config=settings.train_config,
            hidden_dim=scale.hidden_dim,
            dropout=settings.dropout,
            seed=seed,
        )
        if method == "random":
            outcome = random_search(evaluator, scale.nas_candidates, seed=seed)
        elif method == "bayesian":
            outcome = tpe_search(evaluator, scale.nas_candidates, seed=seed)
        else:
            outcome = graphnas_search(
                evaluator, scale.nas_candidates, seed=seed, num_final_samples=1
            )
        return [(float(t), float(s)) for t, s in outcome.trajectory]

    # SANE anytime curve: derive + retrain at alpha checkpoints.
    searcher = SaneSearcher(
        space,
        data,
        SearchConfig(
            epochs=scale.search_epochs, hidden_dim=scale.search_hidden_dim
        ),
        seed=seed,
    )
    result = searcher.search()
    epochs = len(result.alpha_snapshots)
    checkpoints = sorted(
        {
            max(0, round(epochs * fraction) - 1)
            for fraction in np.linspace(
                1.0 / num_sane_checkpoints, 1.0, num_sane_checkpoints
            )
        }
    )
    series = []
    rng = np.random.default_rng(seed)
    for checkpoint in checkpoints:
        arch = derive_from_alphas(space, result.alpha_snapshots[checkpoint], rng)
        probe = retrain(
            arch,
            data,
            seed=seed,
            hidden_dim=scale.hidden_dim,
            dropout=settings.dropout,
            activation=settings.activation,
            train_config=settings.train_config,
        )
        elapsed = result.history[checkpoint][0]
        series.append((float(elapsed), float(probe.test_score)))
    return series


def run_figure3(
    scale: Scale,
    datasets: tuple[str, ...] = ("cora", "citeseer", "pubmed", "ppi"),
    seed: int = 0,
    num_sane_checkpoints: int = 4,
    workers: int = 0,
) -> Figure3Result:
    """Regenerate the Figure 3 trajectories."""
    methods = ("random", "bayesian", "graphnas", "sane")
    cells = [
        (method, dataset) for dataset in datasets for method in methods
    ]
    with WorkerPool(workers=workers) as pool:
        curves = pool.run(
            SearchJob(
                job_id=position,
                fn="repro.experiments.figure3:_figure3_cell",
                kwargs=dict(
                    method=method,
                    dataset=dataset,
                    scale=scale,
                    seed=seed,
                    num_sane_checkpoints=num_sane_checkpoints,
                ),
                tag=f"figure3-{dataset}-{method}",
            )
            for position, (method, dataset) in enumerate(cells)
        )
    trajectories: dict[str, dict[str, list[tuple[float, float]]]] = {}
    for (method, dataset), series in zip(cells, curves):
        trajectories.setdefault(dataset, {})[method] = [
            (t, s) for t, s in series
        ]
    return Figure3Result(trajectories=trajectories)
