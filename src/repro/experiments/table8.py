"""Table VIII: the DB task — cross-lingual entity alignment.

Compares the JAPE-like embedding baseline, GCN-Align and SANE (2-layer
search, no layer aggregator, per Section IV-D) on Hits@{1, 10, 50} in
both directions. Expected shape: JAPE < GCN-Align < SANE, with SANE's
advantage coming from a *mixed* pair of node aggregators (the paper
finds "GAT-GeniePath").
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.experiments.config import Scale
from repro.experiments.results import render_table
from repro.kg.align import AlignConfig, EmbeddingAligner, GNNAligner, train_aligner
from repro.kg.data import AlignmentDataset, generate_alignment_dataset
from repro.kg.search import AlignSearchConfig, search_alignment

__all__ = ["Table8Result", "run_table8"]

KS = (1, 10, 50)


@dataclasses.dataclass
class Table8Result:
    # method -> direction -> {k: hits}
    hits: dict[str, dict[str, dict[int, float]]]
    searched_ops: tuple[str, ...]

    def render(self) -> str:
        headers = ["method"] + [
            f"{direction}@{k}" for direction in ("zh->en", "en->zh") for k in KS
        ]
        rows = []
        for method, by_direction in self.hits.items():
            row = [method]
            for direction in ("zh->en", "en->zh"):
                for k in KS:
                    row.append(f"{100 * by_direction[direction][k]:.2f}")
            rows.append(row)
        table = render_table(
            headers, rows, title="Table VIII — DB task, Hits@k (in %)"
        )
        return table + f"\nSearched alignment ops: {'-'.join(self.searched_ops)}"


def run_table8(
    scale: Scale,
    seed: int = 0,
    dataset: AlignmentDataset | None = None,
) -> Table8Result:
    """Regenerate Table VIII on the synthetic bilingual KG pair."""
    if dataset is None:
        num_core = max(60, int(240 * scale.dataset_scale))
        dataset = generate_alignment_dataset(seed=seed, num_core=num_core)
    epochs = max(60, scale.train_epochs)
    train_config = AlignConfig(epochs=epochs, patience=max(25, epochs // 5))
    dim = train_config.embedding_dim

    hits: dict[str, dict[str, dict[int, float]]] = {}

    jape = EmbeddingAligner(dataset, dim, np.random.default_rng(seed))
    hits["jape"] = train_aligner(jape, dataset, train_config, seed=seed).test_hits

    gcn_align = GNNAligner(dataset, ["gcn", "gcn"], dim, np.random.default_rng(seed))
    hits["gcn-align"] = train_aligner(
        gcn_align, dataset, train_config, seed=seed
    ).test_hits

    # SANE: several search seeds, keep the best by validation (the
    # paper's protocol), then fine-tune margin/negatives lightly.
    best = None
    for search_seed in range(max(1, scale.search_seeds)):
        searched = search_alignment(
            dataset,
            AlignSearchConfig(epochs=max(20, scale.search_epochs)),
            seed=seed + search_seed,
        )
        for margin, negatives in ((0.5, 12), (1.0, 8)):
            config = train_config.replace(margin=margin, num_negatives=negatives)
            model = GNNAligner(
                dataset,
                list(searched.node_aggregators),
                dim,
                np.random.default_rng(seed),
            )
            result = train_aligner(model, dataset, config, seed=seed)
            candidate = (result.val_hits1, searched.node_aggregators, result)
            if best is None or candidate[0] > best[0]:
                best = candidate
    hits["sane"] = best[2].test_hits
    return Table8Result(hits=hits, searched_ops=best[1])
