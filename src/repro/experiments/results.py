"""Result containers and table rendering for the experiment harness.

Benchmarks print the regenerated tables in the same row/column layout
as the paper so paper-vs-measured comparison (EXPERIMENTS.md) is a
visual diff.
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = ["ExperimentTable", "format_scores", "render_table"]


def format_scores(values: list[float]) -> str:
    """``0.8926 (0.0123)`` — the paper's mean (std) cell format."""
    array = np.asarray(values, dtype=np.float64)
    return f"{array.mean():.4f} ({array.std():.4f})"


def render_table(headers: list[str], rows: list[list[str]], title: str = "") -> str:
    """Plain-text aligned table (monospace, benchmark-output friendly)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))

    def line(cells):
        return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in rows)
    return "\n".join(parts)


@dataclasses.dataclass
class ExperimentTable:
    """A reproduced table: raw per-cell score lists plus rendering."""

    title: str
    headers: list[str]
    # row label -> column label -> list of raw scores
    cells: dict[str, dict[str, list[float]]]

    def row_labels(self) -> list[str]:
        return list(self.cells)

    def scores(self, row: str, column: str) -> list[float]:
        return self.cells[row][column]

    def mean(self, row: str, column: str) -> float:
        return float(np.mean(self.cells[row][column]))

    def best_row(self, column: str) -> str:
        """Row label with the highest mean in ``column``."""
        return max(self.cells, key=lambda row: self.mean(row, column))

    def render(self) -> str:
        rows = []
        for label, columns in self.cells.items():
            row = [label]
            for header in self.headers[1:]:
                values = columns.get(header)
                row.append(format_scores(values) if values else "-")
            rows.append(row)
        return render_table(self.headers, rows, title=self.title)
