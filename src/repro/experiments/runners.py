"""Shared experiment runners: the three method families of Table VI.

These helpers encapsulate the paper's protocols so individual
table/figure modules stay declarative:

* :func:`run_human_baseline` — train a fixed architecture ``repeats``
  times with per-task settings (Table XIII analogue);
* :func:`run_sane` — the full SANE pipeline: ``search_seeds``
  independent searches, best-by-validation selection among the derived
  top-1 architectures, then multi-seed retraining (Section IV-A3);
* :func:`run_nas_method` — Random / Bayesian / GraphNAS(-WS) over a
  decision space, then multi-seed retraining of the winner.

``run_sane`` expresses its three stages — search seeds, candidate
probes, retraining repeats — as :class:`repro.parallel.SearchJob`
waves executed by a :class:`repro.parallel.WorkerPool`. There is no
separate sequential loop: ``workers <= 1`` runs the very same job
bodies in-process in job-id order, and because every job derives its
seed from its identity (``seed + search_seed`` etc., exactly the
pre-existing assignments), the output is bit-identical at any worker
count.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.derive import retrain
from repro.core.search import SaneSearcher, SearchConfig, SearchResult
from repro.core.search_space import Architecture, SearchSpace
from repro.experiments.config import Scale
from repro.gnn.common import GraphCache
from repro.gnn.lgcn import LGCNModel
from repro.gnn.models import build_baseline
from repro.graph.data import Graph, MultiGraphDataset
from repro.nas.encoding import DecisionSpace, sane_decision_space
from repro.nas.evaluation import ArchitectureEvaluator, build_spec_model
from repro.nas.graphnas import graphnas_search
from repro.nas.random_search import SearchOutcome, random_search
from repro.nas.tpe import tpe_search
from repro.obs import events
from repro.parallel import SearchJob, WorkerPool
from repro.train.trainer import TrainConfig, fit

__all__ = [
    "TaskSettings",
    "task_settings",
    "run_human_baseline",
    "run_sane",
    "run_nas_method",
    "SaneRun",
    "NasRun",
    "NAS_METHODS",
]

NAS_METHODS = ("random", "bayesian", "graphnas", "graphnas-ws")


@dataclasses.dataclass
class TaskSettings:
    """Per-task model/training settings (the Table XIII analogue)."""

    dropout: float
    activation: str
    jk_mode: str
    train_config: TrainConfig


def task_settings(data: Graph | MultiGraphDataset, scale: Scale) -> TaskSettings:
    """Transductive vs inductive defaults, following Table XIII."""
    if isinstance(data, MultiGraphDataset):
        return TaskSettings(
            dropout=0.1,
            activation="elu",
            jk_mode="lstm",
            train_config=scale.ppi_train_config(),
        )
    return TaskSettings(
        dropout=0.5,
        activation="relu",
        jk_mode="concat",
        train_config=scale.train_config(),
    )


# Table XIII: GeniePath is trained with tanh (its LSTM gating saturates
# and stops learning under relu in the plain 3-layer stack).
_ACTIVATION_OVERRIDES = {"geniepath": "tanh", "geniepath-jk": "tanh"}


def run_human_baseline(
    name: str,
    data: Graph | MultiGraphDataset,
    scale: Scale,
    seed: int = 0,
) -> list[float]:
    """Retrain a human-designed baseline ``scale.repeats`` times."""
    settings = task_settings(data, scale)
    activation = _ACTIVATION_OVERRIDES.get(name, settings.activation)
    scores = []
    for repeat in range(scale.repeats):
        rng = np.random.default_rng(seed + repeat)
        if name == "lgcn":
            model = LGCNModel(
                data.num_features,
                scale.hidden_dim,
                data.num_classes,
                rng,
                num_layers=3,
                dropout=settings.dropout,
                activation=activation,
            )
        else:
            model = build_baseline(
                name,
                data.num_features,
                data.num_classes,
                rng,
                hidden_dim=scale.hidden_dim,
                num_layers=3,
                dropout=settings.dropout,
                activation=activation,
                jk_mode=settings.jk_mode,
            )
        result = fit(model, data, settings.train_config)
        scores.append(result.test_score)
    return scores


@dataclasses.dataclass
class SaneRun:
    architecture: Architecture
    test_scores: list[float]
    val_scores: list[float]
    search_time: float  # seconds of the (first) search run
    search_results: list[SearchResult]  # one per search seed


def _sane_search_job(
    space: SearchSpace,
    data: Graph | MultiGraphDataset,
    search_config: SearchConfig,
    seed: int,
) -> SearchResult:
    """One independent supernet search — the body of a search-wave job."""
    return SaneSearcher(space, data, search_config, seed=seed).search()


def _sane_retrain_job(
    architecture: Architecture,
    data: Graph | MultiGraphDataset,
    seed: int,
    hidden_dim: int,
    dropout: float,
    activation: str,
    train_config: TrainConfig,
) -> tuple[float, float]:
    """Retrain one derived architecture; body of probe and repeat jobs."""
    result = retrain(
        architecture,
        data,
        seed=seed,
        hidden_dim=hidden_dim,
        dropout=dropout,
        activation=activation,
        train_config=train_config,
    )
    return float(result.val_score), float(result.test_score)


def run_sane(
    data: Graph | MultiGraphDataset,
    scale: Scale,
    seed: int = 0,
    num_layers: int = 3,
    epsilon: float = 0.0,
    space: SearchSpace | None = None,
    workers: int = 0,
    pool: WorkerPool | None = None,
) -> SaneRun:
    """Full SANE pipeline (Section IV-A3 protocol).

    The three stages run as job waves on ``pool`` (or an ephemeral
    pool with ``workers`` processes): independent searches, candidate
    probes, retraining repeats. Each job's seed is a function of its
    identity alone, and the pool merges by job id, so any worker
    count produces the same :class:`SaneRun` bit for bit.
    """
    space = space or SearchSpace(num_layers=num_layers)
    settings = task_settings(data, scale)
    search_config = SearchConfig(
        epochs=scale.search_epochs,
        hidden_dim=scale.search_hidden_dim,
        epsilon=epsilon,
    )
    own_pool = pool is None
    pool = pool if pool is not None else WorkerPool(workers=workers)
    try:
        # Wave 1 — run the search `search_seeds` times.
        search_results: list[SearchResult] = pool.run(
            SearchJob(
                job_id=search_seed,
                fn="repro.experiments.runners:_sane_search_job",
                kwargs=dict(
                    space=space,
                    data=data,
                    search_config=search_config,
                    seed=seed + search_seed,
                ),
                tag=f"sane-search-{seed + search_seed}",
            )
            for search_seed in range(scale.search_seeds)
        )

        # Wave 2 — probe candidates. Algorithm 1 retains the top-k
        # strongest operations; we probe the top-2 architectures of
        # each supernet (k=1 plus the runner-up) and keep the best by
        # validation — the paper's protocol with a slightly wider net.
        probes: list[tuple[int, Architecture]] = []
        for search_seed, result in enumerate(search_results):
            probed: set[Architecture] = set()
            for arch in result.supernet.derive_topk(2):
                if arch in probed:
                    continue
                probed.add(arch)
                probes.append((search_seed, arch))
        probe_scores = pool.run(
            SearchJob(
                job_id=position,
                fn="repro.experiments.runners:_sane_retrain_job",
                kwargs=dict(
                    architecture=arch,
                    data=data,
                    seed=seed,
                    hidden_dim=scale.hidden_dim,
                    dropout=settings.dropout,
                    activation=settings.activation,
                    train_config=settings.train_config,
                ),
                tag=f"sane-probe-{position}",
            )
            for position, (__, arch) in enumerate(probes)
        )
        candidates: list[tuple[float, Architecture]] = []
        for (search_seed, arch), (val_score, test_score) in zip(probes, probe_scores):
            candidates.append((val_score, arch))
            events.emit(
                "candidate_probe",
                search_seed=seed + search_seed,
                architecture=str(arch),
                val_score=val_score,
                test_score=test_score,
            )
        candidates.sort(key=lambda item: -item[0])
        best_arch = candidates[0][1]
        events.emit(
            "sane_selected",
            architecture=str(best_arch),
            val_score=candidates[0][0],
            candidates=len(candidates),
        )

        # Wave 3 — retrain the winner `repeats` times.
        repeat_scores = pool.run(
            SearchJob(
                job_id=repeat,
                fn="repro.experiments.runners:_sane_retrain_job",
                kwargs=dict(
                    architecture=best_arch,
                    data=data,
                    seed=seed + repeat,
                    hidden_dim=scale.hidden_dim,
                    dropout=settings.dropout,
                    activation=settings.activation,
                    train_config=settings.train_config,
                ),
                tag=f"sane-retrain-{seed + repeat}",
            )
            for repeat in range(scale.repeats)
        )
    finally:
        if own_pool:
            pool.shutdown()
    val_scores = [val for val, __ in repeat_scores]
    test_scores = [test for __, test in repeat_scores]
    return SaneRun(
        architecture=best_arch,
        test_scores=test_scores,
        val_scores=val_scores,
        search_time=search_results[0].search_time,
        search_results=search_results,
    )


@dataclasses.dataclass
class NasRun:
    method: str
    test_scores: list[float]
    outcome: SearchOutcome
    best_decoded: object


def run_nas_method(
    method: str,
    data: Graph | MultiGraphDataset,
    scale: Scale,
    seed: int = 0,
    space: DecisionSpace | None = None,
    num_layers: int = 3,
    rollout_batch: int = 1,
    workers: int = 0,
    pool: WorkerPool | None = None,
) -> NasRun:
    """Run one trial-and-error baseline and retrain its winner.

    ``workers``/``pool`` parallelise candidate training. Random search
    fans out its whole (feedback-free) budget; Bayesian and GraphNAS
    evaluate ``rollout_batch`` proposals per round. ``rollout_batch``
    changes which candidates the adaptive methods propose (batched BO
    semantics) — at ``rollout_batch=1`` results are bit-identical to
    the sequential algorithm at any worker count.
    """
    if method not in NAS_METHODS:
        raise ValueError(f"unknown NAS method {method!r}; choose from {NAS_METHODS}")
    space = space or sane_decision_space(SearchSpace(num_layers=num_layers))
    settings = task_settings(data, scale)
    evaluator = ArchitectureEvaluator(
        space,
        data,
        train_config=settings.train_config,
        hidden_dim=scale.hidden_dim,
        dropout=settings.dropout,
        seed=seed,
        weight_sharing=(method == "graphnas-ws"),
        ws_epochs=scale.ws_epochs,
    )
    own_pool = pool is None
    pool = pool if pool is not None else WorkerPool(workers=workers)
    try:
        if method == "random":
            outcome = random_search(
                evaluator, scale.nas_candidates, seed=seed, pool=pool
            )
        elif method == "bayesian":
            outcome = tpe_search(
                evaluator,
                scale.nas_candidates,
                seed=seed,
                batch=rollout_batch,
                pool=pool,
            )
        else:
            outcome = graphnas_search(
                evaluator,
                scale.nas_candidates,
                seed=seed,
                num_final_samples=max(2, scale.nas_candidates // 3),
                rollout_batch=rollout_batch,
                pool=pool,
            )
    finally:
        if own_pool:
            pool.shutdown()

    decoded = space.decode(outcome.best.indices)
    test_scores = []
    for repeat in range(scale.repeats):
        rng = np.random.default_rng(seed + 100 + repeat)
        if isinstance(decoded, Architecture):
            result = retrain(
                decoded,
                data,
                seed=seed + 100 + repeat,
                hidden_dim=scale.hidden_dim,
                dropout=settings.dropout,
                activation=settings.activation,
                train_config=settings.train_config,
            )
        else:
            model = build_spec_model(
                decoded,
                data.num_features,
                data.num_classes,
                rng,
                dropout=settings.dropout,
            )
            result = fit(model, data, settings.train_config)
        test_scores.append(result.test_score)
    return NasRun(
        method=method,
        test_scores=test_scores,
        outcome=outcome,
        best_decoded=decoded,
    )
