"""Table X: failure of searching MLPs as universal node aggregators.

Random and Bayesian search over per-layer MLP aggregators
(``w ∈ {8,16,32,64}``, ``d ∈ {1,2,3}``) versus the SANE result from the
curated space. Expected shape (Section IV-E4): both MLP searches land
well below SANE — the inductive bias of hand-designed aggregators is
what makes the search space effective, despite MLPs being universal
approximators.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.experiments.config import Scale
from repro.experiments.results import ExperimentTable
from repro.experiments.runners import run_sane, task_settings
from repro.graph.datasets import load_dataset
from repro.gnn.mlp_aggregator import MLPGNNModel
from repro.nas.encoding import mlp_decision_space
from repro.nas.evaluation import ArchitectureEvaluator
from repro.nas.random_search import random_search
from repro.nas.tpe import tpe_search
from repro.train.trainer import fit

__all__ = ["Table10Result", "run_table10"]


@dataclasses.dataclass
class Table10Result:
    table: ExperimentTable

    def render(self) -> str:
        return self.table.render()


def run_table10(
    scale: Scale,
    datasets: tuple[str, ...] = ("cora", "citeseer", "pubmed", "ppi"),
    seed: int = 0,
) -> Table10Result:
    """Regenerate Table X at the given scale."""
    cells: dict[str, dict[str, list[float]]] = {
        "random (mlp)": {},
        "bayesian (mlp)": {},
        "sane": {},
    }
    space = mlp_decision_space(num_layers=3)
    for dataset_name in datasets:
        data = load_dataset(dataset_name, seed=seed, scale=scale.dataset_scale)
        settings = task_settings(data, scale)

        for label, searcher in (
            ("random (mlp)", random_search),
            ("bayesian (mlp)", tpe_search),
        ):
            evaluator = ArchitectureEvaluator(
                space,
                data,
                train_config=settings.train_config,
                hidden_dim=scale.hidden_dim,
                dropout=settings.dropout,
                seed=seed,
            )
            outcome = searcher(evaluator, scale.nas_candidates, seed=seed)
            # Retrain the winner `repeats` times from scratch.
            scores = []
            decoded = space.decode(outcome.best.indices)
            for repeat in range(scale.repeats):
                model = MLPGNNModel(
                    data.num_features,
                    scale.hidden_dim,
                    data.num_classes,
                    decoded["mlp_layers"],
                    np.random.default_rng(seed + repeat),
                    dropout=settings.dropout,
                )
                scores.append(fit(model, data, settings.train_config).test_score)
            cells[label][dataset_name] = scores

        cells["sane"][dataset_name] = run_sane(data, scale, seed=seed).test_scores

    table = ExperimentTable(
        title="Table X — searching MLP aggregators vs. SANE",
        headers=["method"] + list(datasets),
        cells=cells,
    )
    return Table10Result(table=table)
