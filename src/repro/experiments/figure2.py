"""Figure 2: the searched architectures, rendered as ASCII diagrams.

The paper visualises the top-1 architecture per dataset; here we run
the SANE pipeline per dataset and draw the derived DAG, marking ZERO
skip connections in the same way the paper greys them out.
"""

from __future__ import annotations

import dataclasses

from repro.core.search_space import Architecture
from repro.experiments.config import Scale
from repro.experiments.runners import run_sane
from repro.graph.datasets import load_dataset

__all__ = ["Figure2Result", "render_architecture", "run_figure2"]


def render_architecture(arch: Architecture, name: str = "") -> str:
    """ASCII rendering of one searched architecture (Figure 2 style).

    Example::

        cora:  h0 -[gat]-> h1 -[gcn]-> h2 -[gin]-> h3
               skips to JK: h1 (identity), h2 (ZERO, dropped), h3 (identity)
               layer aggregator: concat
    """
    chain = "h0"
    for i, op in enumerate(arch.node_aggregators):
        chain += f" -[{op}]-> h{i + 1}"
    skips = []
    for i, skip in enumerate(arch.skip_connections):
        marker = "identity" if skip == "identity" else "ZERO, dropped"
        skips.append(f"h{i + 1} ({marker})")
    prefix = f"{name}:  " if name else ""
    pad = " " * len(prefix)
    return (
        f"{prefix}{chain}\n"
        f"{pad}skips to JK: {', '.join(skips)}\n"
        f"{pad}layer aggregator: {arch.layer_aggregator}"
    )


@dataclasses.dataclass
class Figure2Result:
    architectures: dict[str, Architecture]
    test_scores: dict[str, list[float]]

    def render(self) -> str:
        parts = ["Figure 2 — searched architectures (top-1 per dataset)", ""]
        for name, arch in self.architectures.items():
            parts.append(render_architecture(arch, name))
            parts.append("")
        return "\n".join(parts)


def run_figure2(
    scale: Scale,
    datasets: tuple[str, ...] = ("cora", "citeseer", "pubmed", "ppi"),
    seed: int = 0,
) -> Figure2Result:
    """Search each dataset and collect the derived architectures."""
    architectures: dict[str, Architecture] = {}
    scores: dict[str, list[float]] = {}
    for dataset_name in datasets:
        data = load_dataset(dataset_name, seed=seed, scale=scale.dataset_scale)
        run = run_sane(data, scale, seed=seed)
        architectures[dataset_name] = run.architecture
        scores[dataset_name] = run.test_scores
    return Figure2Result(architectures=architectures, test_scores=scores)
