"""Table IX: the efficacy of the SANE search space.

Runs GraphNAS (and its weight-sharing variant) over two search spaces
with the same candidate budget:

* its own GraphNAS-style space (aggregator + hyper-parameters mixed,
  ~2e8 points for K=3);
* the SANE space (node/layer aggregators + skips, 31,944 points).

Expected shape (paper Section IV-E3): at equal budget, searching the
compact SANE space matches or beats searching the GraphNAS space —
evidence that decoupling architecture from hyper-parameters pays.
"""

from __future__ import annotations

import dataclasses

from repro.core.search_space import SearchSpace
from repro.experiments.config import Scale
from repro.experiments.results import ExperimentTable
from repro.experiments.runners import run_nas_method
from repro.graph.datasets import load_dataset
from repro.nas.encoding import graphnas_decision_space, sane_decision_space

__all__ = ["Table9Result", "run_table9"]


@dataclasses.dataclass
class Table9Result:
    table: ExperimentTable

    def render(self) -> str:
        return self.table.render()


def run_table9(
    scale: Scale,
    datasets: tuple[str, ...] = ("cora", "citeseer", "pubmed", "ppi"),
    seed: int = 0,
) -> Table9Result:
    """Regenerate Table IX at the given scale."""
    rows = (
        ("graphnas", "graphnas", False),
        ("graphnas-ws", "graphnas", True),
        ("graphnas (sane space)", "sane", False),
        ("graphnas-ws (sane space)", "sane", True),
    )
    cells: dict[str, dict[str, list[float]]] = {label: {} for label, *__ in rows}
    for dataset_name in datasets:
        data = load_dataset(dataset_name, seed=seed, scale=scale.dataset_scale)
        for label, space_kind, weight_sharing in rows:
            if space_kind == "graphnas":
                space = graphnas_decision_space(num_layers=3)
            else:
                space = sane_decision_space(SearchSpace(num_layers=3))
            method = "graphnas-ws" if weight_sharing else "graphnas"
            run = run_nas_method(method, data, scale, seed=seed, space=space)
            cells[label][dataset_name] = run.test_scores

    table = ExperimentTable(
        title="Table IX — GraphNAS over its own vs. the SANE search space",
        headers=["method"] + list(datasets),
        cells=cells,
    )
    return Table9Result(table=table)
