"""Scale presets for the experiment harness.

Every experiment runner takes a :class:`Scale` that controls dataset
size and compute budgets, so the same code serves three purposes:

* ``smoke``   — seconds; used by the integration test suite;
* ``default`` — minutes; used by ``benchmarks/`` to regenerate every
  table and figure on a laptop-class CPU;
* ``full``    — closest to the paper's protocol (5 repeats, longer
  searches); use when you have an hour+.

``Scale.from_env()`` honours the ``REPRO_SCALE`` environment variable.
"""

from __future__ import annotations

import dataclasses
import os

from repro.train.trainer import TrainConfig

__all__ = ["Scale", "SCALES"]


@dataclasses.dataclass(frozen=True)
class Scale:
    """Compute budget preset."""

    name: str
    dataset_scale: float  # multiplies the synthetic dataset sizes
    repeats: int  # retraining seeds per reported number (paper: 5)
    search_epochs: int  # SANE supernet epochs (paper: 200)
    search_seeds: int  # independent SANE searches (paper: 5)
    nas_candidates: int  # trial-and-error budget (paper: 200)
    train_epochs: int
    train_patience: int
    ws_epochs: int  # weight-sharing adaptation schedule
    tune_trials: int  # hyperopt-style fine-tuning trials (paper: 50)
    hidden_dim: int  # retraining hidden size
    search_hidden_dim: int  # supernet hidden size (paper: 32)
    ppi_train_epochs: int

    def train_config(self, **overrides) -> TrainConfig:
        config = TrainConfig(
            epochs=self.train_epochs, patience=self.train_patience
        )
        return config.replace(**overrides) if overrides else config

    def ppi_train_config(self, **overrides) -> TrainConfig:
        config = TrainConfig(
            epochs=self.ppi_train_epochs,
            patience=max(20, self.ppi_train_epochs // 5),
            lr=1e-2,
        )
        return config.replace(**overrides) if overrides else config


SCALES: dict[str, Scale] = {
    "smoke": Scale(
        name="smoke",
        dataset_scale=0.5,
        repeats=2,
        search_epochs=10,
        search_seeds=1,
        nas_candidates=3,
        train_epochs=80,
        train_patience=25,
        ws_epochs=15,
        tune_trials=2,
        hidden_dim=16,
        search_hidden_dim=16,
        ppi_train_epochs=80,
    ),
    "default": Scale(
        name="default",
        dataset_scale=0.8,
        repeats=2,
        search_epochs=50,
        search_seeds=2,
        nas_candidates=6,
        train_epochs=120,
        train_patience=20,
        ws_epochs=15,
        tune_trials=4,
        hidden_dim=32,
        search_hidden_dim=32,
        ppi_train_epochs=120,
    ),
    "full": Scale(
        name="full",
        dataset_scale=1.0,
        repeats=5,
        search_epochs=200,
        search_seeds=5,
        nas_candidates=30,
        train_epochs=300,
        train_patience=40,
        ws_epochs=40,
        tune_trials=15,
        hidden_dim=64,
        search_hidden_dim=32,
        ppi_train_epochs=300,
    ),
}


def _scale_from_env() -> Scale:
    name = os.environ.get("REPRO_SCALE", "default")
    try:
        return SCALES[name]
    except KeyError:
        raise ValueError(
            f"REPRO_SCALE={name!r} unknown; choose from {sorted(SCALES)}"
        ) from None


Scale.from_env = staticmethod(_scale_from_env)
