"""Experiment harness: one runner per paper table/figure.

=========  ==============================================
paper       runner
=========  ==============================================
Table IV    :func:`repro.experiments.table4.run_table4`
Table VI    :func:`repro.experiments.table6.run_table6`
Table VII   :func:`repro.experiments.table7.run_table7`
Table VIII  :func:`repro.experiments.table8.run_table8`
Table IX    :func:`repro.experiments.table9.run_table9`
Table X     :func:`repro.experiments.table10.run_table10`
Figure 2    :func:`repro.experiments.figure2.run_figure2`
Figure 3    :func:`repro.experiments.figure3.run_figure3`
Figure 4    :func:`repro.experiments.figure4.run_figure4a` / ``run_figure4b``
=========  ==============================================
"""

from repro.experiments.config import SCALES, Scale
from repro.experiments.persistence import (
    load_records,
    load_table,
    save_record,
    save_table,
)
from repro.experiments.results import ExperimentTable, format_scores, render_table
from repro.experiments.runners import (
    NAS_METHODS,
    run_human_baseline,
    run_nas_method,
    run_sane,
    task_settings,
)
from repro.experiments.table4 import run_table4
from repro.experiments.table6 import HUMAN_BASELINES, run_table6
from repro.experiments.table7 import run_table7
from repro.experiments.table8 import run_table8
from repro.experiments.table9 import run_table9
from repro.experiments.table10 import run_table10
from repro.experiments.figure2 import render_architecture, run_figure2
from repro.experiments.figure3 import run_figure3
from repro.experiments.figure4 import run_figure4a, run_figure4b

__all__ = [
    "Scale",
    "SCALES",
    "ExperimentTable",
    "format_scores",
    "render_table",
    "save_table",
    "load_table",
    "save_record",
    "load_records",
    "NAS_METHODS",
    "HUMAN_BASELINES",
    "run_human_baseline",
    "run_nas_method",
    "run_sane",
    "task_settings",
    "run_table4",
    "run_table6",
    "run_table7",
    "run_table8",
    "run_table9",
    "run_table10",
    "render_architecture",
    "run_figure2",
    "run_figure3",
    "run_figure4a",
    "run_figure4b",
]
