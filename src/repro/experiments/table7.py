"""Table VII: search wall-clock time of each NAS method.

The paper measures the clock time to run each search once with a
fixed exploration budget (200 supernet epochs for SANE, 200 candidate
evaluations for Random/Bayesian/GraphNAS) and reports SANE two orders
of magnitude faster. We use ``scale.nas_candidates`` /
``scale.search_epochs`` as the budgets; the expected *shape* is the
large multiplicative gap, not the absolute seconds.
"""

from __future__ import annotations

import dataclasses

from repro.core.search import SaneSearcher, SearchConfig
from repro.core.search_space import SearchSpace
from repro.experiments.config import Scale
from repro.experiments.results import render_table
from repro.experiments.runners import task_settings
from repro.graph.datasets import load_dataset
from repro.nas.encoding import sane_decision_space
from repro.nas.evaluation import ArchitectureEvaluator
from repro.nas.graphnas import graphnas_search
from repro.nas.random_search import random_search
from repro.nas.tpe import tpe_search

__all__ = ["Table7Result", "run_table7"]


@dataclasses.dataclass
class Table7Result:
    # method -> dataset -> seconds
    times: dict[str, dict[str, float]]

    def speedup(self, dataset: str) -> float:
        """Slowest trial-and-error method over SANE, per dataset."""
        others = [
            seconds
            for method, by_dataset in self.times.items()
            if method != "sane"
            for ds, seconds in by_dataset.items()
            if ds == dataset
        ]
        return max(others) / self.times["sane"][dataset]

    def render(self) -> str:
        datasets = list(next(iter(self.times.values())))
        rows = [
            [method] + [f"{by_ds[ds]:.1f}" for ds in datasets]
            for method, by_ds in self.times.items()
        ]
        return render_table(
            ["method"] + datasets,
            rows,
            title="Table VII — search time (seconds) per method",
        )


def run_table7(
    scale: Scale,
    datasets: tuple[str, ...] = ("cora", "citeseer", "pubmed", "ppi"),
    seed: int = 0,
) -> Table7Result:
    """Time one search run of every method on every dataset."""
    times: dict[str, dict[str, float]] = {
        m: {} for m in ("random", "bayesian", "graphnas", "sane")
    }
    space = SearchSpace(num_layers=3)
    for dataset_name in datasets:
        data = load_dataset(dataset_name, seed=seed, scale=scale.dataset_scale)
        settings = task_settings(data, scale)
        dspace = sane_decision_space(space)

        def evaluator(method_seed: int) -> ArchitectureEvaluator:
            return ArchitectureEvaluator(
                dspace,
                data,
                train_config=settings.train_config,
                hidden_dim=scale.hidden_dim,
                dropout=settings.dropout,
                seed=method_seed,
            )

        outcome = random_search(evaluator(seed), scale.nas_candidates, seed=seed)
        times["random"][dataset_name] = outcome.search_time
        outcome = tpe_search(evaluator(seed + 1), scale.nas_candidates, seed=seed)
        times["bayesian"][dataset_name] = outcome.search_time
        outcome = graphnas_search(
            evaluator(seed + 2),
            scale.nas_candidates,
            seed=seed,
            num_final_samples=1,
        )
        times["graphnas"][dataset_name] = outcome.search_time

        searcher = SaneSearcher(
            space,
            data,
            SearchConfig(
                epochs=scale.search_epochs, hidden_dim=scale.search_hidden_dim
            ),
            seed=seed,
        )
        times["sane"][dataset_name] = searcher.search().search_time
    return Table7Result(times=times)
