"""Table VII: search wall-clock time of each NAS method.

The paper measures the clock time to run each search once with a
fixed exploration budget (200 supernet epochs for SANE, 200 candidate
evaluations for Random/Bayesian/GraphNAS) and reports SANE two orders
of magnitude faster. We use ``scale.nas_candidates`` /
``scale.search_epochs`` as the budgets; the expected *shape* is the
large multiplicative gap, not the absolute seconds.

Each (dataset, method) cell is an independent :class:`SearchJob` —
``workers > 1`` times the cells concurrently (each cell's clock still
measures only its own search, so the reported seconds are comparable
to the sequential run's).
"""

from __future__ import annotations

import dataclasses

from repro.core.search import SaneSearcher, SearchConfig
from repro.core.search_space import SearchSpace
from repro.experiments.config import Scale
from repro.experiments.results import render_table
from repro.experiments.runners import task_settings
from repro.graph.datasets import load_dataset
from repro.nas.encoding import sane_decision_space
from repro.nas.evaluation import ArchitectureEvaluator
from repro.nas.graphnas import graphnas_search
from repro.nas.random_search import random_search
from repro.nas.tpe import tpe_search
from repro.parallel import SearchJob, WorkerPool

__all__ = ["Table7Result", "run_table7"]

_METHODS = ("random", "bayesian", "graphnas", "sane")


@dataclasses.dataclass
class Table7Result:
    # method -> dataset -> seconds
    times: dict[str, dict[str, float]]

    def speedup(self, dataset: str) -> float:
        """Slowest trial-and-error method over SANE, per dataset."""
        others = [
            seconds
            for method, by_dataset in self.times.items()
            if method != "sane"
            for ds, seconds in by_dataset.items()
            if ds == dataset
        ]
        return max(others) / self.times["sane"][dataset]

    def render(self) -> str:
        datasets = list(next(iter(self.times.values())))
        rows = [
            [method] + [f"{by_ds[ds]:.1f}" for ds in datasets]
            for method, by_ds in self.times.items()
        ]
        return render_table(
            ["method"] + datasets,
            rows,
            title="Table VII — search time (seconds) per method",
        )


def _table7_cell(method: str, dataset: str, scale: Scale, seed: int) -> float:
    """Time one search of ``method`` on ``dataset``; the cell job body.

    Seed assignments are the table's original ones: the random/TPE/
    GraphNAS evaluators get ``seed``/``seed + 1``/``seed + 2``, the
    samplers and SANE get ``seed``.
    """
    data = load_dataset(dataset, seed=seed, scale=scale.dataset_scale)
    space = SearchSpace(num_layers=3)
    if method == "sane":
        searcher = SaneSearcher(
            space,
            data,
            SearchConfig(
                epochs=scale.search_epochs, hidden_dim=scale.search_hidden_dim
            ),
            seed=seed,
        )
        return float(searcher.search().search_time)

    settings = task_settings(data, scale)
    evaluator_seed = {"random": seed, "bayesian": seed + 1, "graphnas": seed + 2}
    evaluator = ArchitectureEvaluator(
        sane_decision_space(space),
        data,
        train_config=settings.train_config,
        hidden_dim=scale.hidden_dim,
        dropout=settings.dropout,
        seed=evaluator_seed[method],
    )
    if method == "random":
        outcome = random_search(evaluator, scale.nas_candidates, seed=seed)
    elif method == "bayesian":
        outcome = tpe_search(evaluator, scale.nas_candidates, seed=seed)
    else:
        outcome = graphnas_search(
            evaluator, scale.nas_candidates, seed=seed, num_final_samples=1
        )
    return float(outcome.search_time)


def run_table7(
    scale: Scale,
    datasets: tuple[str, ...] = ("cora", "citeseer", "pubmed", "ppi"),
    seed: int = 0,
    workers: int = 0,
) -> Table7Result:
    """Time one search run of every method on every dataset."""
    cells = [
        (method, dataset)
        for dataset in datasets
        for method in _METHODS
    ]
    with WorkerPool(workers=workers) as pool:
        seconds = pool.run(
            SearchJob(
                job_id=position,
                fn="repro.experiments.table7:_table7_cell",
                kwargs=dict(
                    method=method, dataset=dataset, scale=scale, seed=seed
                ),
                tag=f"table7-{dataset}-{method}",
            )
            for position, (method, dataset) in enumerate(cells)
        )
    times: dict[str, dict[str, float]] = {m: {} for m in _METHODS}
    for (method, dataset), cell_seconds in zip(cells, seconds):
        times[method][dataset] = cell_seconds
    return Table7Result(times=times)
