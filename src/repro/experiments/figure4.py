"""Figure 4: ablations — random-explore ε (a) and backbone depth K (b).

(a) ``ε ∈ {0, 0.2, 0.5, 0.9, 1.0}``: with probability ε each supernet
edge uses a uniformly sampled single op instead of the softmax
mixture; ε=1 degenerates to random search with weight sharing.
Expected: test score decreases as ε grows (Section IV-E1).

(b) ``K ∈ {1..6}``: search at each depth. Expected: score rises then
falls (over-smoothing), peaking at small-to-moderate K
(Section IV-E2).
"""

from __future__ import annotations

import dataclasses

from repro.experiments.config import Scale
from repro.experiments.results import render_table
from repro.experiments.runners import run_sane
from repro.graph.datasets import load_dataset

__all__ = ["Figure4Result", "run_figure4a", "run_figure4b"]

EPSILONS = (0.0, 0.2, 0.5, 0.9, 1.0)
DEPTHS = (1, 2, 3, 4, 5, 6)


@dataclasses.dataclass
class Figure4Result:
    # dataset -> {parameter value: [test scores]}
    curves: dict[str, dict[float, list[float]]]
    parameter: str  # "epsilon" or "K"

    def means(self, dataset: str) -> dict[float, float]:
        return {
            value: sum(scores) / len(scores)
            for value, scores in self.curves[dataset].items()
        }

    def render(self) -> str:
        datasets = list(self.curves)
        values = list(next(iter(self.curves.values())))
        rows = []
        for value in values:
            row = [f"{self.parameter}={value}"]
            for dataset in datasets:
                scores = self.curves[dataset][value]
                row.append(f"{sum(scores) / len(scores):.4f}")
            rows.append(row)
        return render_table(
            [self.parameter] + datasets,
            rows,
            title=f"Figure 4 — test score vs. {self.parameter}",
        )


def run_figure4a(
    scale: Scale,
    datasets: tuple[str, ...] = ("cora", "citeseer", "pubmed", "ppi"),
    epsilons: tuple[float, ...] = EPSILONS,
    seed: int = 0,
) -> Figure4Result:
    """ε-ablation of the differentiable search."""
    curves: dict[str, dict[float, list[float]]] = {}
    for dataset_name in datasets:
        data = load_dataset(dataset_name, seed=seed, scale=scale.dataset_scale)
        curves[dataset_name] = {}
        for epsilon in epsilons:
            run = run_sane(data, scale, seed=seed, epsilon=epsilon)
            curves[dataset_name][epsilon] = run.test_scores
    return Figure4Result(curves=curves, parameter="epsilon")


def run_figure4b(
    scale: Scale,
    datasets: tuple[str, ...] = ("cora", "citeseer", "pubmed", "ppi"),
    depths: tuple[int, ...] = DEPTHS,
    seed: int = 0,
) -> Figure4Result:
    """Backbone-depth ablation (K layers)."""
    curves: dict[str, dict[float, list[float]]] = {}
    for dataset_name in datasets:
        data = load_dataset(dataset_name, seed=seed, scale=scale.dataset_scale)
        curves[dataset_name] = {}
        for depth in depths:
            run = run_sane(data, scale, seed=seed, num_layers=depth)
            curves[dataset_name][depth] = run.test_scores
    return Figure4Result(curves=curves, parameter="K")
