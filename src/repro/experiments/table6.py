"""Table VI: performance on transductive and inductive tasks.

Reproduces the paper's headline comparison: 11 human-designed
architectures (GCN/SAGE/GAT/GIN/GeniePath, each with and without
JK-Network, plus LGCN), 4 trial-and-error NAS baselines (Random,
Bayesian, GraphNAS, GraphNAS-WS) and SANE, on the three citation
analogues (accuracy) and the PPI analogue (micro-F1).

Expected shape (paper Section IV-B): SANE best on every dataset; JK
variants improve their bases; no single human-designed winner.
"""

from __future__ import annotations

import dataclasses

from repro.experiments.config import Scale
from repro.experiments.results import ExperimentTable
from repro.experiments.runners import (
    NAS_METHODS,
    run_human_baseline,
    run_nas_method,
    run_sane,
)
from repro.graph.datasets import load_dataset

__all__ = ["HUMAN_BASELINES", "Table6Result", "run_table6"]

HUMAN_BASELINES = (
    "gcn",
    "gcn-jk",
    "sage",
    "sage-jk",
    "gat",
    "gat-jk",
    "gin",
    "gin-jk",
    "geniepath",
    "geniepath-jk",
    "lgcn",
)


@dataclasses.dataclass
class Table6Result:
    table: ExperimentTable
    sane_architectures: dict[str, str]  # dataset -> derived architecture

    def render(self) -> str:
        lines = [self.table.render(), "", "Searched architectures (Figure 2 input):"]
        for dataset, arch in self.sane_architectures.items():
            lines.append(f"  {dataset}: {arch}")
        return "\n".join(lines)


def run_table6(
    scale: Scale,
    datasets: tuple[str, ...] = ("cora", "citeseer", "pubmed", "ppi"),
    methods: tuple[str, ...] = HUMAN_BASELINES + NAS_METHODS + ("sane",),
    seed: int = 0,
) -> Table6Result:
    """Regenerate Table VI at the given scale."""
    cells: dict[str, dict[str, list[float]]] = {m: {} for m in methods}
    architectures: dict[str, str] = {}
    for dataset_name in datasets:
        data = load_dataset(dataset_name, seed=seed, scale=scale.dataset_scale)
        for method in methods:
            if method in HUMAN_BASELINES:
                scores = run_human_baseline(method, data, scale, seed=seed)
            elif method in NAS_METHODS:
                scores = run_nas_method(method, data, scale, seed=seed).test_scores
            elif method == "sane":
                run = run_sane(data, scale, seed=seed)
                scores = run.test_scores
                architectures[dataset_name] = run.architecture.describe()
            else:
                raise ValueError(f"unknown method {method!r}")
            cells[method][dataset_name] = scores

    table = ExperimentTable(
        title="Table VI — transductive (accuracy) and inductive (micro-F1)",
        headers=["method"] + list(datasets),
        cells=cells,
    )
    return Table6Result(table=table, sane_architectures=architectures)
