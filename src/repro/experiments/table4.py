"""Tables IV & V: dataset statistics of the synthetic benchmarks.

Prints the N/E/F/C rows for the four node-classification datasets and
the entity/relation/triple counts of the bilingual KG pair, making the
scale substitution (Section 2 of DESIGN.md) explicit and auditable.
"""

from __future__ import annotations

import dataclasses

from repro.experiments.config import Scale
from repro.experiments.results import render_table
from repro.graph.datasets import dataset_statistics
from repro.kg.data import generate_alignment_dataset

__all__ = ["Table4Result", "run_table4"]


@dataclasses.dataclass
class Table4Result:
    node_rows: list[dict]
    kg_stats: dict

    def render(self) -> str:
        rows = [
            [r["task"], r["dataset"], str(r["N"]), str(r["E"]), str(r["F"]), str(r["C"])]
            for r in self.node_rows
        ]
        table4 = render_table(
            ["task", "dataset", "N", "E", "F", "C"],
            rows,
            title="Table IV — dataset statistics (synthetic analogues)",
        )
        kg_rows = []
        for view in ("kg1", "kg2"):
            stats = self.kg_stats[view]
            kg_rows.append(
                [view, str(stats["entities"]), str(stats["relations"]), str(stats["triples"])]
            )
        links = self.kg_stats["links"]
        table5 = render_table(
            ["view", "entities", "relations", "triples"],
            kg_rows,
            title=(
                "Table V — bilingual KG statistics "
                f"(links: {links['train']}/{links['val']}/{links['test']} train/val/test)"
            ),
        )
        return table4 + "\n\n" + table5


def run_table4(scale: Scale, seed: int = 0) -> Table4Result:
    node_rows = dataset_statistics(seed=seed, scale=scale.dataset_scale)
    kg = generate_alignment_dataset(
        seed=seed, num_core=max(60, int(240 * scale.dataset_scale))
    )
    return Table4Result(node_rows=node_rows, kg_stats=kg.statistics())
