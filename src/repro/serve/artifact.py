"""Versioned trained-model artifacts (``repro export``).

An artifact is one JSON file bundling everything needed to serve a
trained model without re-running search or training:

* the searched **genotype** (when the model came from SANE),
* the **model config** — constructor arguments of the discrete model,
* a **dataset spec** — the seeded synthetic-dataset recipe the model
  was trained on (datasets here are deterministic generators, so the
  recipe *is* the data),
* **feature metadata** for load-time validation,
* **training metadata** (scores at the best-validation epoch),
* the trained **weights** (float64, base64 of the raw little-endian
  bytes — bit-exact round-trip),
* a **format version** and a **content hash** (sha256 over the
  canonical JSON of everything else; verified on load),
* optional **provenance** — the run-ledger id of the ``repro export``
  run that produced the bundle, so serving can resolve its lineage
  back to the producing search (absent from pre-ledger artifacts;
  hash-covered when present).

Unknown versions and hash mismatches raise :class:`ArtifactError`
instead of producing a silently wrong model.
"""

from __future__ import annotations

import base64
import dataclasses
import hashlib
import json
from pathlib import Path

import numpy as np

from repro.core.derive import architecture_to_model
from repro.core.search_space import Architecture
from repro.experiments.config import Scale
from repro.experiments.runners import run_sane, task_settings
from repro.gnn.models import GNNModel, build_baseline
from repro.graph.data import Graph, MultiGraphDataset
from repro.graph.datasets import load_dataset
from repro.kg.align import AlignConfig, GNNAligner, train_aligner
from repro.kg.data import generate_alignment_dataset
from repro.train.trainer import fit

__all__ = [
    "ARTIFACT_VERSION",
    "TASKS",
    "ArtifactError",
    "ModelArtifact",
    "save_artifact",
    "load_artifact",
    "export_architecture",
    "export_search",
    "export_baseline",
    "export_alignment",
]

ARTIFACT_VERSION = 1
TASKS = ("node_classification", "kg_alignment")


class ArtifactError(ValueError):
    """A bundle that cannot be trusted: bad version, hash, or schema."""


def _encode_array(value: np.ndarray) -> dict:
    value = np.ascontiguousarray(value, dtype=np.float64)
    return {
        "shape": list(value.shape),
        "data": base64.b64encode(value.tobytes()).decode("ascii"),
    }


def _decode_array(record: dict) -> np.ndarray:
    raw = base64.b64decode(record["data"].encode("ascii"))
    return np.frombuffer(raw, dtype=np.float64).reshape(record["shape"]).copy()


def _content_hash(body: dict) -> str:
    canonical = json.dumps(
        {k: v for k, v in body.items() if k != "content_hash"},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclasses.dataclass
class ModelArtifact:
    """One exported trained model, serializable to a single JSON file."""

    task: str
    model_config: dict
    dataset: dict
    features: dict
    weights: dict[str, np.ndarray]
    genotype: dict | None = None
    training: dict = dataclasses.field(default_factory=dict)
    # Run-ledger lineage: {"run_id": ..., "command": ..., ...} of the
    # producing `repro export` run. Optional and schema-compatible —
    # the key is simply absent from pre-ledger payloads, and when
    # present it is covered by the content hash like everything else.
    provenance: dict | None = None
    version: int = ARTIFACT_VERSION

    def __post_init__(self):
        if self.task not in TASKS:
            raise ArtifactError(
                f"unknown artifact task {self.task!r}; expected one of {TASKS}"
            )

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """JSON-ready dict with the content hash filled in."""
        body = {
            "version": self.version,
            "task": self.task,
            "genotype": self.genotype,
            "model_config": self.model_config,
            "dataset": self.dataset,
            "features": self.features,
            "training": self.training,
            "weights": {
                name: _encode_array(value)
                for name, value in sorted(self.weights.items())
            },
        }
        if self.provenance is not None:
            body["provenance"] = self.provenance
        body["content_hash"] = _content_hash(body)
        return body

    @classmethod
    def from_payload(cls, payload: dict) -> "ModelArtifact":
        version = payload.get("version")
        if version != ARTIFACT_VERSION:
            raise ArtifactError(
                f"unsupported artifact version {version!r}; this build "
                f"reads version {ARTIFACT_VERSION}"
            )
        expected = payload.get("content_hash")
        actual = _content_hash(payload)
        if expected != actual:
            raise ArtifactError(
                f"artifact content hash mismatch: recorded {expected!r}, "
                f"recomputed {actual!r} — the file was corrupted or edited"
            )
        try:
            return cls(
                task=payload["task"],
                genotype=payload.get("genotype"),
                model_config=dict(payload["model_config"]),
                dataset=dict(payload["dataset"]),
                features=dict(payload["features"]),
                training=dict(payload.get("training") or {}),
                weights={
                    name: _decode_array(record)
                    for name, record in payload["weights"].items()
                },
                provenance=payload.get("provenance"),
                version=version,
            )
        except KeyError as exc:
            raise ArtifactError(f"artifact missing field {exc}") from None

    # ------------------------------------------------------------------
    # instantiation
    # ------------------------------------------------------------------
    def architecture(self) -> Architecture | None:
        """The searched genotype as an :class:`Architecture`, if any."""
        if self.genotype is None:
            return None
        return Architecture(
            node_aggregators=tuple(self.genotype["node_aggregators"]),
            skip_connections=tuple(self.genotype["skip_connections"]),
            layer_aggregator=self.genotype["layer_aggregator"],
        )

    def instantiate(self):
        """Rebuild ``(model, data)`` from the bundle.

        The dataset is regenerated from its seeded recipe; the model is
        constructed (any rng — the weights are then overwritten by the
        stored state dict) and left in eval mode, ready for tape-free
        inference.
        """
        if self.task == "kg_alignment":
            return self._instantiate_alignment()
        return self._instantiate_node_classification()

    def _instantiate_node_classification(self):
        spec = self.dataset
        data = load_dataset(spec["name"], seed=spec["seed"], scale=spec["scale"])
        if data.num_features != self.features["num_features"]:
            raise ArtifactError(
                f"regenerated dataset has {data.num_features} features, "
                f"artifact was trained on {self.features['num_features']} — "
                "dataset recipe drifted"
            )
        config = self.model_config
        model = GNNModel(
            in_dim=config["in_dim"],
            hidden_dim=config["hidden_dim"],
            num_classes=config["num_classes"],
            node_aggregators=list(config["node_aggregators"]),
            rng=np.random.default_rng(0),
            skip_connections=(
                list(config["skip_connections"])
                if config.get("skip_connections") is not None
                else None
            ),
            layer_aggregator=config.get("layer_aggregator"),
            dropout=config.get("dropout", 0.5),
            activation=config.get("activation") or "relu",
            heads=config.get("heads", 1),
        )
        model.load_state_dict(self.weights)
        model.eval()
        return model, data

    def _instantiate_alignment(self):
        spec = self.dataset
        dataset = generate_alignment_dataset(
            seed=spec["seed"], num_core=spec["num_core"]
        )
        config = self.model_config
        model = GNNAligner(
            dataset,
            node_aggregators=list(config["node_aggregators"]),
            dim=config["dim"],
            rng=np.random.default_rng(0),
            activation=config.get("activation", "tanh"),
        )
        model.load_state_dict(self.weights)
        model.eval()
        return model, dataset


# ----------------------------------------------------------------------
# file I/O
# ----------------------------------------------------------------------
def save_artifact(artifact: ModelArtifact, path: str | Path) -> Path:
    """Write the bundle as one JSON file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(artifact.to_payload(), sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def load_artifact(path: str | Path) -> ModelArtifact:
    """Read, version-check, hash-verify and decode one bundle."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"{path}: not valid JSON ({exc})") from None
    if not isinstance(payload, dict):
        raise ArtifactError(f"{path}: artifact must be a JSON object")
    return ModelArtifact.from_payload(payload)


# ----------------------------------------------------------------------
# exporters (the `repro export` backends)
# ----------------------------------------------------------------------
def export_architecture(
    arch: Architecture,
    dataset_name: str,
    scale: Scale,
    seed: int = 0,
) -> ModelArtifact:
    """Train a known genotype once and bundle the result.

    This is the shared tail of every node-classification export:
    per-task hyper-parameters from :func:`task_settings`, one
    :func:`fit` (which leaves the model loaded with its
    best-validation weights), then the state dict into the bundle.
    """
    data = load_dataset(dataset_name, seed=seed, scale=scale.dataset_scale)
    settings = task_settings(data, scale)
    model = architecture_to_model(
        arch,
        in_dim=data.num_features,
        num_classes=data.num_classes,
        rng=np.random.default_rng(seed),
        hidden_dim=scale.hidden_dim,
        dropout=settings.dropout,
        activation=settings.activation,
    )
    result = fit(model, data, settings.train_config)
    genotype = {
        "node_aggregators": list(arch.node_aggregators),
        "skip_connections": list(arch.skip_connections),
        "layer_aggregator": arch.layer_aggregator,
    }
    return _bundle_node_model(
        model, data, dataset_name, scale, seed, result,
        activation=settings.activation, genotype=genotype,
    )


def export_search(
    dataset_name: str,
    scale: Scale,
    seed: int = 0,
    num_layers: int = 3,
    epsilon: float = 0.0,
) -> ModelArtifact:
    """Run the full SANE pipeline, then export the winning genotype."""
    data = load_dataset(dataset_name, seed=seed, scale=scale.dataset_scale)
    run = run_sane(
        data, scale, seed=seed, num_layers=num_layers, epsilon=epsilon
    )
    return export_architecture(run.architecture, dataset_name, scale, seed=seed)


def export_baseline(
    name: str,
    dataset_name: str,
    scale: Scale,
    seed: int = 0,
) -> ModelArtifact:
    """Train and bundle a human-designed baseline (no genotype)."""
    if name == "lgcn":
        raise ArtifactError(
            "lgcn is not exportable: it is not a GNNModel and the v1 "
            "artifact schema only describes the generic stacked model"
        )
    data = load_dataset(dataset_name, seed=seed, scale=scale.dataset_scale)
    settings = task_settings(data, scale)
    model = build_baseline(
        name,
        data.num_features,
        data.num_classes,
        np.random.default_rng(seed),
        hidden_dim=scale.hidden_dim,
        num_layers=3,
        dropout=settings.dropout,
        activation=settings.activation,
        jk_mode=settings.jk_mode,
    )
    result = fit(model, data, settings.train_config)
    return _bundle_node_model(
        model, data, dataset_name, scale, seed, result,
        activation=settings.activation,
    )


def export_alignment(
    scale: Scale,
    seed: int = 0,
    node_aggregators: tuple[str, ...] = ("gat", "geniepath"),
) -> ModelArtifact:
    """Train and bundle a KG entity-alignment encoder.

    Defaults to the paper's searched "GAT-GeniePath" combination; the
    dataset recipe follows the Table VIII convention for ``num_core``.
    """
    num_core = max(60, int(240 * scale.dataset_scale))
    dataset = generate_alignment_dataset(seed=seed, num_core=num_core)
    config = AlignConfig(
        epochs=scale.train_epochs,
        patience=scale.train_patience,
        embedding_dim=scale.hidden_dim,
    )
    model = GNNAligner(
        dataset,
        node_aggregators=list(node_aggregators),
        dim=config.embedding_dim,
        rng=np.random.default_rng(seed),
    )
    result = train_aligner(model, dataset, config, seed=seed)
    return ModelArtifact(
        task="kg_alignment",
        genotype={"node_aggregators": list(node_aggregators)},
        model_config={
            "node_aggregators": list(node_aggregators),
            "dim": config.embedding_dim,
            "activation": "tanh",
        },
        dataset={"kind": "alignment", "seed": seed, "num_core": num_core},
        features={
            "num_entities_1": dataset.kg1.num_entities,
            "num_entities_2": dataset.kg2.num_entities,
        },
        training={
            "val_hits1": result.val_hits1,
            "best_epoch": result.best_epoch,
        },
        weights=model.state_dict(),
    )


def _bundle_node_model(
    model: GNNModel,
    data: Graph | MultiGraphDataset,
    dataset_name: str,
    scale: Scale,
    seed: int,
    result,
    activation: str,
    genotype: dict | None = None,
) -> ModelArtifact:
    is_multilabel = isinstance(data, MultiGraphDataset) or data.is_multilabel
    return ModelArtifact(
        task="node_classification",
        genotype=genotype,
        model_config={
            "in_dim": data.num_features,
            "hidden_dim": model.hidden_dim,
            "num_classes": data.num_classes,
            "node_aggregators": list(model.node_aggregator_names),
            "skip_connections": list(model.skip_connections),
            "layer_aggregator": model.layer_aggregator_name,
            "dropout": model.dropout.p,
            "activation": activation,
            "heads": 1,
        },
        dataset={
            "name": dataset_name,
            "seed": seed,
            "scale": scale.dataset_scale,
        },
        features={
            "num_features": data.num_features,
            "num_classes": data.num_classes,
            "multilabel": is_multilabel,
        },
        training={
            "val_score": result.val_score,
            "test_score": result.test_score,
            "best_epoch": result.best_epoch,
        },
        weights=model.state_dict(),
    )
