"""Deterministic closed-loop load generator + the throughput bench.

Simulates N concurrent clients against a :class:`~repro.serve.server.
ServeServer` without N OS threads: each sweep level keeps N requests
outstanding (submit a wave of N ``submit_async``, block on all
results, repeat) until the level's request budget is spent. The
request *sequence* — which node ids each request asks for — is fully
seeded, so two runs issue byte-identical work; only wall-clock
varies, and the bench gate applies its wall-clock tolerance to
exactly those numbers.

Per level the sweep reports requests/s and nearest-rank p50/p99
enqueue→resolve latency, published as ``serve.c<N>.rps`` /
``serve.c<N>.p50_latency_s`` / ``serve.c<N>.p99_latency_s`` gauges —
names chosen so the bench gate's token inference reads them as
higher-is-better wall-clock ratio and lower-is-better wall-clock
respectively.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
from pathlib import Path

import numpy as np

from repro import obs
from repro.obs import MetricsRegistry, TRACE_VERSION, aggregate_spans
from repro.obs.report import format_table
from repro.serve.metrics import nearest_rank_percentile
from repro.serve.server import ServeServer

__all__ = [
    "LevelResult",
    "sweep_levels",
    "run_load",
    "render_load_report",
    "bench_metrics",
    "emit_serve_bench",
]

# 1 → 10k simulated clients at full scale; the smaller presets keep the
# smoke/default sweeps inside CI budgets while preserving ≥3 levels.
_SWEEPS = {
    "smoke": (1, 4, 16),
    "default": (1, 8, 64, 256),
    "full": (1, 10, 100, 1000, 10000),
}


def sweep_levels(scale_name: str) -> tuple[int, ...]:
    """Concurrency levels for one scale preset."""
    try:
        return _SWEEPS[scale_name]
    except KeyError:
        raise ValueError(
            f"unknown scale {scale_name!r}; choose from {sorted(_SWEEPS)}"
        ) from None


@dataclasses.dataclass
class LevelResult:
    """Throughput/latency summary of one concurrency level.

    ``p99_trace`` is the exemplar: the trace id of the request whose
    latency *is* the level's p99, so the tail number links to a
    concrete span tree in the trace file.
    """

    concurrency: int
    requests: int
    wall_s: float
    rps: float
    p50_s: float
    p99_s: float
    p99_trace: str | None = None


def _percentile_with_trace(
    pairs: list[tuple[float, str | None]], q: float
) -> tuple[float, str | None]:
    """Nearest-rank percentile over (latency, trace id) pairs."""
    ordered = sorted(pairs, key=lambda pair: pair[0])
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def run_load(
    server: ServeServer,
    levels: tuple[int, ...],
    requests_per_level: int,
    seed: int = 0,
    ids_per_request: int = 4,
    deadline_s: float | None = None,
) -> list[LevelResult]:
    """Closed-loop sweep over ``levels``; the server must be started."""
    num_targets = server.engine.num_targets
    rng = np.random.default_rng(seed)
    results: list[LevelResult] = []
    for level in levels:
        samples: list[tuple[float, str | None]] = []
        span = obs.span(
            "serve.loadgen.level", kind="serve", concurrency=level
        ).start()
        done = 0
        while done < requests_per_level:
            wave = min(level, requests_per_level - done)
            pendings = [
                server.submit_async(
                    node_ids=rng.integers(0, num_targets, size=ids_per_request),
                    deadline_s=deadline_s,
                )
                for __ in range(wave)
            ]
            for pending in pendings:
                pending.result()
                samples.append((pending.latency, pending.trace_id))
            done += wave
        span.finish()
        wall = span.duration
        p99, p99_trace = _percentile_with_trace(samples, 99.0)
        results.append(
            LevelResult(
                concurrency=level,
                requests=done,
                wall_s=wall,
                rps=done / wall if wall > 0 else float("inf"),
                p50_s=nearest_rank_percentile(
                    [latency for latency, _ in samples], 50.0
                ),
                p99_s=p99,
                p99_trace=p99_trace,
            )
        )
    return results


def render_load_report(results: list[LevelResult]) -> str:
    """Human-readable sweep table (the CLI prints it)."""
    rows = [
        [
            str(result.concurrency),
            str(result.requests),
            f"{result.wall_s:.3f}",
            f"{result.rps:.1f}",
            f"{result.p50_s * 1e3:.2f}",
            f"{result.p99_s * 1e3:.2f}",
            result.p99_trace or "-",
        ]
        for result in results
    ]
    lines = format_table(
        ["clients", "requests", "wall_s", "req/s", "p50_ms", "p99_ms",
         "p99_trace"],
        rows,
    )
    return "\n".join(lines)


def bench_metrics(
    results: list[LevelResult],
    registry: MetricsRegistry | None = None,
) -> MetricsRegistry:
    """Publish per-level gauges in the bench-gate naming scheme."""
    registry = registry if registry is not None else MetricsRegistry()
    for result in results:
        prefix = f"serve.c{result.concurrency}"
        registry.gauge(f"{prefix}.rps").set(result.rps)
        registry.gauge(f"{prefix}.p50_latency_s").set(result.p50_s)
        registry.gauge(f"{prefix}.p99_latency_s").set(result.p99_s)
    return registry


def emit_serve_bench(
    name: str,
    results: list[LevelResult],
    spans=(),
    registry: MetricsRegistry | None = None,
    extra: dict | None = None,
) -> Path:
    """Write a ``BENCH_<name>.json`` payload for the regression gate.

    Same shape as ``benchmarks/common.py::emit_metrics`` (the gate
    reads either interchangeably); lives here so ``repro serve
    --bench`` works from an installed package without the benchmarks
    tree on the path.
    """
    registry = bench_metrics(results, registry)
    out_dir = Path(os.environ.get("REPRO_BENCH_DIR", "."))
    out_dir.mkdir(parents=True, exist_ok=True)
    payload = {
        "bench": name,
        "version": TRACE_VERSION,
        "scale": os.environ.get("REPRO_SCALE", "default"),
        "spans": [
            {
                "path": agg.path,
                "count": agg.count,
                "total_s": agg.total,
                "self_s": agg.self_time,
                "mean_s": agg.mean,
                "min_s": agg.minimum,
                "max_s": agg.maximum,
            }
            for agg in aggregate_spans(spans)
        ],
        "metrics": registry.snapshot(),
        "extra": dict(extra or {}),
    }
    path = out_dir / f"BENCH_{name}.json"
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path
