"""Content-keyed LRU cache of per-graph segment plans.

Every inference forward needs a :class:`~repro.gnn.common.GraphCache`
— the self-loop edge arrays, GCN weights and CSR
:class:`~repro.autograd.kernels.SegmentPlan` layouts of the request's
graph. Building one costs several sorts over the edge list, so the
serving path must not rebuild it per request; but unlike training
(one long-lived graph), a server sees an open-ended stream of graphs
(inductive requests carry their own), so the cache must also be
bounded.

:class:`PlanCache` generalizes the identity-keyed ``_PLAN_MEMO`` in
:mod:`repro.autograd.kernels`: it is keyed by graph *content* (sha256
of the edge index bytes + node/feature counts), so two
deserialized-but-equal copies of a graph share one entry, and it
holds whole ``GraphCache`` objects (every plan of the graph at once)
behind the same :class:`~repro.autograd.kernels.LruMap` eviction the
plan memo uses. Eviction policy: least-recently-*served* graph goes
first; capacity defaults small because each entry pins O(E) arrays.
"""

from __future__ import annotations

import hashlib

from repro.autograd.kernels import LruMap
from repro.gnn.common import GraphCache
from repro.graph.data import Graph

__all__ = ["PlanCache", "graph_key"]


def graph_key(graph: Graph) -> str:
    """Content fingerprint of a graph's structure.

    Two graphs with the same edges, node count and feature width share
    a key (features *values* are deliberately excluded — the plans
    only depend on structure, and requests re-submit the same graph
    object with its features attached).
    """
    digest = hashlib.sha256()
    digest.update(graph.edge_index.tobytes())
    digest.update(f"|{graph.num_nodes}|{graph.num_features}".encode("ascii"))
    return digest.hexdigest()


class PlanCache:
    """Bounded content-keyed cache of :class:`GraphCache` objects."""

    def __init__(self, capacity: int = 8):
        self._entries = LruMap(capacity=capacity)
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def capacity(self) -> int:
        return self._entries.capacity

    def get(self, graph: Graph) -> GraphCache:
        """The graph's plans, building (and possibly evicting) on miss."""
        key = graph_key(graph)
        cache = self._entries.get(key)
        if cache is not None:
            self.hits += 1
            return cache
        self.misses += 1
        cache = GraphCache(graph)
        self.evictions += len(self._entries.put(key, cache))
        return cache

    def stats(self) -> dict:
        return {
            "size": len(self),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
