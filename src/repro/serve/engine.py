"""The batching inference engine: coalesced, tape-free forwards.

A request names target rows (node ids for classification, kg1 entity
ids for alignment) and optionally carries its own graph (the
inductive case). The engine groups a batch's requests by graph and
runs **one** full-graph forward per distinct graph per batch — the
coalescing that makes concurrent single-node requests cheap: the
forward cost is per-graph, so a batch of N requests over one graph
pays it once instead of N times.

Every forward runs inside ``no_grad()``, so no tape is built — no
backward closures, no retained intermediates (the ``tape-in-inference``
lint rule keeps it that way). Predictions are sliced from the shared
logits, which makes batched results bit-identical to single-request
results by construction: both slice the same deterministic eval-mode
forward.

Per-graph plans come from the content-keyed :class:`~repro.serve.plans.
PlanCache`; the artifact's own graph is pinned outside the LRU so a
burst of foreign graphs can never evict the primary workload's plans.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import obs
from repro.autograd import no_grad
from repro.graph.data import Graph, MultiGraphDataset
from repro.obs.context import TraceContext, context_span, mirror_span
from repro.serve.artifact import ModelArtifact
from repro.serve.metrics import ServeMetrics
from repro.serve.plans import PlanCache

__all__ = ["Request", "InferenceEngine"]


@dataclasses.dataclass
class Request:
    """One prediction request.

    ``node_ids`` — target rows (``None`` = every node/entity);
    ``graph`` — an explicit graph for inductive requests (``None`` =
    the artifact's default graph; must be ``None`` for alignment,
    whose encoder is bound to its KG pair);
    ``ctx`` — the request's trace context, set by ``ServeServer``; the
    engine attaches its ``forward``/``slice`` stage spans to it
    (``None`` — direct ``predict()`` calls — records no stages);
    ``deadline_s`` — latency SLO for this request (accounting only).
    """

    node_ids: np.ndarray | None = None
    graph: Graph | None = None
    ctx: TraceContext | None = None
    deadline_s: float | None = None


class InferenceEngine:
    """Executes coalesced prediction batches over one loaded model."""

    def __init__(
        self,
        model,
        data,
        task: str = "node_classification",
        plan_capacity: int = 8,
        metrics: ServeMetrics | None = None,
    ):
        self.model = model.eval()
        self.data = data
        self.task = task
        self.metrics = metrics if metrics is not None else ServeMetrics()
        self.plan_cache = PlanCache(capacity=plan_capacity)
        if task == "node_classification":
            self._default_graph = self._pick_default_graph(data)
            # Pinned: the primary graph's plans never fall out of the LRU.
            self._default_cache = self.plan_cache.get(self._default_graph)
        else:
            self._default_graph = None
            self._default_cache = None

    @classmethod
    def from_artifact(
        cls,
        artifact: ModelArtifact,
        plan_capacity: int = 8,
        metrics: ServeMetrics | None = None,
    ) -> "InferenceEngine":
        model, data = artifact.instantiate()
        return cls(
            model,
            data,
            task=artifact.task,
            plan_capacity=plan_capacity,
            metrics=metrics,
        )

    @staticmethod
    def _pick_default_graph(data) -> Graph:
        if isinstance(data, MultiGraphDataset):
            graphs = data.test_graphs or data.train_graphs
            return graphs[0]
        return data

    # ------------------------------------------------------------------
    @property
    def num_targets(self) -> int:
        """Valid id range for requests against the default graph."""
        if self.task == "kg_alignment":
            return self.data.kg1.num_entities
        return self._default_graph.num_nodes

    def predict(
        self,
        node_ids: np.ndarray | None = None,
        graph: Graph | None = None,
    ) -> np.ndarray:
        """Single-request convenience; a batch of one."""
        return self.predict_batch([Request(node_ids=node_ids, graph=graph)])[0]

    def predict_batch(self, requests: list[Request]) -> list[np.ndarray]:
        """One coalesced pass; results align with ``requests`` by index."""
        if not requests:
            return []
        with obs.span("serve.batch", kind="serve", size=len(requests)):
            self.metrics.observe_batch(len(requests))
            if self.task == "kg_alignment":
                results = self._run_alignment_batch(requests)
            else:
                results = self._run_classification_batch(requests)
            self.metrics.observe_plan_cache(self.plan_cache.stats())
            return results

    # ------------------------------------------------------------------
    def _run_classification_batch(
        self, requests: list[Request]
    ) -> list[np.ndarray]:
        # Group by graph identity within the batch; the content-keyed
        # plan cache then dedupes across batches.
        groups: dict[int, tuple[Graph, list[int]]] = {}
        for index, request in enumerate(requests):
            graph = request.graph if request.graph is not None else self._default_graph
            groups.setdefault(id(graph), (graph, []))[1].append(index)

        results: list[np.ndarray | None] = [None] * len(requests)
        for graph, indices in groups.values():
            if graph is self._default_graph:
                cache = self._default_cache
            else:
                cache = self.plan_cache.get(graph)
            with obs.span(
                "serve.forward", kind="serve",
                graph=graph.name, requests=len(indices),
            ) as forward_span:
                with no_grad():
                    logits = self.model.forward(graph.features, cache).numpy()
            for index in indices:
                request = requests[index]
                self._mirror_forward(
                    request, forward_span, graph.name, len(indices)
                )
                slice_span = self._start_slice(request)
                ids = request.node_ids
                if ids is None:
                    results[index] = logits
                else:
                    results[index] = np.take(logits, ids, axis=0)
                self._finish_slice(request, slice_span)
        return results

    # ------------------------------------------------------------------
    # per-request stage spans (no-ops when the request has no context,
    # i.e. direct predict() calls outside a ServeServer)
    # ------------------------------------------------------------------
    def _mirror_forward(self, request, forward_span, graph_name, shared):
        """One coalesced forward serves ``shared`` trees: mirror its
        window into each request's trace as that tree's forward stage."""
        if request.ctx is None:
            return
        mirrored = mirror_span(
            "forward", request.ctx,
            forward_span.t_start, forward_span.t_end,
            graph=graph_name, shared=shared,
        )
        self.metrics.observe_stage(
            "forward", mirrored.duration, request.ctx.trace_id
        )

    def _start_slice(self, request):
        if request.ctx is None:
            return None
        return context_span("slice", request.ctx)

    def _finish_slice(self, request, slice_span) -> None:
        if slice_span is None:
            return
        slice_span.finish()
        self.metrics.observe_stage(
            "slice", slice_span.duration, request.ctx.trace_id
        )

    def _run_alignment_batch(self, requests: list[Request]) -> list[np.ndarray]:
        for request in requests:
            if request.graph is not None:
                raise ValueError(
                    "alignment requests cannot carry a graph: the encoder "
                    "is bound to the artifact's KG pair"
                )
        with obs.span(
            "serve.forward", kind="serve", graph="kg-pair",
            requests=len(requests),
        ) as forward_span:
            with no_grad():
                z1_t, z2_t = self.model.encode()
            z1, z2 = z1_t.numpy(), z2_t.numpy()
        results = []
        for request in requests:
            self._mirror_forward(
                request, forward_span, "kg-pair", len(requests)
            )
            slice_span = self._start_slice(request)
            anchors = z1 if request.node_ids is None else np.take(
                z1, request.node_ids, axis=0
            )
            # Negative L1 distance to every kg2 entity: the alignment
            # score matrix the Hits@k metrics rank.
            scores = -np.abs(anchors[:, None, :] - z2[None, :, :]).sum(axis=-1)
            results.append(scores)
            self._finish_slice(request, slice_span)
        return results
