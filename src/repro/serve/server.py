"""Synchronous-API, threaded-worker batching server.

Callers submit requests from any thread; worker threads drain the
queue in batches of up to ``max_batch`` and hand them to the
:class:`~repro.serve.engine.InferenceEngine` as one coalesced
``predict_batch``. The queue is the batching mechanism: requests that
arrive while a batch is in flight pile up and are coalesced into the
next one, so throughput rises with concurrency while each forward
stays full-graph-sized.

The API is synchronous (``submit`` blocks until the prediction is
ready) with an async escape hatch (``submit_async`` returns a
:class:`PendingRequest` whose ``result()`` blocks) — which is exactly
what a closed-loop load generator needs to simulate N outstanding
clients without N OS threads.

Latency is measured enqueue→resolve on the tracer's clock
(injectable, like every clock in ``repro.obs``), so tests can drive
the timeline deterministically.
"""

from __future__ import annotations

import threading

from repro.obs import get_tracer
from repro.serve.engine import InferenceEngine, Request

__all__ = ["PendingRequest", "ServeServer"]


class PendingRequest:
    """A submitted request; resolves to its prediction or an error."""

    __slots__ = (
        "request", "enqueued_at", "resolved_at", "_event", "_value", "_error",
    )

    def __init__(self, request: Request, enqueued_at: float):
        self.request = request
        self.enqueued_at = enqueued_at
        self.resolved_at: float | None = None
        self._event = threading.Event()
        self._value = None
        self._error: BaseException | None = None

    def _resolve(self, value, at: float) -> None:
        self._value = value
        self.resolved_at = at
        self._event.set()

    def _fail(self, error: BaseException, at: float) -> None:
        self._error = error
        self.resolved_at = at
        self._event.set()

    @property
    def latency(self) -> float | None:
        """Enqueue→resolve seconds (``None`` while still pending)."""
        if self.resolved_at is None:
            return None
        return self.resolved_at - self.enqueued_at

    def result(self, timeout: float | None = None):
        """Block until resolved; re-raises the engine's error, if any."""
        if not self._event.wait(timeout):
            raise TimeoutError("prediction not ready within timeout")
        if self._error is not None:
            raise self._error
        return self._value


class ServeServer:
    """Queue + worker threads around one inference engine."""

    def __init__(
        self,
        engine: InferenceEngine,
        max_batch: int = 64,
        workers: int = 1,
        clock=None,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.engine = engine
        self.metrics = engine.metrics
        self.max_batch = max_batch
        self._clock = clock if clock is not None else get_tracer().clock
        self._queue: list[PendingRequest] = []
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._threads: list[threading.Thread] = [None] * workers
        self._stopping = False
        self._started = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ServeServer":
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        self._stopping = False
        for index in range(len(self._threads)):
            thread = threading.Thread(
                target=self._worker, name=f"repro-serve-{index}", daemon=True
            )
            self._threads[index] = thread
            thread.start()
        return self

    def stop(self) -> None:
        """Drain the queue, then stop the workers."""
        if not self._started:
            return
        with self._not_empty:
            self._stopping = True
            self._not_empty.notify_all()
        for thread in self._threads:
            thread.join()
        self._started = False

    def __enter__(self) -> "ServeServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit_async(self, node_ids=None, graph=None) -> PendingRequest:
        """Enqueue a request; returns a handle that resolves later."""
        pending = PendingRequest(
            Request(node_ids=node_ids, graph=graph), self._clock()
        )
        with self._not_empty:
            if self._stopping or not self._started:
                raise RuntimeError("server is not accepting requests")
            self._queue.append(pending)
            depth = len(self._queue)
            self._not_empty.notify()
        self.metrics.observe_requests()
        self.metrics.observe_queue_depth(depth)
        return pending

    def submit(self, node_ids=None, graph=None, timeout: float | None = None):
        """Synchronous predict: enqueue and block for the result."""
        return self.submit_async(node_ids=node_ids, graph=graph).result(timeout)

    # ------------------------------------------------------------------
    # worker
    # ------------------------------------------------------------------
    def _worker(self) -> None:
        while True:
            with self._not_empty:
                while not self._queue and not self._stopping:
                    self._not_empty.wait()
                if not self._queue:
                    return  # stopping and drained
                batch = self._queue[: self.max_batch]
                del self._queue[: len(batch)]
                depth = len(self._queue)
            self.metrics.observe_queue_depth(depth)
            try:
                results = self.engine.predict_batch(
                    [pending.request for pending in batch]
                )
            except Exception as error:  # resolve, don't kill the worker
                now = self._clock()
                for pending in batch:
                    pending._fail(error, now)
                continue
            now = self._clock()
            for pending, value in zip(batch, results):
                pending._resolve(value, now)
                self.metrics.observe_latency(pending.latency)
