"""Synchronous-API, threaded-worker batching server.

Callers submit requests from any thread; worker threads drain the
queue in batches of up to ``max_batch`` and hand them to the
:class:`~repro.serve.engine.InferenceEngine` as one coalesced
``predict_batch``. The queue is the batching mechanism: requests that
arrive while a batch is in flight pile up and are coalesced into the
next one, so throughput rises with concurrency while each forward
stays full-graph-sized.

The API is synchronous (``submit`` blocks until the prediction is
ready) with an async escape hatch (``submit_async`` returns a
:class:`PendingRequest` whose ``result()`` blocks) — which is exactly
what a closed-loop load generator needs to simulate N outstanding
clients without N OS threads.

Every request carries a :class:`~repro.obs.context.RequestTrace`:
the root ``serve.request`` span opens at submission, stage spans
(``enqueue``, ``queue_wait``, ``batch_assemble``, ``resolve`` here;
``forward``/``slice`` in the engine) attach to it by explicit parent
id, and the tree closes when the request resolves — so N concurrent
requests produce N disjoint span trees regardless of which worker
thread finishes them. Tracing is always on: spans cost two clock reads
each, draw nothing from any RNG, and are discarded unless a sink is
attached, so traced serving output is bit-identical to untraced.

Latency is measured enqueue→resolve on the tracer's clock
(injectable, like every clock in ``repro.obs``), so tests can drive
the timeline deterministically. A request may carry a ``deadline_s``;
deadlines are *accounting-only* (the SLO counters record misses, no
request is shed), which keeps result identity independent of timing.
"""

from __future__ import annotations

import threading

from repro.obs import get_tracer
from repro.obs.context import RequestTrace, RequestTracer
from repro.serve.engine import InferenceEngine, Request

__all__ = ["PendingRequest", "ServeServer"]


class PendingRequest:
    """A submitted request; resolves to its prediction or an error."""

    __slots__ = (
        "request", "enqueued_at", "resolved_at", "trace",
        "_queue_wait", "_event", "_value", "_error",
    )

    def __init__(
        self,
        request: Request,
        enqueued_at: float,
        trace: RequestTrace | None = None,
    ):
        self.request = request
        self.enqueued_at = enqueued_at
        self.resolved_at: float | None = None
        self.trace = trace
        self._queue_wait = None  # open queue_wait span, finished by a worker
        self._event = threading.Event()
        self._value = None
        self._error: BaseException | None = None

    def _resolve(self, value, at: float) -> None:
        self._value = value
        self.resolved_at = at
        self._event.set()

    def _fail(self, error: BaseException, at: float) -> None:
        self._error = error
        self.resolved_at = at
        self._event.set()

    @property
    def trace_id(self) -> str | None:
        return self.trace.trace_id if self.trace is not None else None

    @property
    def latency(self) -> float | None:
        """Enqueue→resolve seconds (``None`` while still pending)."""
        if self.resolved_at is None:
            return None
        return self.resolved_at - self.enqueued_at

    def result(self, timeout: float | None = None):
        """Block until resolved; re-raises the engine's error, if any."""
        if not self._event.wait(timeout):
            raise TimeoutError("prediction not ready within timeout")
        if self._error is not None:
            raise self._error
        return self._value


class ServeServer:
    """Queue + worker threads around one inference engine."""

    def __init__(
        self,
        engine: InferenceEngine,
        max_batch: int = 64,
        workers: int = 1,
        clock=None,
        request_tracer: RequestTracer | None = None,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.engine = engine
        self.metrics = engine.metrics
        self.max_batch = max_batch
        self._clock = clock if clock is not None else get_tracer().clock
        self.request_tracer = (
            request_tracer if request_tracer is not None else RequestTracer()
        )
        self._queue: list[PendingRequest] = []
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._threads: list[threading.Thread] = [None] * workers
        self._stopping = False
        self._started = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ServeServer":
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        self._stopping = False
        for index in range(len(self._threads)):
            thread = threading.Thread(
                target=self._worker, name=f"repro-serve-{index}", daemon=True
            )
            self._threads[index] = thread
            thread.start()
        return self

    def stop(self) -> None:
        """Drain the queue, then stop the workers."""
        if not self._started:
            return
        with self._not_empty:
            self._stopping = True
            self._not_empty.notify_all()
        for thread in self._threads:
            thread.join()
        self._started = False

    def __enter__(self) -> "ServeServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def _record_stage(self, trace: RequestTrace, span) -> None:
        self.metrics.observe_stage(span.name, span.duration, trace.trace_id)

    def submit_async(
        self, node_ids=None, graph=None, deadline_s=None
    ) -> PendingRequest:
        """Enqueue a request; returns a handle that resolves later."""
        trace = self.request_tracer.start_request()
        with trace.stage("enqueue") as enqueue_span:
            pending = PendingRequest(
                Request(
                    node_ids=node_ids, graph=graph,
                    ctx=trace.context, deadline_s=deadline_s,
                ),
                self._clock(),
                trace=trace,
            )
            # queue_wait must open before the append: once notified, a
            # worker may pick the request up (and finish this span)
            # before submit_async regains the GIL.
            pending._queue_wait = trace.stage("queue_wait")
            with self._not_empty:
                if self._stopping or not self._started:
                    pending._queue_wait.finish()
                    trace.finish(status="rejected")
                    raise RuntimeError("server is not accepting requests")
                self._queue.append(pending)
                depth = len(self._queue)
                self._not_empty.notify()
        self._record_stage(trace, enqueue_span)
        self.metrics.observe_requests()
        self.metrics.observe_queue_depth(depth)
        return pending

    def submit(
        self, node_ids=None, graph=None,
        timeout: float | None = None, deadline_s=None,
    ):
        """Synchronous predict: enqueue and block for the result."""
        return self.submit_async(
            node_ids=node_ids, graph=graph, deadline_s=deadline_s
        ).result(timeout)

    # ------------------------------------------------------------------
    # worker
    # ------------------------------------------------------------------
    def _worker(self) -> None:
        while True:
            with self._not_empty:
                while not self._queue and not self._stopping:
                    self._not_empty.wait()
                if not self._queue:
                    return  # stopping and drained
                batch = self._queue[: self.max_batch]
                del self._queue[: len(batch)]
                depth = len(self._queue)
            self.metrics.observe_queue_depth(depth)
            # Cross the boundary: this worker closes each request's
            # queue_wait (opened on the client thread) and times batch
            # assembly — dequeue to the moment the engine takes over.
            assembling = []
            for pending in batch:
                pending._queue_wait.finish()
                self._record_stage(pending.trace, pending._queue_wait)
                assembling.append(
                    pending.trace.stage("batch_assemble", batch=len(batch))
                )
            requests = [pending.request for pending in batch]
            for pending, span in zip(batch, assembling):
                span.finish()
                self._record_stage(pending.trace, span)
            try:
                results = self.engine.predict_batch(requests)
            except Exception as error:  # resolve, don't kill the worker
                now = self._clock()
                for pending in batch:
                    with pending.trace.stage("resolve") as resolve_span:
                        pending._fail(error, now)
                    self._record_stage(pending.trace, resolve_span)
                    self.metrics.observe_error()
                    pending.trace.finish(
                        status="error", error=type(error).__name__
                    )
                continue
            now = self._clock()
            for pending, value in zip(batch, results):
                with pending.trace.stage("resolve") as resolve_span:
                    pending._resolve(value, now)
                self._record_stage(pending.trace, resolve_span)
                latency = pending.latency
                self.metrics.observe_latency(latency, pending.trace_id)
                status = "ok"
                deadline = pending.request.deadline_s
                if deadline is not None and latency > deadline:
                    self.metrics.observe_deadline_exceeded()
                    status = "deadline_exceeded"
                pending.trace.finish(status=status, latency_s=latency)
