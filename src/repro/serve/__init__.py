"""Serving: trained-model artifacts and a batching inference engine.

Search produces a deployable genotype (the derived
:class:`~repro.core.search_space.Architecture`); this subsystem is
what happens *after* the search finishes — the consumer the fused
kernels and per-kernel counters were built for. Three layers:

* :mod:`repro.serve.artifact` — a versioned, content-hashed bundle of
  genotype + trained weights + dataset/feature metadata, produced by
  ``repro export`` and loadable without re-running search;
* :mod:`repro.serve.plans` + :mod:`repro.serve.engine` +
  :mod:`repro.serve.server` — a content-keyed LRU of per-graph
  :class:`~repro.gnn.common.GraphCache` plans, an inference engine
  that coalesces concurrent requests into single tape-free forward
  passes, and the synchronous-API/threaded-worker server on top;
* :mod:`repro.serve.metrics` + :mod:`repro.serve.loadgen` — serve
  instruments (queue depth, batch size, p50/p99 latency, requests/s)
  and the deterministic closed-loop load generator behind
  ``repro serve --bench`` / ``benchmarks/bench_serve_throughput.py``.

Quickstart::

    from repro.serve import load_artifact, InferenceEngine, ServeServer

    artifact = load_artifact("artifact.json")
    engine = InferenceEngine.from_artifact(artifact)
    with ServeServer(engine) as server:
        logits = server.submit(node_ids=[0, 1, 2])
"""

from repro.serve.artifact import (
    ARTIFACT_VERSION,
    ArtifactError,
    ModelArtifact,
    export_alignment,
    export_architecture,
    export_baseline,
    export_search,
    load_artifact,
    save_artifact,
)
from repro.serve.engine import InferenceEngine, Request
from repro.serve.loadgen import (
    LevelResult,
    bench_metrics,
    emit_serve_bench,
    render_load_report,
    run_load,
    sweep_levels,
)
from repro.serve.metrics import Reservoir, ServeMetrics, nearest_rank_percentile
from repro.serve.plans import PlanCache
from repro.serve.server import PendingRequest, ServeServer

__all__ = [
    "ARTIFACT_VERSION",
    "ArtifactError",
    "ModelArtifact",
    "export_alignment",
    "export_architecture",
    "export_baseline",
    "export_search",
    "load_artifact",
    "save_artifact",
    "InferenceEngine",
    "Request",
    "PlanCache",
    "Reservoir",
    "ServeMetrics",
    "nearest_rank_percentile",
    "ServeServer",
    "PendingRequest",
    "LevelResult",
    "sweep_levels",
    "run_load",
    "render_load_report",
    "bench_metrics",
    "emit_serve_bench",
]
