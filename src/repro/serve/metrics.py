"""Serve-path instruments: queue depth, batch size, latency percentiles.

Thin layer over :class:`repro.obs.metrics.MetricsRegistry`. The
registry's :class:`~repro.obs.metrics.Histogram` keeps only
count/total/min/max/last — no reservoir — so the p50/p99 tail numbers
the throughput bench gates on are computed here from a retained
latency sample list (nearest-rank percentiles, the deterministic
textbook definition) and published as gauges:

* ``serve.requests`` / ``serve.batches`` counters,
* ``serve.queue_depth`` gauge (depth after each enqueue/drain),
* ``serve.batch_size`` / ``serve.latency_s`` histograms,
* ``serve.latency.p50_s`` / ``serve.latency.p99_s`` / ``serve.rps``
  gauges, filled by :meth:`ServeMetrics.finalize`.
"""

from __future__ import annotations

import math

from repro.obs.metrics import MetricsRegistry

__all__ = ["ServeMetrics", "nearest_rank_percentile"]


def nearest_rank_percentile(samples, q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of a non-empty sample."""
    if not samples:
        raise ValueError("percentile of an empty sample")
    ordered = sorted(samples)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return float(ordered[min(rank, len(ordered)) - 1])


class ServeMetrics:
    """Instruments shared by the engine, the server, and the load gen."""

    def __init__(self, registry: MetricsRegistry | None = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.latencies: list[float] = []

    # ------------------------------------------------------------------
    def observe_requests(self, count: int = 1) -> None:
        self.registry.counter("serve.requests").inc(count)

    def observe_queue_depth(self, depth: int) -> None:
        self.registry.gauge("serve.queue_depth").set(depth)

    def observe_batch(self, size: int) -> None:
        self.registry.counter("serve.batches").inc()
        self.registry.histogram("serve.batch_size").observe(size)

    def observe_latency(self, seconds: float) -> None:
        self.latencies.append(float(seconds))
        self.registry.histogram("serve.latency_s").observe(seconds)

    def observe_plan_cache(self, stats: dict) -> None:
        # Cumulative cache stats land as gauges (last snapshot wins);
        # hits/misses are "size-like" counts, not latencies, so none of
        # these gate in the bench comparison.
        self.registry.gauge("serve.plan_cache.size").set(stats["size"])
        self.registry.gauge("serve.plan_cache.hit_count").set(stats["hits"])
        self.registry.gauge("serve.plan_cache.miss_count").set(stats["misses"])

    # ------------------------------------------------------------------
    def finalize(self, wall_s: float | None = None) -> dict:
        """Publish tail-latency/throughput gauges; returns the summary."""
        summary: dict = {"requests": len(self.latencies)}
        if self.latencies:
            p50 = nearest_rank_percentile(self.latencies, 50.0)
            p99 = nearest_rank_percentile(self.latencies, 99.0)
            self.registry.gauge("serve.latency.p50_s").set(p50)
            self.registry.gauge("serve.latency.p99_s").set(p99)
            summary.update(p50_s=p50, p99_s=p99)
        if wall_s is not None and wall_s > 0.0:
            rps = len(self.latencies) / wall_s
            self.registry.gauge("serve.rps").set(rps)
            summary["rps"] = rps
        return summary
