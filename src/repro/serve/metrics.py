"""Serve-path instruments: queue depth, batch size, latency percentiles.

Thin layer over :class:`repro.obs.metrics.MetricsRegistry`. The
registry's :class:`~repro.obs.metrics.Histogram` keeps only
count/total/min/max/last — no reservoir — so the p50/p99 tail numbers
the throughput bench gates on are computed here from retained latency
samples (nearest-rank percentiles, the deterministic textbook
definition) and published as gauges:

* ``serve.requests`` / ``serve.batches`` counters,
* ``serve.errors`` / ``serve.deadline_exceeded`` SLO counters
  (pre-registered, so an exposition always carries them even at zero),
* ``serve.queue_depth`` gauge (depth after each enqueue/drain),
* ``serve.batch_size`` / ``serve.latency_s`` histograms,
* ``serve.latency.p50_s`` / ``serve.latency.p99_s`` / ``serve.rps``
  gauges, filled by :meth:`ServeMetrics.finalize`,
* ``serve.stage.<name>.p50_s`` / ``.p99_s`` gauges per traced request
  stage, with the p99's trace id kept in :attr:`ServeMetrics.exemplars`
  so a tail number links back to a concrete span tree.

Latency samples live in a :class:`Reservoir` (Algorithm R, seeded, cap
configurable) so a long soak run keeps memory flat. Below the cap the
reservoir retains *every* sample — percentiles are exact, and since the
default cap (16384) exceeds the largest bench sample count, the bench
path is bit-identical to the unbounded-list behaviour it replaces.
"""

from __future__ import annotations

import math
import random
import threading

from repro.obs.metrics import MetricsRegistry

__all__ = ["Reservoir", "ServeMetrics", "nearest_rank_percentile"]

# Largest bench level is 5 levels x 2048 requests = 10240 samples; the
# default cap clears it so gated numbers never see a replacement.
DEFAULT_RESERVOIR_CAPACITY = 16384


def nearest_rank_percentile(samples, q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of a non-empty sample."""
    if not samples:
        raise ValueError("percentile of an empty sample")
    ordered = sorted(samples)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return float(ordered[min(rank, len(ordered)) - 1])


class Reservoir:
    """Fixed-size uniform sample of a stream (Vitter's Algorithm R).

    Each sample optionally carries a ``tag`` (here: a trace id), which
    is how a p99 gauge gets its exemplar. Seeded with stdlib
    :class:`random.Random` — no global RNG touched, so filling a
    reservoir cannot perturb seeded model code. Thread-safe: serve
    worker threads record into shared reservoirs.

    Determinism: below ``capacity`` no random draws happen at all
    (every sample is retained), so any run whose stream fits the cap is
    exactly reproducible regardless of thread interleaving. Above the
    cap the retained *set* depends on arrival order, which is the
    standard trade-off for O(capacity) memory.
    """

    __slots__ = ("capacity", "count", "_samples", "_rng", "_lock")

    def __init__(self, capacity: int = DEFAULT_RESERVOIR_CAPACITY, seed: int = 0):
        if capacity < 1:
            raise ValueError(f"reservoir capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.count = 0  # total observed, not retained
        self._samples: list[tuple[float, object]] = []
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def add(self, value: float, tag=None) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            if len(self._samples) < self.capacity:
                self._samples.append((value, tag))
            else:
                slot = self._rng.randrange(self.count)
                if slot < self.capacity:
                    self._samples[slot] = (value, tag)

    # list-compatible surface (``metrics.latencies`` predates the cap)
    def append(self, value: float) -> None:
        self.add(value)

    def values(self) -> list[float]:
        """Retained sample values, in arrival order."""
        with self._lock:
            return [value for value, _ in self._samples]

    def __len__(self) -> int:
        return self.count

    def __bool__(self) -> bool:
        return self.count > 0

    def __iter__(self):
        return iter(self.values())

    def percentile(self, q: float) -> float:
        return nearest_rank_percentile(self.values(), q)

    def percentile_with_tag(self, q: float) -> tuple[float, object]:
        """Nearest-rank percentile plus the tag of the ranked sample."""
        with self._lock:
            samples = list(self._samples)
        if not samples:
            raise ValueError("percentile of an empty sample")
        ordered = sorted(samples, key=lambda sample: sample[0])
        rank = max(1, math.ceil(q / 100.0 * len(ordered)))
        value, tag = ordered[min(rank, len(ordered)) - 1]
        return float(value), tag


class ServeMetrics:
    """Instruments shared by the engine, the server, and the load gen."""

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        reservoir_capacity: int = DEFAULT_RESERVOIR_CAPACITY,
        seed: int = 0,
        slo_target: float = 0.999,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.reservoir_capacity = reservoir_capacity
        self.seed = seed
        self.slo_target = slo_target
        self.latencies = Reservoir(capacity=reservoir_capacity, seed=seed)
        self.stages: dict[str, Reservoir] = {}
        self.exemplars: dict[str, str] = {}
        self._stage_lock = threading.Lock()
        # Pre-register the SLO counters: a scrape must always expose
        # them, and "zero errors" is a statement, not an absence.
        self.registry.counter("serve.requests")
        self.registry.counter("serve.errors")
        self.registry.counter("serve.deadline_exceeded")

    # ------------------------------------------------------------------
    def observe_requests(self, count: int = 1) -> None:
        self.registry.counter("serve.requests").inc(count)

    def observe_queue_depth(self, depth: int) -> None:
        self.registry.gauge("serve.queue_depth").set(depth)

    def observe_batch(self, size: int) -> None:
        self.registry.counter("serve.batches").inc()
        self.registry.histogram("serve.batch_size").observe(size)

    def observe_latency(self, seconds: float, trace_id: str | None = None) -> None:
        self.latencies.add(seconds, trace_id)
        self.registry.histogram("serve.latency_s").observe(seconds)

    def observe_stage(
        self, name: str, seconds: float, trace_id: str | None = None
    ) -> None:
        """Record one stage duration (``enqueue``, ``forward``, ...)."""
        with self._stage_lock:
            reservoir = self.stages.get(name)
            if reservoir is None:
                reservoir = Reservoir(
                    capacity=self.reservoir_capacity, seed=self.seed
                )
                self.stages[name] = reservoir
        reservoir.add(seconds, trace_id)

    def observe_error(self, count: int = 1) -> None:
        self.registry.counter("serve.errors").inc(count)

    def observe_deadline_exceeded(self, count: int = 1) -> None:
        self.registry.counter("serve.deadline_exceeded").inc(count)

    def observe_plan_cache(self, stats: dict) -> None:
        # Cumulative cache stats land as gauges (last snapshot wins);
        # hits/misses are "size-like" counts, not latencies, so none of
        # these gate in the bench comparison.
        self.registry.gauge("serve.plan_cache.size").set(stats["size"])
        self.registry.gauge("serve.plan_cache.hit_count").set(stats["hits"])
        self.registry.gauge("serve.plan_cache.miss_count").set(stats["misses"])

    # ------------------------------------------------------------------
    def _publish_percentiles(self, prefix: str, reservoir: Reservoir) -> dict:
        """Set ``<prefix>.p50_s/p99_s`` gauges; exemplar the p99."""
        p50 = reservoir.percentile(50.0)
        p99, tag = reservoir.percentile_with_tag(99.0)
        self.registry.gauge(f"{prefix}.p50_s").set(p50)
        self.registry.gauge(f"{prefix}.p99_s").set(p99)
        if tag is not None:
            self.exemplars[f"{prefix}.p99_s"] = str(tag)
        return {"p50_s": p50, "p99_s": p99}

    def slo_summary(self) -> dict:
        """Error-budget arithmetic over the SLO counters, as of now."""
        requests = self.registry.counter("serve.requests").value
        errors = self.registry.counter("serve.errors").value
        deadline = self.registry.counter("serve.deadline_exceeded").value
        bad = errors + deadline
        # Zero traffic means zero failures: vacuously available.
        availability = 1.0 - bad / requests if requests > 0 else 1.0
        budget = (1.0 - self.slo_target) * requests
        summary = {
            "target": self.slo_target,
            "requests": requests,
            "errors": errors,
            "deadline_exceeded": deadline,
            "availability": availability,
            "budget_consumed": bad / budget if budget > 0 else (
                0.0 if bad == 0 else math.inf
            ),
        }
        if requests > 0:
            self.registry.gauge("serve.slo.availability").set(availability)
        return summary

    def finalize(self, wall_s: float | None = None) -> dict:
        """Publish tail-latency/throughput/stage gauges; returns the summary."""
        summary: dict = {"requests": len(self.latencies)}
        if self.latencies:
            summary.update(self._publish_percentiles("serve.latency", self.latencies))
        if wall_s is not None and wall_s > 0.0:
            rps = len(self.latencies) / wall_s
            self.registry.gauge("serve.rps").set(rps)
            summary["rps"] = rps
        stages: dict[str, dict] = {}
        for name in sorted(self.stages):
            reservoir = self.stages[name]
            if reservoir:
                stages[name] = self._publish_percentiles(
                    f"serve.stage.{name}", reservoir
                )
        if stages:
            summary["stages"] = stages
        summary["slo"] = self.slo_summary()
        return summary
