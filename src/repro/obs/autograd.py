"""Per-op autograd profiling: time, call counts, and tensor bytes.

Two complementary mechanisms, both installed/removed together and both
strictly zero-overhead while disabled:

* **tape hook** — the :mod:`repro.obs.tape` chain (over
  :func:`repro.autograd.set_tape_hook`) plugs a callback into
  ``Tensor._from_op``, the single dispatch point every
  differentiable op (primitive or composite) goes through. The hook
  counts tape entries, sums output-tensor bytes, and wraps each op's
  backward closure so the backward pass is timed per op. The op name is
  derived from the backward closure's qualname (every op defines its
  VJP inline, so ``matmul.<locals>.backward`` → ``matmul``).
* **dispatch wrappers** — the public functions of
  ``repro.autograd.ops``, ``scatter``, and the closure-carrying subset
  of ``functional`` are swapped for timing wrappers. A frame stack
  separates *self* time from *cumulative* time, so composite ops (e.g.
  ``gather`` calling ``getitem``) do not double-count.

Bound references taken before ``install()`` (e.g. the ``ACTIVATIONS``
table binds ``relu`` at import time) bypass the wrappers; they still
hit the tape hook, so their calls and bytes are counted even when their
forward time is attributed to the enclosing op.
"""

from __future__ import annotations

import contextlib
import dataclasses
import functools
import time
from typing import Callable, Iterator

from repro.autograd import functional, ops, scatter
from repro.obs import tape

__all__ = ["OpStats", "AutogradProfiler", "profile_autograd"]

# functional ops that build their own tape entries (the rest delegate
# to ops.* and would only add pure-wrapper noise to the table).
_FUNCTIONAL_NAMES = (
    "relu",
    "leaky_relu",
    "elu",
    "dropout",
    "softmax",
    "log_softmax",
    "nll_loss",
    "cross_entropy",
    "binary_cross_entropy_with_logits",
    "mse_loss",
)


@dataclasses.dataclass
class OpStats:
    """Accumulated profile of one op name."""

    name: str
    calls: int = 0  # timed dispatches through a wrapped module function
    tape_entries: int = 0  # Tensor._from_op records (includes bound refs)
    output_bytes: int = 0  # bytes of op output arrays
    forward_self: float = 0.0  # forward seconds minus nested wrapped ops
    forward_cum: float = 0.0  # forward seconds including nested ops
    backward_calls: int = 0
    backward_time: float = 0.0

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


def _op_name(backward_fn: Callable) -> str:
    qualname = getattr(backward_fn, "__qualname__", "") or ""
    name = qualname.split(".", 1)[0]
    return name or "<anonymous>"


class AutogradProfiler:
    """Installable per-op profiler over the autograd substrate.

    Use as a context manager via :func:`profile_autograd`, or call
    :meth:`install`/:meth:`uninstall` explicitly. Stats survive
    ``uninstall`` so reports can be rendered after profiling ends.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self.clock = clock
        self._stats: dict[str, OpStats] = {}
        self._originals: list[tuple[object, str, Callable]] = []
        self._frames: list[list[float]] = []
        self.installed = False

    # ------------------------------------------------------------------
    def stat(self, name: str) -> OpStats:
        stats = self._stats.get(name)
        if stats is None:
            stats = self._stats[name] = OpStats(name)
        return stats

    def stats(self) -> list[dict]:
        """All op stats as dicts, sorted by self+backward time."""
        return [
            s.to_dict()
            for s in sorted(
                self._stats.values(),
                key=lambda s: -(s.forward_self + s.backward_time),
            )
        ]

    # ------------------------------------------------------------------
    def install(self) -> "AutogradProfiler":
        if self.installed:
            return self
        tape.add_tape_hook(self._tape_hook)  # raises if a foreign hook is active
        targets = [
            (ops, tuple(ops.__all__)),
            (scatter, tuple(scatter.__all__)),
            (functional, _FUNCTIONAL_NAMES),
        ]
        for module, names in targets:
            for name in names:
                original = getattr(module, name)
                if not callable(original):
                    continue
                self._originals.append((module, name, original))
                setattr(module, name, self._wrap(name, original))
        self.installed = True
        return self

    def uninstall(self) -> None:
        if not self.installed:
            return
        for module, name, original in reversed(self._originals):
            setattr(module, name, original)
        self._originals.clear()
        tape.remove_tape_hook(self._tape_hook)
        self._frames.clear()
        self.installed = False

    # ------------------------------------------------------------------
    def _wrap(self, name: str, func: Callable) -> Callable:
        clock = self.clock
        frames = self._frames

        @functools.wraps(func)
        def timed(*args, **kwargs):
            frame = [0.0]  # seconds consumed by nested wrapped ops
            frames.append(frame)
            t_start = clock()
            try:
                return func(*args, **kwargs)
            finally:
                elapsed = clock() - t_start
                frames.pop()
                stats = self.stat(name)
                stats.calls += 1
                stats.forward_cum += elapsed
                stats.forward_self += elapsed - frame[0]
                if frames:
                    frames[-1][0] += elapsed

        timed.__obs_wrapped__ = True
        return timed

    def _tape_hook(self, data, parents, backward_fn):
        stats = self.stat(_op_name(backward_fn))
        stats.tape_entries += 1
        stats.output_bytes += int(getattr(data, "nbytes", 0))
        clock = self.clock

        def timed_backward(grad):
            t_start = clock()
            try:
                return backward_fn(grad)
            finally:
                stats.backward_calls += 1
                stats.backward_time += clock() - t_start

        # keep the op name derivable for hooks chained after this one
        timed_backward.__qualname__ = getattr(
            backward_fn, "__qualname__", timed_backward.__qualname__
        )
        return timed_backward


@contextlib.contextmanager
def profile_autograd(
    clock: Callable[[], float] = time.perf_counter,
) -> Iterator[AutogradProfiler]:
    """Profile every autograd op dispatched inside the block."""
    profiler = AutogradProfiler(clock)
    profiler.install()
    try:
        yield profiler
    finally:
        profiler.uninstall()
