"""Human-readable hotspot report over a finished trace.

Input is the list of finished spans (live :class:`Span` objects or the
dicts a JSONL trace round-trips to — both are accepted everywhere), and
optionally the autograd op stats and a metrics snapshot. Output is the
report ``repro profile`` prints:

* **phase breakdown** — spans aggregated by their path in the span tree
  (``search/epoch/weight_step``), with cumulative, self (cumulative
  minus time attributed to child spans) and mean durations;
* **hotspot table** — top-K autograd ops ranked by self time
  (forward self + backward), with call counts and tensor bytes;
* **metrics** — counters/gauges/histograms, if any were recorded.
"""

from __future__ import annotations

import dataclasses

__all__ = ["SpanAggregate", "aggregate_spans", "format_table", "hotspot_report"]


def _as_record(span) -> dict:
    return span if isinstance(span, dict) else span.to_dict()


@dataclasses.dataclass
class SpanAggregate:
    """Accumulated timings of every span sharing one tree path."""

    path: str
    count: int = 0
    total: float = 0.0
    self_time: float = 0.0
    minimum: float = float("inf")
    maximum: float = 0.0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "count": self.count,
            "total": self.total,
            "self": self.self_time,
            "mean": self.mean,
            "min": self.minimum if self.count else None,
            "max": self.maximum,
        }


def aggregate_spans(spans) -> list[SpanAggregate]:
    """Group spans by tree path; sorted by cumulative time, descending.

    Self time is each span's duration minus its direct children's, so
    summing ``self`` over the whole table reproduces the root wall time
    (no double counting, unlike the ``total`` column which is
    cumulative).
    """
    records = [_as_record(span) for span in spans]
    by_id = {record["id"]: record for record in records}
    child_time: dict[int, float] = {}
    for record in records:
        parent = record.get("parent")
        if parent is not None:
            child_time[parent] = child_time.get(parent, 0.0) + record["dur"]

    def path_of(record: dict) -> str:
        parts = [record["name"]]
        seen = {record["id"]}
        parent = record.get("parent")
        while parent is not None and parent in by_id and parent not in seen:
            seen.add(parent)
            parent_record = by_id[parent]
            parts.append(parent_record["name"])
            parent = parent_record.get("parent")
        return "/".join(reversed(parts))

    aggregates: dict[str, SpanAggregate] = {}
    for record in records:
        path = path_of(record)
        aggregate = aggregates.get(path)
        if aggregate is None:
            aggregate = aggregates[path] = SpanAggregate(path)
        duration = record["dur"]
        aggregate.count += 1
        aggregate.total += duration
        aggregate.self_time += duration - child_time.get(record["id"], 0.0)
        aggregate.minimum = min(aggregate.minimum, duration)
        aggregate.maximum = max(aggregate.maximum, duration)
    return sorted(aggregates.values(), key=lambda a: (-a.total, a.path))


def format_table(headers: list[str], rows: list[list[str]]) -> list[str]:
    """Right-align numbers under left-aligned first column."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    header = "  ".join(
        h.ljust(widths[i]) if i == 0 else h.rjust(widths[i])
        for i, h in enumerate(headers)
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            "  ".join(
                cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i])
                for i, cell in enumerate(row)
            )
        )
    return lines


def _seconds(value: float) -> str:
    return f"{value:.4f}"


def _bytes_human(num: float) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if num < 1024.0 or unit == "GB":
            return f"{num:.1f}{unit}" if unit != "B" else f"{int(num)}B"
        num /= 1024.0
    return f"{num:.1f}GB"


def hotspot_report(
    spans,
    op_stats: list[dict] | None = None,
    metrics: dict | None = None,
    top: int = 10,
) -> str:
    """Render the full report; every section is skipped when empty."""
    sections: list[str] = []

    aggregates = aggregate_spans(spans)
    if aggregates:
        rows = [
            [
                a.path,
                str(a.count),
                _seconds(a.total),
                _seconds(a.self_time),
                _seconds(a.mean),
            ]
            for a in aggregates
        ]
        lines = ["== Phase breakdown (spans) =="]
        lines.extend(
            format_table(["phase", "count", "cum s", "self s", "mean s"], rows)
        )
        sections.append("\n".join(lines))

    if op_stats:
        ranked = sorted(
            op_stats,
            key=lambda s: -(s.get("forward_self", 0.0) + s.get("backward_time", 0.0)),
        )[: max(top, 1)]
        rows = []
        for stat in ranked:
            rows.append(
                [
                    stat["name"],
                    str(stat.get("calls", 0)),
                    str(stat.get("tape_entries", 0)),
                    _seconds(stat.get("forward_self", 0.0)),
                    _seconds(stat.get("forward_cum", 0.0)),
                    _seconds(stat.get("backward_time", 0.0)),
                    _bytes_human(stat.get("output_bytes", 0)),
                ]
            )
        lines = [f"== Top {len(ranked)} autograd ops (by self time) =="]
        lines.extend(
            format_table(
                ["op", "calls", "tape", "fwd self s", "fwd cum s", "bwd s", "out bytes"],
                rows,
            )
        )
        sections.append("\n".join(lines))

    if metrics:
        lines = ["== Metrics =="]
        for kind in ("counters", "gauges", "histograms"):
            for name, payload in (metrics.get(kind) or {}).items():
                if kind == "histograms":
                    mean = payload.get("mean")
                    mean_text = "n/a" if mean is None else f"{mean:.6g}"
                    lines.append(
                        f"{name}: count={payload.get('count')} "
                        f"mean={mean_text} min={payload.get('min')} "
                        f"max={payload.get('max')}"
                    )
                else:
                    lines.append(f"{name}: {payload.get('value')}")
        if len(lines) > 1:
            sections.append("\n".join(lines))

    if not sections:
        return "(empty trace: no spans, op stats, or metrics recorded)"
    return "\n\n".join(sections)
