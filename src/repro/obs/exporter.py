"""Live metrics export: periodic JSONL snapshots + a scrape endpoint.

Everything in ``repro.obs`` so far is *post-hoc*: metrics are
snapshotted once, when a run finishes. A serving process is never
finished, so this module adds the two live surfaces:

* :class:`MetricsSnapshotter` — a dependency-free background thread
  that periodically flushes a :class:`~repro.obs.metrics.
  MetricsRegistry` snapshot as one JSONL record (versioned, same
  one-object-per-line discipline as the trace schema), giving a soak
  run a time series of every counter/gauge/histogram without any
  external collector;
* :func:`render_exposition` / :func:`parse_exposition` — a
  Prometheus-style text exposition of one snapshot (names sanitised to
  ``[a-zA-Z_:][a-zA-Z0-9_:]*``, one ``# TYPE`` comment per metric,
  OpenMetrics-style ``# {trace_id="..."}`` exemplars on gauges that
  have one), plus the strict parser CI uses to validate a scrape;
* :class:`MetricsExporter` — a stdlib ``http.server`` endpoint serving
  ``/metrics`` (the exposition) and ``/healthz``, the first
  process-boundary surface of the serving stack (``repro serve
  --export-port``).

Snapshot JSONL schema (one object per line)::

    {"type": "snapshot-meta", "version": 1, ...}       — first line
    {"type": "metrics-snapshot", "seq": 0, "t": 1.2?,
     "data": {"counters": ..., "gauges": ..., "histograms": ...}}

The exporter never touches library state: it reads whatever snapshot
the provided callable returns, so a scrape cannot perturb a seeded
run (and the traced-vs-untraced bit-identity guarantee extends to
"scraped vs unscraped").
"""

from __future__ import annotations

import http.server
import json
import re
import threading
from pathlib import Path
from typing import Callable

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import get_tracer

__all__ = [
    "SNAPSHOT_VERSION",
    "MetricsSnapshotter",
    "read_snapshots",
    "prom_name",
    "render_exposition",
    "parse_exposition",
    "MetricsExporter",
]

SNAPSHOT_VERSION = 1

_NAME_SANITISE = re.compile(r"[^a-zA-Z0-9_:]")
_NAME_VALID = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_EXEMPLAR = re.compile(r"\s+#\s+\{[^}]*\}\s+\S+$")


class MetricsSnapshotter:
    """Background thread flushing registry snapshots to versioned JSONL.

    ``interval_s`` paces the flush loop (a ``threading.Event`` wait, so
    :meth:`stop` returns promptly); ``clock`` stamps each record's
    ``t`` field and is injectable like every clock in ``repro.obs`` —
    pass ``None`` for byte-identical snapshot files across runs.
    :meth:`flush` is public so callers can force a final snapshot at
    shutdown, and the class is usable without a thread at all (call
    ``flush`` manually) for deterministic tests.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        path: str | Path,
        interval_s: float = 0.5,
        clock: Callable[[], float] | None = None,
        meta: dict | None = None,
    ):
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        self.registry = registry
        self.path = Path(path)
        self.interval_s = float(interval_s)
        self.clock = clock
        self.flushes = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._file = self.path.open("w", encoding="utf-8")
        header = {"type": "snapshot-meta", "version": SNAPSHOT_VERSION}
        if meta:
            header.update(meta)
        self._write(header)

    def _write(self, record: dict) -> None:
        with self._lock:
            self._file.write(json.dumps(record, sort_keys=True) + "\n")
            self._file.flush()

    # ------------------------------------------------------------------
    def flush(self) -> dict:
        """Write one snapshot record now; returns the record."""
        record: dict = {
            "type": "metrics-snapshot",
            "seq": self.flushes,
            "data": self.registry.snapshot(),
        }
        if self.clock is not None:
            record["t"] = float(self.clock())
        self.flushes += 1
        self._write(record)
        return record

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.flush()

    def start(self) -> "MetricsSnapshotter":
        if self._thread is not None:
            raise RuntimeError("snapshotter already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-metrics-snapshotter", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, final_flush: bool = True) -> None:
        """Stop the flush loop (and by default write one last snapshot)."""
        if self._thread is not None:
            self._stop.set()
            self._thread.join()
            self._thread = None
        if final_flush and not self._file.closed:
            self.flush()

    def close(self) -> None:
        self.stop(final_flush=False)
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "MetricsSnapshotter":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        self.close()
        return False


def read_snapshots(path: str | Path) -> list[dict]:
    """Parse a snapshot JSONL file back (validates the header)."""
    records: list[dict] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_number}: invalid snapshot line: {exc}"
                ) from exc
    if not records or records[0].get("type") != "snapshot-meta":
        raise ValueError(
            f"{path}: not a metrics snapshot file (missing snapshot-meta header)"
        )
    return records


# ---------------------------------------------------------------------
# Prometheus-style text exposition
# ---------------------------------------------------------------------
def prom_name(name: str) -> str:
    """Sanitise a registry metric name for the text exposition."""
    cleaned = _NAME_SANITISE.sub("_", name)
    if not cleaned or not _NAME_VALID.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def _format_value(value) -> str:
    if value is None:
        return "NaN"
    return repr(float(value))


def render_exposition(
    snapshot: dict, exemplars: dict[str, str] | None = None
) -> str:
    """One registry snapshot as Prometheus-style text.

    ``snapshot`` is :meth:`MetricsRegistry.snapshot` output.
    ``exemplars`` maps registry metric names to trace ids; a gauge with
    an exemplar gets the OpenMetrics ``# {trace_id="..."} <value>``
    suffix, which is how a p99 stage gauge links to the concrete trace
    that produced the tail sample.
    """
    exemplars = exemplars or {}
    lines: list[str] = []
    for name, record in (snapshot.get("counters") or {}).items():
        exposed = prom_name(name)
        lines.append(f"# TYPE {exposed} counter")
        lines.append(f"{exposed} {_format_value(record.get('value', 0.0))}")
    for name, record in (snapshot.get("gauges") or {}).items():
        exposed = prom_name(name)
        lines.append(f"# TYPE {exposed} gauge")
        value = _format_value(record.get("value"))
        trace = exemplars.get(name)
        if trace is not None:
            lines.append(f'{exposed} {value} # {{trace_id="{trace}"}} {value}')
        else:
            lines.append(f"{exposed} {value}")
    for name, record in (snapshot.get("histograms") or {}).items():
        exposed = prom_name(name)
        lines.append(f"# TYPE {exposed} summary")
        lines.append(f"{exposed}_count {_format_value(record.get('count', 0))}")
        lines.append(f"{exposed}_sum {_format_value(record.get('total', 0.0))}")
        for field in ("min", "max", "last"):
            if record.get(field) is not None:
                lines.append(
                    f"{exposed}_{field} {_format_value(record[field])}"
                )
    return "\n".join(lines) + "\n"


def parse_exposition(text: str) -> dict[str, float]:
    """Strictly parse an exposition back to ``{sample name: value}``.

    Raises :class:`ValueError` on any malformed line — this is the CI
    validation that a scraped payload is well-formed, not a lenient
    consumer. ``# TYPE`` comments must name a valid metric; exemplar
    suffixes are validated and stripped.
    """
    samples: dict[str, float] = {}
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 3 and parts[1] == "TYPE":
                if not _NAME_VALID.match(parts[2]):
                    raise ValueError(
                        f"exposition line {line_number}: invalid metric name "
                        f"{parts[2]!r} in TYPE comment"
                    )
                continue
            raise ValueError(
                f"exposition line {line_number}: unknown comment {line!r}"
            )
        body = _EXEMPLAR.sub("", line)
        parts = body.split()
        if len(parts) != 2:
            raise ValueError(
                f"exposition line {line_number}: expected 'name value', "
                f"got {line!r}"
            )
        name, value = parts
        if not _NAME_VALID.match(name):
            raise ValueError(
                f"exposition line {line_number}: invalid sample name {name!r}"
            )
        try:
            samples[name] = float(value)
        except ValueError as exc:
            raise ValueError(
                f"exposition line {line_number}: non-numeric value "
                f"{value!r}"
            ) from exc
    if not samples:
        raise ValueError("exposition contains no samples")
    return samples


# ---------------------------------------------------------------------
# scrape endpoint
# ---------------------------------------------------------------------
class _ScrapeHandler(http.server.BaseHTTPRequestHandler):
    # The exporter injects itself on the server object; instances read
    # it back via self.server.
    def do_GET(self) -> None:  # noqa: N802 — http.server API
        exporter: "MetricsExporter" = self.server.exporter  # type: ignore[attr-defined]
        if self.path in ("/metrics", "/"):
            try:
                body = exporter.exposition().encode("utf-8")
            except Exception as exc:  # surface provider bugs to the scraper
                self.send_error(500, explain=str(exc))
                return
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; version=0.0.4")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            exporter._count_scrape()
        elif self.path == "/healthz":
            body = b"ok\n"
            self.send_response(200)
            self.send_header("Content-Type", "text/plain")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        else:
            self.send_error(404)

    def log_message(self, format: str, *args) -> None:
        """Silence the default stderr access log."""


class MetricsExporter:
    """Serve live metrics over HTTP from a background thread.

    ``provider`` returns ``(snapshot, exemplars)`` on every scrape —
    typically a closure over a live registry, so the endpoint always
    reflects current values. ``port=0`` binds an ephemeral port;
    read :attr:`port` after :meth:`start` for the bound one.
    ``scrapes`` counts served ``/metrics`` responses, which is how the
    CLI's ``--export-linger`` knows a scraper has been by.
    """

    def __init__(
        self,
        provider: Callable[[], tuple[dict, dict[str, str] | None]],
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.provider = provider
        self.host = host
        self._requested_port = port
        self._httpd: http.server.ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._scrape_lock = threading.Lock()
        self.scrapes = 0

    @classmethod
    def for_registry(
        cls, registry: MetricsRegistry, host: str = "127.0.0.1", port: int = 0
    ) -> "MetricsExporter":
        """Exporter over a bare registry (no exemplars)."""
        return cls(lambda: (registry.snapshot(), None), host=host, port=port)

    # ------------------------------------------------------------------
    def exposition(self) -> str:
        snapshot, exemplars = self.provider()
        return render_exposition(snapshot, exemplars=exemplars)

    def _count_scrape(self) -> None:
        with self._scrape_lock:
            self.scrapes += 1

    @property
    def port(self) -> int:
        if self._httpd is None:
            return self._requested_port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    # ------------------------------------------------------------------
    def start(self) -> "MetricsExporter":
        if self._httpd is not None:
            raise RuntimeError("exporter already started")
        self._httpd = http.server.ThreadingHTTPServer(
            (self.host, self._requested_port), _ScrapeHandler
        )
        self._httpd.daemon_threads = True
        self._httpd.exporter = self  # type: ignore[attr-defined]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-exporter",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._thread.join()
        self._httpd.server_close()
        self._httpd = None
        self._thread = None

    def wait_for_scrape(self, timeout_s: float, poll_s: float = 0.05) -> bool:
        """Block until ≥1 scrape was served or ``timeout_s`` elapsed."""
        waited = 0.0
        event = threading.Event()
        while self.scrapes == 0 and waited < timeout_s:
            event.wait(poll_s)
            waited += poll_s
        return self.scrapes > 0

    def __enter__(self) -> "MetricsExporter":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False
