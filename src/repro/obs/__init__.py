"""Observability: tracing, metrics, and autograd profiling.

The subsystem the efficiency experiments (Figure 3 / Table VII) lean
on: *where does search time go?* It has four parts —

* :mod:`repro.obs.spans` — nested wall-time spans via a process-wide
  :class:`Tracer`; all ``search_time``/``train_time`` numbers in the
  repo come from spans (the ``adhoc-timing`` lint rule keeps it that
  way);
* :mod:`repro.obs.metrics` — counters/gauges/histograms in a
  :class:`MetricsRegistry`;
* :mod:`repro.obs.sinks` + :mod:`repro.obs.report` — in-memory and
  JSON-lines trace sinks, and the hotspot report over a finished trace;
* :mod:`repro.obs.autograd` — per-op profiling hooked into the
  autograd tape dispatch (zero overhead while disabled).

:class:`ProfileSession` bundles all of it for ``repro profile``::

    from repro import obs

    with obs.ProfileSession(trace_path="trace.jsonl") as session:
        run_search()
    print(session.report())
"""

from repro.obs.autograd import AutogradProfiler, OpStats, profile_autograd
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.report import SpanAggregate, aggregate_spans, hotspot_report
from repro.obs.session import ProfileSession
from repro.obs.sinks import TRACE_VERSION, InMemorySink, JsonlSink, read_trace
from repro.obs.spans import Span, Tracer, get_tracer, span

__all__ = [
    "Span",
    "Tracer",
    "get_tracer",
    "span",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "InMemorySink",
    "JsonlSink",
    "read_trace",
    "TRACE_VERSION",
    "SpanAggregate",
    "aggregate_spans",
    "hotspot_report",
    "AutogradProfiler",
    "OpStats",
    "profile_autograd",
    "ProfileSession",
]
