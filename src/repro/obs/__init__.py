"""Observability: tracing, metrics, autograd profiling, and telemetry.

The subsystem the efficiency experiments (Figure 3 / Table VII) and
the search-dynamics reports lean on. It has six parts —

* :mod:`repro.obs.spans` — nested wall-time spans via a process-wide
  :class:`Tracer`; all ``search_time``/``train_time`` numbers in the
  repo come from spans (the ``adhoc-timing`` lint rule keeps it that
  way);
* :mod:`repro.obs.metrics` — counters/gauges/histograms in a
  :class:`MetricsRegistry`;
* :mod:`repro.obs.sinks` + :mod:`repro.obs.report` — in-memory and
  JSON-lines trace sinks, and the hotspot report over a finished trace;
* :mod:`repro.obs.autograd` — per-op profiling hooked into the
  autograd tape dispatch (zero overhead while disabled);
* :mod:`repro.obs.events` + :mod:`repro.obs.search_telemetry` — the v1
  structured event log (alpha snapshots, entropies, genotype flips,
  loss/score curves) the searchers and trainers emit into; a no-op
  unless an :class:`EventRecorder` is installed;
* :mod:`repro.obs.search_report` + :mod:`repro.obs.bench_gate` +
  :mod:`repro.obs.serve_report` — the ``repro report
  run``/``diff``/``bench``/``serve`` renderers;
* :mod:`repro.obs.context` + :mod:`repro.obs.exporter` — request-scoped
  trace context (explicit parent handoff across the serve queue's
  thread boundary) and the live telemetry surfaces: periodic
  :class:`MetricsSnapshotter` JSONL flushes and the Prometheus-style
  :class:`MetricsExporter` scrape endpoint;
* :mod:`repro.obs.runs` + :mod:`repro.obs.runs_report` — the run
  ledger: every CLI entry point appends a versioned provenance
  manifest (deterministic content-derived id, config digest, env
  fingerprint, metric summary, artifact lineage) to the append-only
  history store, and ``repro runs list/show/diff/trend/gc`` renders
  history tables and the cross-run trend gate over it;
* :mod:`repro.obs.tape` + :mod:`repro.obs.health` +
  :mod:`repro.obs.memory` — the composable tape-hook chain and the PR-5
  health layer on top of it: NaN/Inf/overflow detection with full op
  provenance (:class:`NumericsAnomaly`), per-epoch gradient-health
  gauges with dead-op detection, and tape memory accounting behind
  ``repro report memory``.

:class:`ProfileSession` bundles the profiling side for ``repro
profile``::

    from repro import obs

    with obs.ProfileSession(trace_path="trace.jsonl") as session:
        run_search()
    print(session.report())

and :func:`record_events` captures telemetry::

    with obs.record_events("events.jsonl", label="search:cora"):
        run_search()
"""

from repro.obs.autograd import AutogradProfiler, OpStats, profile_autograd
from repro.obs.context import (
    REQUEST_SPAN,
    REQUEST_STAGES,
    RequestTrace,
    RequestTracer,
    TraceContext,
    context_span,
    mirror_span,
)
from repro.obs.exporter import (
    SNAPSHOT_VERSION,
    MetricsExporter,
    MetricsSnapshotter,
    parse_exposition,
    read_snapshots,
    render_exposition,
)
from repro.obs.events import (
    EVENTS_VERSION,
    EventRecorder,
    record_events,
)
from repro.obs.health import (
    HealthMonitor,
    NumericsAnomaly,
    check_numerics,
    get_monitor,
    op_scope,
)
from repro.obs.memory import (
    MemoryTracker,
    render_memory_report,
    render_memory_report_file,
    track_memory,
)
from repro.obs.tape import active_tape_hooks, add_tape_hook, remove_tape_hook
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.report import SpanAggregate, aggregate_spans, format_table, hotspot_report
from repro.obs.runs import (
    MANIFEST_VERSION,
    LedgerWarning,
    RunLedger,
    RunManifest,
    build_manifest,
    config_digest,
    derive_run_id,
    env_fingerprint,
    record_run,
)
from repro.obs.runs_report import (
    TrendVerdict,
    evaluate_trend,
    render_run_show,
    render_runs_diff,
    render_runs_list,
    render_trend,
)
from repro.obs.search_report import render_diff, render_run
from repro.obs.serve_report import load_request_trees, render_serve_report
from repro.obs.search_telemetry import SearchTelemetry
from repro.obs.session import ProfileSession
from repro.obs.sinks import TRACE_VERSION, InMemorySink, JsonlSink, read_trace
from repro.obs.spans import ReplaySpan, Span, Tracer, get_tracer, span

__all__ = [
    "ReplaySpan",
    "Span",
    "Tracer",
    "get_tracer",
    "span",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "InMemorySink",
    "JsonlSink",
    "read_trace",
    "TRACE_VERSION",
    "SpanAggregate",
    "aggregate_spans",
    "format_table",
    "hotspot_report",
    "AutogradProfiler",
    "OpStats",
    "profile_autograd",
    "ProfileSession",
    "EVENTS_VERSION",
    "EventRecorder",
    "record_events",
    "SearchTelemetry",
    "render_run",
    "render_diff",
    "HealthMonitor",
    "NumericsAnomaly",
    "check_numerics",
    "get_monitor",
    "op_scope",
    "MemoryTracker",
    "track_memory",
    "render_memory_report",
    "render_memory_report_file",
    "add_tape_hook",
    "remove_tape_hook",
    "active_tape_hooks",
    "TraceContext",
    "RequestTrace",
    "RequestTracer",
    "context_span",
    "mirror_span",
    "REQUEST_SPAN",
    "REQUEST_STAGES",
    "SNAPSHOT_VERSION",
    "MetricsSnapshotter",
    "read_snapshots",
    "render_exposition",
    "parse_exposition",
    "MetricsExporter",
    "load_request_trees",
    "render_serve_report",
    "MANIFEST_VERSION",
    "LedgerWarning",
    "RunLedger",
    "RunManifest",
    "build_manifest",
    "config_digest",
    "derive_run_id",
    "env_fingerprint",
    "record_run",
    "TrendVerdict",
    "evaluate_trend",
    "render_runs_list",
    "render_run_show",
    "render_runs_diff",
    "render_trend",
]
