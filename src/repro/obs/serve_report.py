"""``repro report serve`` — the offline serving-trace dashboard.

Input is a JSONL trace recorded by ``repro serve --trace`` (or any
sink fed by :mod:`repro.obs.context` request spans): one
``serve.request`` root per request plus ``stage`` spans linked to it
by parent id. The dashboard answers the question aggregate counters
cannot — *where* a slow p99 went — with three sections:

* **per-stage breakdown** — count/mean/p50/p99/total seconds per stage
  across every request, stages in pipeline order, plus each stage's
  share of summed request time (this is the table whose stage sums
  must be consistent with end-to-end latency);
* **queue-depth timeline** — a sparkline of how many requests sat in
  ``queue_wait`` over the run (overlap-count of the queue_wait span
  intervals, bucketed);
* **slowest traces** — a drilldown of the worst requests by
  end-to-end duration, one stage-by-stage line each, with the
  stage-sum coverage of the root span.

If the trace file carries a ``metrics`` record (the CLI appends the
final registry snapshot), the SLO counters are summarised too.
"""

from __future__ import annotations

from pathlib import Path

from repro.obs.context import REQUEST_SPAN, REQUEST_STAGES
from repro.obs.report import format_table
from repro.obs.sinks import read_trace

__all__ = ["load_request_trees", "render_serve_report"]

_SPARK = "▁▂▃▄▅▆▇█"
_TIMELINE_WIDTH = 48


class RequestTree:
    """One request's reassembled span tree: root + named stages."""

    __slots__ = ("trace_id", "root", "stages")

    def __init__(self, trace_id: str, root: dict):
        self.trace_id = trace_id
        self.root = root
        self.stages: list[dict] = []

    @property
    def duration(self) -> float:
        return float(self.root["dur"])

    @property
    def status(self) -> str:
        return (self.root.get("attrs") or {}).get("status", "?")

    def stage_sum(self) -> float:
        return sum(float(span["dur"]) for span in self.stages)

    def coverage(self) -> float | None:
        """Stage seconds per root second (≤ ~1 for a well-formed tree;
        ``forward`` windows are shared, never double-counted within
        one tree)."""
        if self.duration <= 0:
            return None
        return self.stage_sum() / self.duration


def load_request_trees(records: list[dict]) -> list[RequestTree]:
    """Reassemble request span trees from raw trace records."""
    roots: dict[int, RequestTree] = {}
    stages: list[dict] = []
    for record in records:
        if record.get("type") != "span":
            continue
        attrs = record.get("attrs") or {}
        if record.get("kind") == "request" and record.get("name") == REQUEST_SPAN:
            trace_id = attrs.get("trace", f"span-{record['id']}")
            roots[record["id"]] = RequestTree(trace_id, record)
        elif record.get("kind") == "stage":
            stages.append(record)
    for span in stages:
        tree = roots.get(span.get("parent"))
        if tree is not None:
            tree.stages.append(span)
    return sorted(roots.values(), key=lambda tree: tree.root["id"])


def _stage_order(name: str) -> tuple[int, str]:
    try:
        return (REQUEST_STAGES.index(name), name)
    except ValueError:
        return (len(REQUEST_STAGES), name)


def _percentile(ordered: list[float], q: float) -> float:
    import math

    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def _render_stage_breakdown(trees: list[RequestTree]) -> list[str]:
    by_stage: dict[str, list[float]] = {}
    for tree in trees:
        for span in tree.stages:
            by_stage.setdefault(span["name"], []).append(float(span["dur"]))
    total_stage_s = sum(sum(durs) for durs in by_stage.values())
    rows = []
    for name in sorted(by_stage, key=_stage_order):
        durs = sorted(by_stage[name])
        total = sum(durs)
        share = 100.0 * total / total_stage_s if total_stage_s > 0 else 0.0
        rows.append([
            name,
            str(len(durs)),
            f"{1e3 * total / len(durs):.3f}",
            f"{1e3 * _percentile(durs, 50.0):.3f}",
            f"{1e3 * _percentile(durs, 99.0):.3f}",
            f"{total:.3f}",
            f"{share:.1f}%",
        ])
    lines = ["== Per-stage latency breakdown =="]
    lines += format_table(
        ["stage", "count", "mean_ms", "p50_ms", "p99_ms", "total_s", "share"],
        rows,
    )
    request_s = sum(tree.duration for tree in trees)
    coverage = 100.0 * total_stage_s / request_s if request_s > 0 else 0.0
    lines.append(
        f"stage seconds {total_stage_s:.3f} / request seconds "
        f"{request_s:.3f} ({coverage:.1f}% coverage)"
    )
    return lines


def _sparkline(values: list[float]) -> str:
    peak = max(values) if values else 0.0
    if peak <= 0:
        return _SPARK[0] * len(values)
    chars = []
    for value in values:
        index = int(value / peak * (len(_SPARK) - 1) + 0.5)
        chars.append(_SPARK[index])
    return "".join(chars)


def _render_queue_timeline(trees: list[RequestTree]) -> list[str]:
    intervals = [
        (float(span["start"]), float(span["end"]))
        for tree in trees
        for span in tree.stages
        if span["name"] == "queue_wait" and span.get("end") is not None
    ]
    lines = ["== Queue-depth timeline =="]
    if not intervals:
        lines.append("(no queue_wait spans in trace)")
        return lines
    t0 = min(start for start, _ in intervals)
    t1 = max(end for _, end in intervals)
    if t1 <= t0:
        lines.append("(zero-length run)")
        return lines
    # Sweep the +1/-1 endpoint events; track the max depth per bucket.
    events = sorted(
        [(start, 1) for start, _ in intervals]
        + [(end, -1) for _, end in intervals]
    )
    buckets = [0.0] * _TIMELINE_WIDTH
    depth = 0
    scale = _TIMELINE_WIDTH / (t1 - t0)
    for at, delta in events:
        depth += delta
        index = min(_TIMELINE_WIDTH - 1, int((at - t0) * scale))
        buckets[index] = max(buckets[index], depth)
    peak = max(buckets)
    lines.append(f"waiting {_sparkline(buckets)} (peak {int(peak)})")
    lines.append(
        f"window  {t1 - t0:.3f}s, {len(intervals)} requests queued"
    )
    return lines


def _render_slowest(trees: list[RequestTree], top: int) -> list[str]:
    lines = [f"== Slowest traces (top {top}) =="]
    ranked = sorted(trees, key=lambda tree: -tree.duration)[:top]
    for tree in ranked:
        coverage = tree.coverage()
        cov = f"{100.0 * coverage:.1f}%" if coverage is not None else "-"
        lines.append(
            f"{tree.trace_id}  total {1e3 * tree.duration:.3f} ms  "
            f"status={tree.status}  stage coverage {cov}"
        )
        for span in sorted(tree.stages, key=lambda s: _stage_order(s["name"])):
            dur = float(span["dur"])
            share = 100.0 * dur / tree.duration if tree.duration > 0 else 0.0
            shared = (span.get("attrs") or {}).get("shared")
            note = f"  (shared x{shared})" if shared else ""
            lines.append(
                f"  {span['name']:<16}{1e3 * dur:>10.3f} ms  "
                f"{share:>5.1f}%{note}"
            )
    return lines


def _render_slo(records: list[dict]) -> list[str]:
    snapshot = None
    for record in records:
        if record.get("type") == "metrics":
            snapshot = record.get("data") or {}
    if snapshot is None:
        return []
    counters = snapshot.get("counters") or {}
    gauges = snapshot.get("gauges") or {}

    def value(group, name):
        entry = group.get(name)
        return entry.get("value") if entry else None

    requests = value(counters, "serve.requests")
    if requests is None:
        return []
    lines = ["== SLO =="]
    errors = value(counters, "serve.errors") or 0.0
    deadline = value(counters, "serve.deadline_exceeded") or 0.0
    lines.append(
        f"requests {int(requests)}, errors {int(errors)}, "
        f"deadline_exceeded {int(deadline)}"
    )
    availability = value(gauges, "serve.slo.availability")
    if availability is not None:
        lines.append(f"availability {availability:.6f}")
    return lines


def render_serve_report(path: str | Path, top: int = 5) -> str:
    """The full ``repro report serve`` dashboard for one trace file."""
    records = read_trace(path)
    trees = load_request_trees(records)
    if not trees:
        raise ValueError(f"{path}: no serve.request spans in trace")
    complete = sum(
        1 for tree in trees
        if {span["name"] for span in tree.stages} >= set(REQUEST_STAGES)
    )
    lines = [
        f"Serve trace: {path}",
        f"requests: {len(trees)} ({complete} with all "
        f"{len(REQUEST_STAGES)} stages)",
        "",
    ]
    lines += _render_stage_breakdown(trees)
    lines.append("")
    lines += _render_queue_timeline(trees)
    lines.append("")
    lines += _render_slowest(trees, top)
    slo = _render_slo(records)
    if slo:
        lines.append("")
        lines += slo
    return "\n".join(lines)
