"""Benchmark regression gate (``repro report bench``).

Compares freshly emitted ``BENCH_<name>.json`` summaries (written by
``benchmarks/common.py::tracked_run``) against committed baselines and
flags metrics that degraded beyond a relative tolerance. Direction is
inferred from the metric name — ``*time*``/``*loss*``/``*latency*``
tokens are lower-is-better, ``*score*``/``*speedup*``/``*rps*``
higher-is-better; metrics with no recognised token are reported but
never gate.

Wall-clock metrics are machine-dependent, so they get their own
(looser) tolerance — including ``speedup`` ratios, which are
higher-is-better but derived from wall-clock and exactly as noisy —
and span timings are only gated when explicitly asked for
(``--gate-spans``).

Relative tolerance alone is not enough for seconds-valued metrics:
a p99 of 30 µs doubling to 60 µs is +100% yet indistinguishable from
scheduler/timer noise, while the same +100% on a 2 s search time is a
real regression. ``abs_floor_s`` forgives deltas where *both* sides of
a seconds metric sit below the floor — the change is below the
measurement noise floor, so neither ``regression`` nor ``improved``
is a defensible verdict there. A metric that climbs from under the
floor to above it still gates normally.

Tail percentiles (``p95``/``p99`` tokens) get the same treatment as
spans: reported, but gating only on request (``--gate-tails``). A p99
over a few hundred samples is a max-like statistic — one scheduler
burst from a co-tenant process moves it several hundred percent while
every median and throughput number stays put — so out-of-tolerance
tail moves are labelled ``noisy`` rather than ``regression`` unless
tails were explicitly opted into the gate. Medians, throughput, and
deterministic byte counters carry the hard gate.
"""

from __future__ import annotations

import dataclasses
import json
import re
from pathlib import Path

from repro.obs.report import format_table

__all__ = [
    "MetricDelta",
    "metric_direction",
    "is_wall_clock",
    "is_seconds",
    "is_tail_percentile",
    "load_bench",
    "scalar_metrics",
    "compare_bench",
    "render_bench_diff",
]

_TOKEN_RE = re.compile(r"[._\-/\s]+")
_LOWER_BETTER = frozenset(
    {"time", "loss", "seconds", "latency", "duration", "bytes", "memory",
     # Millisecond-suffixed metrics (the run ledger's search.epoch_ms)
     # are durations like any other.
     "ms",
     # Percentile tokens: the serve stage gauges (serve.stage.<name>.p50_s)
     # name no other lower-is-better token, and a pNN of anything we
     # record is a duration.
     "p50", "p95", "p99"}
)
_HIGHER_BETTER = frozenset(
    {"score", "scores", "speedup", "accuracy", "acc", "f1", "auc", "hits",
     "mrr", "rps", "throughput",
     # Achieved kernel bandwidth (kernel.<name>.effective_gbps): higher
     # is better, but it is bytes over wall-clock, so it takes the
     # loose time tolerance below.
     "gbps"}
)
# Higher-is-better metrics that are nevertheless ratios of wall-clock
# measurements, so they inherit wall-clock noise and the looser
# time tolerance. Requests/s from the serve bench is the same kind of
# number as a speedup: direction is meaningful, magnitude is machine-
# dependent.
_WALL_CLOCK_RATIO = frozenset({"speedup", "rps", "throughput", "gbps"})


def metric_direction(name: str) -> int:
    """+1 higher-is-better, -1 lower-is-better, 0 unknown (never gates)."""
    tokens = set(_TOKEN_RE.split(name.lower()))
    if tokens & _LOWER_BETTER:
        return -1
    if tokens & _HIGHER_BETTER:
        return 1
    return 0


def is_wall_clock(name: str) -> bool:
    """True when a metric measures (or is a ratio of) wall-clock time."""
    tokens = set(_TOKEN_RE.split(name.lower()))
    return bool(tokens & (_LOWER_BETTER | _WALL_CLOCK_RATIO))


# Every duration this repo emits carries a unit suffix that tokenises
# to "s" (``latency_s``, ``p99_s``, ``search_time_s.cora``) — bytes
# and ratio metrics never do, so the absolute floor cannot touch them.
_SECONDS_TOKENS = frozenset({"s", "seconds"})

# Upper-tail percentiles: max-like statistics whose run-to-run spread
# dwarfs any workable relative tolerance. p50 is deliberately absent —
# medians are burst-robust and stay hard-gated.
_TAIL_TOKENS = frozenset({"p95", "p99"})


def is_seconds(name: str) -> bool:
    """True when a metric's value is a duration in seconds."""
    tokens = set(_TOKEN_RE.split(name.lower()))
    return bool(tokens & _SECONDS_TOKENS)


def is_tail_percentile(name: str) -> bool:
    """True when a metric is an upper-tail percentile (p95/p99)."""
    tokens = set(_TOKEN_RE.split(name.lower()))
    return bool(tokens & _TAIL_TOKENS)


def load_bench(path: str | Path) -> dict:
    """Parse one ``BENCH_<name>.json`` payload."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if "bench" not in payload or "metrics" not in payload:
        raise ValueError(f"{path}: not a BENCH summary (missing bench/metrics)")
    return payload


def scalar_metrics(payload: dict) -> dict[str, float]:
    """Flatten a BENCH payload's metrics to name -> scalar.

    Gauges and counters contribute their value, histograms their mean;
    instrument names are unique across kinds (the registry enforces it).
    """
    out: dict[str, float] = {}
    metrics = payload.get("metrics") or {}
    for kind, field in (("gauges", "value"), ("counters", "value"),
                        ("histograms", "mean")):
        for name, record in (metrics.get(kind) or {}).items():
            value = record.get(field)
            if value is not None:
                out[name] = float(value)
    return out


def span_totals(payload: dict) -> dict[str, float]:
    """Cumulative seconds per span path from a BENCH payload."""
    return {
        row["path"]: float(row["total_s"])
        for row in payload.get("spans") or []
        if row.get("total_s") is not None
    }


@dataclasses.dataclass
class MetricDelta:
    """One metric compared between a baseline and a fresh run."""

    name: str
    baseline: float | None
    current: float | None
    direction: int
    rel_change: float | None
    status: str  # ok | regression | improved | noisy | info | missing | new

    @property
    def gates(self) -> bool:
        return self.status in ("regression", "missing")


def _classify(
    name: str,
    baseline: float | None,
    current: float | None,
    direction: int,
    tolerance: float,
    abs_floor: float = 0.0,
) -> MetricDelta:
    if baseline is None:
        return MetricDelta(name, None, current, direction, None, "new")
    if current is None:
        return MetricDelta(name, baseline, None, direction, None, "missing")
    if abs(baseline) > 1e-12:
        rel = (current - baseline) / abs(baseline)
    else:
        rel = 0.0 if current == baseline else float("inf")
    if direction == 0:
        status = "info"
    elif max(abs(baseline), abs(current)) < abs_floor:
        # Both sides sit below the measurement noise floor: the
        # relative change is dominated by timer jitter, not the code.
        status = "ok"
    elif rel * direction < 0 and abs(rel) > tolerance:
        status = "regression"
    elif rel * direction > 0 and abs(rel) > tolerance:
        status = "improved"
    else:
        status = "ok"
    return MetricDelta(name, baseline, current, direction, rel, status)


def compare_bench(
    baseline: dict,
    current: dict,
    tolerance: float = 0.1,
    time_tolerance: float = 0.5,
    gate_spans: bool = False,
    abs_floor_s: float = 0.0,
    gate_tails: bool = False,
) -> list[MetricDelta]:
    """Per-metric deltas of one bench against its baseline.

    ``abs_floor_s`` applies only to seconds-valued metrics (see
    :func:`is_seconds`): when both sides of such a metric are below
    the floor, the delta is reported ``ok`` regardless of its
    relative size. Unless ``gate_tails`` is set, out-of-tolerance
    moves of p95/p99 metrics are labelled ``noisy`` and never gate
    (a vanished tail metric still reports ``missing`` and gates).
    """
    base_metrics = scalar_metrics(baseline)
    cur_metrics = scalar_metrics(current)
    deltas: list[MetricDelta] = []
    for name in sorted(set(base_metrics) | set(cur_metrics)):
        direction = metric_direction(name)
        tol = time_tolerance if is_wall_clock(name) else tolerance
        delta = _classify(
            name, base_metrics.get(name), cur_metrics.get(name),
            direction, tol,
            abs_floor=abs_floor_s if is_seconds(name) else 0.0,
        )
        if (
            not gate_tails
            and delta.status in ("regression", "improved")
            and is_tail_percentile(name)
        ):
            delta = dataclasses.replace(delta, status="noisy")
        deltas.append(delta)
    if gate_spans:
        base_spans = span_totals(baseline)
        cur_spans = span_totals(current)
        for path in sorted(set(base_spans) & set(cur_spans)):
            deltas.append(
                _classify(
                    f"span:{path}", base_spans[path], cur_spans[path],
                    -1, time_tolerance, abs_floor=abs_floor_s,
                )
            )
    return deltas


_ARROW = {1: "↑", -1: "↓", 0: "·"}


def render_bench_diff(
    name: str, deltas: list[MetricDelta], notes: list[str] = ()
) -> str:
    """One bench's comparison table plus its verdict line."""
    rows = []
    for delta in deltas:
        rel = "-" if delta.rel_change is None else f"{100.0 * delta.rel_change:+.1f}%"
        rows.append(
            [
                delta.name,
                _ARROW[delta.direction],
                "-" if delta.baseline is None else f"{delta.baseline:.6g}",
                "-" if delta.current is None else f"{delta.current:.6g}",
                rel,
                delta.status,
            ]
        )
    regressions = sum(1 for d in deltas if d.gates)
    verdict = "REGRESSION" if regressions else "ok"
    lines = [f"== Bench {name}: {verdict} ({regressions} gated metric(s)) =="]
    for note in notes:
        lines.append(f"note: {note}")
    if rows:
        lines.extend(
            format_table(
                ["metric", "dir", "baseline", "current", "change", "status"],
                rows,
            )
        )
    else:
        lines.append("(no comparable metrics)")
    return "\n".join(lines)
