"""Benchmark regression gate (``repro report bench``).

Compares freshly emitted ``BENCH_<name>.json`` summaries (written by
``benchmarks/common.py::tracked_run``) against committed baselines and
flags metrics that degraded beyond a relative tolerance. Direction is
inferred from the metric name — ``*time*``/``*loss*``/``*latency*``
tokens are lower-is-better, ``*score*``/``*speedup*``/``*rps*``
higher-is-better; metrics with no recognised token are reported but
never gate.

Wall-clock metrics are machine-dependent, so they get their own
(looser) tolerance — including ``speedup`` ratios, which are
higher-is-better but derived from wall-clock and exactly as noisy —
and span timings are only gated when explicitly asked for
(``--gate-spans``).
"""

from __future__ import annotations

import dataclasses
import json
import re
from pathlib import Path

from repro.obs.report import format_table

__all__ = [
    "MetricDelta",
    "metric_direction",
    "is_wall_clock",
    "load_bench",
    "scalar_metrics",
    "compare_bench",
    "render_bench_diff",
]

_TOKEN_RE = re.compile(r"[._\-/\s]+")
_LOWER_BETTER = frozenset(
    {"time", "loss", "seconds", "latency", "duration", "bytes", "memory"}
)
_HIGHER_BETTER = frozenset(
    {"score", "scores", "speedup", "accuracy", "acc", "f1", "auc", "hits",
     "mrr", "rps", "throughput"}
)
# Higher-is-better metrics that are nevertheless ratios of wall-clock
# measurements, so they inherit wall-clock noise and the looser
# time tolerance. Requests/s from the serve bench is the same kind of
# number as a speedup: direction is meaningful, magnitude is machine-
# dependent.
_WALL_CLOCK_RATIO = frozenset({"speedup", "rps", "throughput"})


def metric_direction(name: str) -> int:
    """+1 higher-is-better, -1 lower-is-better, 0 unknown (never gates)."""
    tokens = set(_TOKEN_RE.split(name.lower()))
    if tokens & _LOWER_BETTER:
        return -1
    if tokens & _HIGHER_BETTER:
        return 1
    return 0


def is_wall_clock(name: str) -> bool:
    """True when a metric measures (or is a ratio of) wall-clock time."""
    tokens = set(_TOKEN_RE.split(name.lower()))
    return bool(tokens & (_LOWER_BETTER | _WALL_CLOCK_RATIO))


def load_bench(path: str | Path) -> dict:
    """Parse one ``BENCH_<name>.json`` payload."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if "bench" not in payload or "metrics" not in payload:
        raise ValueError(f"{path}: not a BENCH summary (missing bench/metrics)")
    return payload


def scalar_metrics(payload: dict) -> dict[str, float]:
    """Flatten a BENCH payload's metrics to name -> scalar.

    Gauges and counters contribute their value, histograms their mean;
    instrument names are unique across kinds (the registry enforces it).
    """
    out: dict[str, float] = {}
    metrics = payload.get("metrics") or {}
    for kind, field in (("gauges", "value"), ("counters", "value"),
                        ("histograms", "mean")):
        for name, record in (metrics.get(kind) or {}).items():
            value = record.get(field)
            if value is not None:
                out[name] = float(value)
    return out


def span_totals(payload: dict) -> dict[str, float]:
    """Cumulative seconds per span path from a BENCH payload."""
    return {
        row["path"]: float(row["total_s"])
        for row in payload.get("spans") or []
        if row.get("total_s") is not None
    }


@dataclasses.dataclass
class MetricDelta:
    """One metric compared between a baseline and a fresh run."""

    name: str
    baseline: float | None
    current: float | None
    direction: int
    rel_change: float | None
    status: str  # ok | regression | improved | info | missing | new

    @property
    def gates(self) -> bool:
        return self.status in ("regression", "missing")


def _classify(
    name: str,
    baseline: float | None,
    current: float | None,
    direction: int,
    tolerance: float,
) -> MetricDelta:
    if baseline is None:
        return MetricDelta(name, None, current, direction, None, "new")
    if current is None:
        return MetricDelta(name, baseline, None, direction, None, "missing")
    if abs(baseline) > 1e-12:
        rel = (current - baseline) / abs(baseline)
    else:
        rel = 0.0 if current == baseline else float("inf")
    if direction == 0:
        status = "info"
    elif rel * direction < 0 and abs(rel) > tolerance:
        status = "regression"
    elif rel * direction > 0 and abs(rel) > tolerance:
        status = "improved"
    else:
        status = "ok"
    return MetricDelta(name, baseline, current, direction, rel, status)


def compare_bench(
    baseline: dict,
    current: dict,
    tolerance: float = 0.1,
    time_tolerance: float = 0.5,
    gate_spans: bool = False,
) -> list[MetricDelta]:
    """Per-metric deltas of one bench against its baseline."""
    base_metrics = scalar_metrics(baseline)
    cur_metrics = scalar_metrics(current)
    deltas: list[MetricDelta] = []
    for name in sorted(set(base_metrics) | set(cur_metrics)):
        direction = metric_direction(name)
        tol = time_tolerance if is_wall_clock(name) else tolerance
        deltas.append(
            _classify(
                name, base_metrics.get(name), cur_metrics.get(name),
                direction, tol,
            )
        )
    if gate_spans:
        base_spans = span_totals(baseline)
        cur_spans = span_totals(current)
        for path in sorted(set(base_spans) & set(cur_spans)):
            deltas.append(
                _classify(
                    f"span:{path}", base_spans[path], cur_spans[path],
                    -1, time_tolerance,
                )
            )
    return deltas


_ARROW = {1: "↑", -1: "↓", 0: "·"}


def render_bench_diff(
    name: str, deltas: list[MetricDelta], notes: list[str] = ()
) -> str:
    """One bench's comparison table plus its verdict line."""
    rows = []
    for delta in deltas:
        rel = "-" if delta.rel_change is None else f"{100.0 * delta.rel_change:+.1f}%"
        rows.append(
            [
                delta.name,
                _ARROW[delta.direction],
                "-" if delta.baseline is None else f"{delta.baseline:.6g}",
                "-" if delta.current is None else f"{delta.current:.6g}",
                rel,
                delta.status,
            ]
        )
    regressions = sum(1 for d in deltas if d.gates)
    verdict = "REGRESSION" if regressions else "ok"
    lines = [f"== Bench {name}: {verdict} ({regressions} gated metric(s)) =="]
    for note in notes:
        lines.append(f"note: {note}")
    if rows:
        lines.extend(
            format_table(
                ["metric", "dir", "baseline", "current", "change", "status"],
                rows,
            )
        )
    else:
        lines.append("(no comparable metrics)")
    return "\n".join(lines)
