"""Span sinks: in-memory aggregation and JSON-lines trace files.

A sink is anything with ``record(span)``; the tracer calls it once per
*finished* span (children before parents, since children finish first).
Two implementations cover the subsystem's needs:

* :class:`InMemorySink` — keeps the spans for post-hoc reporting
  (hotspot report, benchmark summaries, tests);
* :class:`JsonlSink` — streams one JSON object per line to a file, the
  ``repro profile`` trace format. Besides spans it can append
  ``metrics`` and ``op_stats`` records, so one file carries the whole
  profile. :func:`read_trace` loads it back for tooling and tests.

Trace schema (one object per line, discriminated by ``type``):

``{"type": "trace-meta", "version": 1, ...}``   — first line
``{"type": "span", "id", "parent", "depth", "name", "kind",
   "start", "end", "dur", "attrs"?}``           — one per span
``{"type": "metrics", "data": {...}}``          — registry snapshot
``{"type": "op_stats", "data": [...]}``         — autograd op profile
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Span

__all__ = ["InMemorySink", "JsonlSink", "read_trace", "TRACE_VERSION"]

TRACE_VERSION = 1


class InMemorySink:
    """Collects finished spans in completion order."""

    def __init__(self):
        self.spans: list[Span] = []

    def record(self, span: Span) -> None:
        self.spans.append(span)

    def __len__(self) -> int:
        return len(self.spans)

    def clear(self) -> None:
        self.spans.clear()

    def records(self) -> list[dict]:
        """The spans as plain trace dicts."""
        return [span.to_dict() for span in self.spans]


class JsonlSink:
    """Streams trace records to ``path`` as JSON lines."""

    def __init__(self, path: str | Path, meta: dict | None = None):
        self.path = Path(path)
        self._file = self.path.open("w", encoding="utf-8")
        # Serving worker threads record request spans concurrently;
        # the lock keeps every JSONL line complete and un-interleaved.
        self._lock = threading.Lock()
        header = {"type": "trace-meta", "version": TRACE_VERSION}
        if meta:
            header.update(meta)
        self.write_record(header)

    def write_record(self, record: dict) -> None:
        """Append one arbitrary trace record (used by the event log)."""
        line = json.dumps(record, sort_keys=True) + "\n"
        with self._lock:
            self._file.write(line)

    def record(self, span: Span) -> None:
        self.write_record(span.to_dict())

    def write_metrics(self, registry: MetricsRegistry) -> None:
        self.write_record({"type": "metrics", "data": registry.snapshot()})

    def write_op_stats(self, op_stats: list[dict]) -> None:
        self.write_record({"type": "op_stats", "data": op_stats})

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def read_trace(path: str | Path) -> list[dict]:
    """Parse a JSONL trace back into dicts (validates the header)."""
    records: list[dict] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_number}: invalid trace line: {exc}"
                ) from exc
            records.append(record)
    if not records or records[0].get("type") != "trace-meta":
        raise ValueError(f"{path}: not a repro trace (missing trace-meta header)")
    return records
