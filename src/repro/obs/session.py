"""One-stop profiling session: spans + autograd ops + metrics + trace.

:class:`ProfileSession` is what ``repro profile`` (and any caller that
wants "profile this block") uses. Entering the session

* attaches an in-memory sink (for the report) and, if a path was
  given, a JSONL sink (the trace file) to the process tracer,
* installs the autograd op profiler (optional),
* opens a root span so every library span recorded inside the block
  hangs off one tree.

Leaving it tears all of that down, appends the op stats and metrics
snapshot to the trace, and leaves the collected data available for
:meth:`ProfileSession.report`.
"""

from __future__ import annotations

from pathlib import Path

from repro.obs import events as events_mod
from repro.obs.autograd import AutogradProfiler
from repro.obs.memory import MemoryTracker, render_memory_report
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import hotspot_report
from repro.obs.sinks import InMemorySink, JsonlSink
from repro.obs.spans import Tracer, get_tracer

__all__ = ["ProfileSession"]


class ProfileSession:
    """Profile everything that happens inside a ``with`` block.

    With ``events=True`` (requires ``trace_path``) an
    :class:`~repro.obs.events.EventRecorder` sharing the trace's JSONL
    sink is installed for the block, so search/training telemetry
    events interleave with the span records in one file — which
    ``repro report run`` and ``report diff`` can then consume directly.

    With ``memory=True`` a :class:`~repro.obs.memory.MemoryTracker`
    rides along on the tape-hook chain and a ``memory_stats`` record is
    appended to the trace on exit, which ``repro report memory`` renders
    as the hotspot table.
    """

    def __init__(
        self,
        trace_path: str | Path | None = None,
        autograd: bool = True,
        label: str = "profile",
        tracer: Tracer | None = None,
        events: bool = False,
        memory: bool = False,
    ):
        self.tracer = tracer or get_tracer()
        self.trace_path = Path(trace_path) if trace_path else None
        self.label = label
        self.metrics = MetricsRegistry()
        self.memory = InMemorySink()
        self.profiler = AutogradProfiler(clock=self.tracer.clock) if autograd else None
        self.tracker = MemoryTracker() if memory else None
        if events and self.trace_path is None:
            raise ValueError("events=True requires a trace_path to write to")
        self._events = events
        self.recorder = None
        self._jsonl: JsonlSink | None = None
        self._root = None

    # ------------------------------------------------------------------
    def __enter__(self) -> "ProfileSession":
        self.tracer.add_sink(self.memory)
        if self.trace_path is not None:
            meta = {"label": self.label}
            if self._events:
                meta["events_version"] = events_mod.EVENTS_VERSION
            self._jsonl = JsonlSink(self.trace_path, meta=meta)
            self.tracer.add_sink(self._jsonl)
        if self._events:
            self.recorder = events_mod.EventRecorder(
                label=self.label, clock=self.tracer.clock, sink=self._jsonl
            )
            events_mod.install(self.recorder)
        # Tracker first: it must see the original backward closures to
        # account retained bytes, before the profiler wraps them.
        if self.tracker is not None:
            self.tracker.install()
        if self.profiler is not None:
            self.profiler.install()
        self._root = self.tracer.span(self.label, kind="profile").start()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._root.finish()
        if self.profiler is not None:
            self.profiler.uninstall()
        if self.tracker is not None:
            self.tracker.uninstall()
        if self.recorder is not None:
            events_mod.uninstall(self.recorder)
            self.recorder = None
        if self._jsonl is not None:
            self._jsonl.write_op_stats(self.op_stats())
            self._jsonl.write_metrics(self.metrics)
            if self.tracker is not None:
                self._jsonl.write_record(
                    {"type": "memory_stats", "data": self.tracker.stats()}
                )
            self.tracer.remove_sink(self._jsonl)
            self._jsonl.close()
            self._jsonl = None
        self.tracer.remove_sink(self.memory)
        return False

    # ------------------------------------------------------------------
    def op_stats(self) -> list[dict]:
        return self.profiler.stats() if self.profiler is not None else []

    def memory_stats(self) -> dict | None:
        return self.tracker.stats() if self.tracker is not None else None

    @property
    def duration(self) -> float:
        """Wall time of the profiled block (root span duration)."""
        return self._root.duration if self._root is not None else 0.0

    def metric_scalars(self) -> dict[str, float]:
        """Manifest-ready flat view of the session's registry.

        What ``repro profile`` hands the run ledger: every instrument
        collapsed to one scalar, plus the profiled wall time under
        ``profile.duration_s``.
        """
        scalars = self.metrics.scalars()
        if self.duration:
            scalars["profile.duration_s"] = float(self.duration)
        return scalars

    def report(self, top: int = 10) -> str:
        """Render the hotspot report for everything collected so far."""
        text = hotspot_report(
            self.memory.spans,
            op_stats=self.op_stats(),
            metrics=self.metrics.snapshot() if len(self.metrics) else None,
            top=top,
        )
        if self.tracker is not None:
            text = "\n\n".join(
                [text, render_memory_report(self.tracker.stats(), top=top)]
            )
        return text
