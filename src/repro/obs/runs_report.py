"""Renderers and the trend gate for the run ledger (``repro runs``).

The ``repro report bench`` gate is point-in-time: one fresh payload
against one committed baseline. The trend gate here is its
complement over *history*: for each watched metric it compares the
trailing window of runs against the median of the older runs and
flags drift in the bad direction — a single +50% spike gates through
the window-of-1 check, a slow +10%-per-run creep gates through the
wider windows that a point gate never sees. Direction comes from the
same token heuristics as the bench gate
(:func:`repro.obs.bench_gate.metric_direction`), so ``*time*``/
``p99``-style metrics gate on increases and ``*score*``/``*gbps*``
metrics on decreases; unrecognised names render but never gate.

All functions here return strings — printing stays in the CLI (the
``naked-print`` rule's contract).
"""

from __future__ import annotations

import dataclasses
import statistics
from datetime import datetime, timezone

from repro.obs.bench_gate import metric_direction
from repro.obs.report import format_table
from repro.obs.runs import RunManifest
from repro.obs.search_report import _sparkline

__all__ = [
    "TrendVerdict",
    "metric_series",
    "evaluate_trend",
    "render_trend",
    "render_runs_list",
    "render_run_show",
    "render_runs_diff",
]

# Relative drift tolerated before the trailing window counts as
# regressed/improved; wall-clock noise at smoke scale sits well below.
DEFAULT_TOLERANCE = 0.25
# Longest trailing window compared against the older history.
DEFAULT_WINDOW = 3
# Fewer points than this and drift is indistinguishable from noise.
MIN_POINTS = 3


def _when(t_wall: float | None) -> str:
    if t_wall is None:
        return "-"
    stamp = datetime.fromtimestamp(float(t_wall), tz=timezone.utc)
    return stamp.strftime("%Y-%m-%d %H:%M")


def _num(value, digits: int = 4) -> str:
    return "-" if value is None else f"{value:.{digits}f}"


def metric_series(
    manifests: list[RunManifest],
    metric: str,
    command: str | None = None,
) -> list[float]:
    """The metric's values in append order, skipping runs without it."""
    return [
        float(m.metrics[metric])
        for m in manifests
        if metric in m.metrics and (command is None or m.command == command)
    ]


@dataclasses.dataclass
class TrendVerdict:
    """One metric's drift assessment over the ledger."""

    metric: str
    status: str  # regression | improved | ok | insufficient | no-data | untracked
    points: int
    direction: int
    values: list[float] = dataclasses.field(default_factory=list)
    baseline: float | None = None
    drift: float | None = None
    window: int | None = None

    @property
    def gates(self) -> bool:
        return self.status in ("regression", "no-data")


def evaluate_trend(
    values: list[float],
    metric: str,
    tolerance: float = DEFAULT_TOLERANCE,
    window: int = DEFAULT_WINDOW,
) -> TrendVerdict:
    """Compare trailing windows against the median of the older runs.

    For each window size ``w`` in ``1..window`` the mean of the last
    ``w`` values is compared against the median of everything before
    them; the verdict is the worst drift found. ``w=1`` catches a
    fresh spike, the larger windows catch sustained creep that no
    single point trips.
    """
    direction = metric_direction(metric)
    verdict = TrendVerdict(
        metric=metric, status="ok", points=len(values),
        direction=direction, values=list(values),
    )
    if not values:
        verdict.status = "no-data"
        return verdict
    if direction == 0:
        verdict.status = "untracked"
        return verdict
    if len(values) < MIN_POINTS:
        verdict.status = "insufficient"
        return verdict
    worst = best = None  # (signed goodness, drift, baseline, w)
    for w in range(1, min(window, len(values) - 2) + 1):
        base = values[:-w]
        baseline = statistics.median(base)
        if abs(baseline) < 1e-12:
            continue
        recent = sum(values[-w:]) / w
        drift = (recent - baseline) / abs(baseline)
        goodness = drift * direction
        entry = (goodness, drift, baseline, w)
        if worst is None or goodness < worst[0]:
            worst = entry
        if best is None or goodness > best[0]:
            best = entry
    if worst is None:
        verdict.status = "insufficient"
        return verdict
    if worst[0] < -tolerance:
        verdict.status = "regression"
        __, verdict.drift, verdict.baseline, verdict.window = worst
    elif best[0] > tolerance:
        verdict.status = "improved"
        __, verdict.drift, verdict.baseline, verdict.window = best
    else:
        __, verdict.drift, verdict.baseline, verdict.window = worst
    return verdict


def render_trend(
    manifests: list[RunManifest],
    metrics: list[str],
    tolerance: float = DEFAULT_TOLERANCE,
    window: int = DEFAULT_WINDOW,
    last: int | None = None,
    command: str | None = None,
) -> tuple[str, bool]:
    """The ``repro runs trend`` table; returns ``(text, gate_failed)``."""
    rows = []
    failed = False
    for metric in metrics:
        values = metric_series(manifests, metric, command=command)
        if last:
            values = values[-last:]
        verdict = evaluate_trend(
            values, metric, tolerance=tolerance, window=window
        )
        failed = failed or verdict.gates
        drift = (
            f"{100.0 * verdict.drift:+.1f}%" if verdict.drift is not None
            else "-"
        )
        arrow = {1: "up", -1: "down", 0: "?"}[verdict.direction]
        rows.append(
            [
                metric,
                str(verdict.points),
                arrow,
                _sparkline(verdict.values) or "-",
                _num(verdict.baseline),
                _num(verdict.values[-1] if verdict.values else None),
                drift,
                verdict.status.upper()
                if verdict.status == "regression" else verdict.status,
            ]
        )
    header = f"== Run trends (tolerance {tolerance:.0%}, window {window}) =="
    lines = [header]
    lines.extend(
        format_table(
            ["metric", "n", "good", "trend", "baseline", "last", "drift",
             "status"],
            rows,
        )
    )
    if failed:
        lines.append("")
        lines.append(
            "GATE: sustained drift beyond tolerance (or a gated metric "
            "with no history)"
        )
    return "\n".join(lines), failed


# ---------------------------------------------------------------------
# list / show / diff
# ---------------------------------------------------------------------
def render_runs_list(
    manifests: list[RunManifest],
    last: int | None = None,
    command: str | None = None,
) -> str:
    """The ``repro runs list`` history table."""
    entries = list(enumerate(manifests))
    if command is not None:
        entries = [(seq, m) for seq, m in entries if m.command == command]
    total = len(entries)
    if last:
        entries = entries[-last:]
    lines = [f"== Run ledger: {total} run(s) =="]
    if not entries:
        lines.append("(empty — run any repro command to record a manifest)")
        return "\n".join(lines)
    rows = []
    for seq, manifest in entries:
        rows.append(
            [
                str(seq),
                manifest.run_id,
                manifest.command,
                str(manifest.env.get("scale") or "-"),
                str(manifest.env.get("seed")
                    if manifest.env.get("seed") is not None else "-"),
                str(manifest.env.get("git_rev") or "-"),
                _when(manifest.t_wall),
                str(len(manifest.metrics)),
            ]
        )
    lines.extend(
        format_table(
            ["seq", "run_id", "command", "scale", "seed", "git", "when",
             "metrics"],
            rows,
        )
    )
    return "\n".join(lines)


def render_run_show(
    manifest: RunManifest,
    seq: int | None = None,
    producer: RunManifest | None = None,
) -> str:
    """One manifest, fully expanded (``repro runs show <ref>``).

    ``producer`` is the resolved lineage parent, when the manifest
    points at one and the ledger still holds it.
    """
    title = f"== Run {manifest.run_id}"
    if seq is not None:
        title += f" (seq {seq})"
    title += f": {manifest.command} =="
    lines = [title]
    lines.append(f"recorded:      {_when(manifest.t_wall)}")
    if manifest.duration_s is not None:
        lines.append(f"duration:      {manifest.duration_s:.2f}s")
    lines.append(f"config digest: {manifest.config_digest}")
    for key in sorted(manifest.config):
        lines.append(f"  {key}: {manifest.config[key]!r}")
    env = manifest.env
    lines.append(
        "env:           scale={scale} seed={seed} kernels={kernels} "
        "workers={workers} git={git} py={py}".format(
            scale=env.get("scale"), seed=env.get("seed"),
            kernels=env.get("kernels"), workers=env.get("workers"),
            git=env.get("git_rev") or "-", py=env.get("python") or "-",
        )
    )
    if manifest.outputs:
        lines.append("outputs:")
        for key in sorted(manifest.outputs):
            lines.append(f"  {key}: {manifest.outputs[key]!r}")
    if manifest.metrics:
        lines.append("metrics:")
        rows = [
            [name, f"{manifest.metrics[name]:.6g}"]
            for name in sorted(manifest.metrics)
        ]
        lines.extend(format_table(["name", "value"], rows))
    if manifest.artifacts:
        lines.append("artifacts:")
        rows = [
            [
                str(entry.get("role", "-")),
                str(entry.get("path", "-")),
                str(entry.get("content_hash", "-"))[:16],
            ]
            for entry in manifest.artifacts
        ]
        lines.extend(format_table(["role", "path", "content_hash"], rows))
    if manifest.files:
        lines.append("files:")
        for path in manifest.files:
            lines.append(f"  {path}")
    if manifest.children:
        lines.append(f"children: {len(manifest.children)} job(s)")
        keys = sorted({key for child in manifest.children for key in child})
        rows = [
            [str(child.get(key, "-")) for key in keys]
            for child in manifest.children
        ]
        lines.extend(format_table(keys, rows))
    if manifest.lineage:
        lines.append("lineage:")
        for key in sorted(manifest.lineage):
            lines.append(f"  {key}: {manifest.lineage[key]}")
        producer_id = manifest.lineage.get("producer_run_id")
        if producer is not None:
            lines.append(
                f"  -> produced by {producer.run_id} "
                f"({producer.command}, config {producer.config_digest})"
            )
        elif producer_id:
            lines.append(
                f"  -> producer {producer_id} not found in this ledger"
            )
    return "\n".join(lines)


def render_runs_diff(
    a: RunManifest, b: RunManifest, top: int = 12
) -> str:
    """Two manifests compared: env drift and shared-metric deltas."""
    lines = [f"== Run diff: {a.run_id} ({a.command}) vs "
             f"{b.run_id} ({b.command}) =="]
    if a.config_digest == b.config_digest:
        lines.append(f"config: identical ({a.config_digest})")
    else:
        lines.append(
            f"config: DIFFERS ({a.config_digest} vs {b.config_digest})"
        )
        keys = sorted(set(a.config) | set(b.config))
        for key in keys:
            va, vb = a.config.get(key), b.config.get(key)
            if va != vb:
                lines.append(f"  {key}: {va!r} -> {vb!r}")
    env_keys = sorted(set(a.env) | set(b.env))
    env_diffs = [
        f"  {key}: {a.env.get(key)!r} -> {b.env.get(key)!r}"
        for key in env_keys
        if a.env.get(key) != b.env.get(key)
    ]
    if env_diffs:
        lines.append("env drift:")
        lines.extend(env_diffs)
    shared = sorted(set(a.metrics) & set(b.metrics))
    if shared:
        shared.sort(
            key=lambda name: -abs(b.metrics[name] - a.metrics[name])
        )
        rows = []
        for name in shared[:top]:
            va, vb = a.metrics[name], b.metrics[name]
            delta = vb - va
            pct = f"{100.0 * delta / abs(va):+.1f}%" if abs(va) > 1e-12 else "n/a"
            rows.append(
                [name, f"{va:.6g}", f"{vb:.6g}", f"{delta:+.6g}", pct]
            )
        lines.append("")
        lines.append("metric deltas (b - a):")
        lines.extend(format_table(["metric", "a", "b", "delta", "pct"], rows))
    only_a = sorted(set(a.metrics) - set(b.metrics))
    only_b = sorted(set(b.metrics) - set(a.metrics))
    if only_a:
        lines.append(f"only in a: {', '.join(only_a[:8])}")
    if only_b:
        lines.append(f"only in b: {', '.join(only_b[:8])}")
    return "\n".join(lines)
