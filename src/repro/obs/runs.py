"""Run ledger: provenance manifests for every CLI entry point.

``BENCH_*.json`` files are overwritten in place and the bench gate
compares one point against one baseline — the repo had no memory
*across* runs. The ledger fixes that: every entry point (``search``,
``sweep``, ``baseline``, ``table``, ``figure``, ``serve --bench``,
``export``, ``check``, ``profile``, the benchmarks) appends one
versioned :class:`RunManifest` to an append-only JSONL store under
``benchmarks/history/`` (override the directory with
``REPRO_HISTORY_DIR``; set ``REPRO_RUN_LEDGER=off`` to disable
recording entirely).

Design constraints, mirroring the rest of :mod:`repro.obs`:

* **deterministic run ids** — :func:`derive_run_id` hashes the
  canonical JSON of ``(command, config digest, env fingerprint,
  seed-derived outputs)`` and nothing else: no wall clock, no RNG, no
  timings. Two bit-identical seeded reruns of the same command get the
  same id, which is exactly what makes the id a *content* address —
  ``seq`` (the append position) disambiguates reruns in the store.
* **injectable clock** — the only wall-time field, ``t_wall``, comes
  from a clock argument defaulting to :func:`time.time`; tests and the
  committed seed history pass a fake.
* **append never crashes a run** — a full disk or read-only checkout
  degrades to a :class:`LedgerWarning`; the command's real work is
  never sacrificed to bookkeeping.
* **reads tolerate corruption** — a truncated or garbage line (the
  ledger is append-only across processes) is skipped with a typed
  :class:`LedgerWarning`, never an exception.

Lineage: ``repro export`` embeds ``{"run_id": ...}`` provenance into
the artifact payload (hash-covered, schema-compatible), and ``repro
serve`` records a ``lineage`` block pointing back at the producing
run — so ``repro runs show`` on a serve-bench manifest resolves to the
search/export run that trained the model it served.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import sys
import time
import warnings
from pathlib import Path
from typing import Callable

__all__ = [
    "MANIFEST_VERSION",
    "HISTORY_ENV",
    "DEFAULT_HISTORY_DIR",
    "STORE_NAME",
    "SEED_HISTORY_NAME",
    "LedgerWarning",
    "RunManifest",
    "RunLedger",
    "canonical_json",
    "config_digest",
    "text_digest",
    "git_revision",
    "env_fingerprint",
    "derive_run_id",
    "build_manifest",
    "record_run",
    "default_history_dir",
]

MANIFEST_VERSION = 1
HISTORY_ENV = "REPRO_HISTORY_DIR"
DEFAULT_HISTORY_DIR = "benchmarks/history"
STORE_NAME = "runs.jsonl"
SEED_HISTORY_NAME = "seed.jsonl"


class LedgerWarning(UserWarning):
    """A ledger problem worth knowing about but never worth crashing for."""


def canonical_json(value) -> str:
    """Stable serialisation: sorted keys, no whitespace."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def config_digest(config: dict | None) -> str:
    """16-hex-char digest of a command's configuration dict."""
    return hashlib.sha256(
        canonical_json(config or {}).encode("utf-8")
    ).hexdigest()[:16]


def text_digest(text: str) -> str:
    """Content hash of rendered output (tables, figures, reports)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def git_revision() -> str | None:
    """Current checkout's commit hash, without spawning a subprocess.

    Walks up from this file to find ``.git`` and follows ``HEAD``
    through loose and packed refs. Returns None outside a checkout
    (installed package, exported tarball) — the fingerprint then simply
    omits the revision.
    """
    for parent in Path(__file__).resolve().parents:
        git_dir = parent / ".git"
        if not git_dir.is_dir():
            continue
        try:
            head = (git_dir / "HEAD").read_text(encoding="utf-8").strip()
            if not head.startswith("ref:"):
                return head[:12] or None
            ref = head.partition(":")[2].strip()
            loose = git_dir / ref
            if loose.exists():
                return loose.read_text(encoding="utf-8").strip()[:12] or None
            packed = git_dir / "packed-refs"
            if packed.exists():
                for line in packed.read_text(encoding="utf-8").splitlines():
                    if line.endswith(" " + ref):
                        return line.split(" ", 1)[0][:12] or None
        except OSError:
            return None
        return None
    return None


def env_fingerprint(
    scale: str | None = None,
    seed: int | None = None,
    kernels: str | None = None,
    workers: int | None = None,
) -> dict:
    """The environment facts a manifest pins: scale preset, seed,
    kernel backend, worker count, git revision, python version."""
    return {
        "scale": scale,
        "seed": seed,
        "kernels": kernels or os.environ.get("REPRO_KERNELS", "fused"),
        "workers": int(workers or 0),
        "git_rev": git_revision(),
        "python": "{}.{}.{}".format(*sys.version_info[:3]),
    }


def derive_run_id(
    command: str, digest: str, env: dict, outputs: dict | None
) -> str:
    """Content-derived id over the deterministic facts of a run.

    Timings, metric values, file paths, and artifact hashes are all
    excluded on purpose: a seeded rerun that produced the same outputs
    IS the same run, however long it took.
    """
    body = canonical_json(
        {
            "command": command,
            "config_digest": digest,
            "env": env,
            "outputs": outputs or {},
        }
    )
    return "r" + hashlib.sha256(body.encode("utf-8")).hexdigest()[:12]


@dataclasses.dataclass
class RunManifest:
    """One ledger entry: what ran, under what, and what came out."""

    run_id: str
    command: str
    config: dict
    config_digest: str
    env: dict
    metrics: dict = dataclasses.field(default_factory=dict)
    outputs: dict = dataclasses.field(default_factory=dict)
    artifacts: list = dataclasses.field(default_factory=list)
    lineage: dict | None = None
    files: list = dataclasses.field(default_factory=list)
    children: list = dataclasses.field(default_factory=list)
    t_wall: float | None = None
    duration_s: float | None = None
    version: int = MANIFEST_VERSION

    def to_record(self) -> dict:
        record = dataclasses.asdict(self)
        return {k: v for k, v in record.items() if v not in (None, [], {})
                or k in ("run_id", "command", "config", "config_digest",
                         "env", "version")}

    @classmethod
    def from_record(cls, record: dict) -> "RunManifest":
        if not isinstance(record, dict):
            raise ValueError("manifest record must be a JSON object")
        version = record.get("version")
        if version != MANIFEST_VERSION:
            raise ValueError(
                f"unsupported manifest version {version!r}; this build "
                f"reads version {MANIFEST_VERSION}"
            )
        if not isinstance(record.get("run_id"), str) or not isinstance(
            record.get("command"), str
        ):
            raise ValueError("manifest record missing run_id/command")
        return cls(
            run_id=record["run_id"],
            command=record["command"],
            config=dict(record.get("config") or {}),
            config_digest=str(record.get("config_digest") or ""),
            env=dict(record.get("env") or {}),
            metrics=dict(record.get("metrics") or {}),
            outputs=dict(record.get("outputs") or {}),
            artifacts=list(record.get("artifacts") or []),
            lineage=record.get("lineage"),
            files=list(record.get("files") or []),
            children=list(record.get("children") or []),
            t_wall=record.get("t_wall"),
            duration_s=record.get("duration_s"),
            version=version,
        )


def _metric_scalars(
    metrics: dict | None, registry=None
) -> dict:
    """Merge explicit metric scalars with a registry's flattened view."""
    merged: dict = {}
    if registry is not None:
        merged.update(registry.scalars())
    for name, value in (metrics or {}).items():
        if value is None:
            continue
        merged[str(name)] = float(value)
    return merged


def build_manifest(
    command: str,
    config: dict | None = None,
    *,
    env: dict | None = None,
    metrics: dict | None = None,
    registry=None,
    outputs: dict | None = None,
    artifacts: list | None = None,
    lineage: dict | None = None,
    files: list | None = None,
    children: list | None = None,
    duration_s: float | None = None,
    clock: Callable[[], float] | None = None,
) -> RunManifest:
    """Assemble a manifest; the id is derived before any wall time.

    ``registry`` (a :class:`~repro.obs.metrics.MetricsRegistry`) is
    flattened via its ``scalars()`` view; explicit ``metrics`` entries
    override on name collisions. ``clock`` stamps ``t_wall`` — inject a
    fake for reproducible fixtures (the committed seed history is
    built this way).
    """
    config = dict(config or {})
    env = dict(env) if env is not None else env_fingerprint()
    digest = config_digest(config)
    run_id = derive_run_id(command, digest, env, outputs)
    timestamp = (clock or time.time)()
    return RunManifest(
        run_id=run_id,
        command=command,
        config=config,
        config_digest=digest,
        env=env,
        metrics=_metric_scalars(metrics, registry),
        outputs=dict(outputs or {}),
        artifacts=list(artifacts or []),
        lineage=dict(lineage) if lineage else None,
        files=[str(f) for f in (files or [])],
        children=list(children or []),
        t_wall=float(timestamp) if timestamp is not None else None,
        duration_s=float(duration_s) if duration_s is not None else None,
    )


def default_history_dir() -> Path:
    """``REPRO_HISTORY_DIR`` or the repo-conventional directory."""
    return Path(os.environ.get(HISTORY_ENV, DEFAULT_HISTORY_DIR))


class RunLedger:
    """Append-only JSONL store of :class:`RunManifest` records.

    ``path`` may point at any JSONL file (the committed seed history,
    a test fixture); by default it is the live store
    ``<history dir>/runs.jsonl``.
    """

    def __init__(self, path: str | Path | None = None):
        self.path = (
            Path(path) if path is not None
            else default_history_dir() / STORE_NAME
        )

    # ------------------------------------------------------------------
    def append(self, manifest: RunManifest) -> bool:
        """Append one manifest; returns False (with a warning) on I/O
        failure instead of crashing the command that did the real work."""
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(canonical_json(manifest.to_record()) + "\n")
        except OSError as exc:
            warnings.warn(
                f"run ledger append to {self.path} failed: {exc}",
                LedgerWarning,
                stacklevel=2,
            )
            return False
        return True

    def read(self) -> list[RunManifest]:
        """Every valid manifest, in append order; bad lines are skipped
        with a :class:`LedgerWarning` (corruption must never take the
        whole history down with it)."""
        if not self.path.exists():
            return []
        manifests: list[RunManifest] = []
        try:
            lines = self.path.read_text(encoding="utf-8").splitlines()
        except OSError as exc:
            warnings.warn(
                f"run ledger read from {self.path} failed: {exc}",
                LedgerWarning,
                stacklevel=2,
            )
            return []
        for number, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                manifests.append(RunManifest.from_record(json.loads(line)))
            except (ValueError, TypeError) as exc:
                warnings.warn(
                    f"{self.path}:{number}: skipping corrupt manifest "
                    f"line ({exc})",
                    LedgerWarning,
                    stacklevel=2,
                )
        return manifests

    def resolve(
        self, ref: str, manifests: list[RunManifest] | None = None
    ) -> tuple[RunManifest, int] | None:
        """Find a manifest by reference; returns ``(manifest, seq)``.

        ``ref`` is a run-id prefix (``r3fa9``; the latest append wins,
        since reruns share content-derived ids) or an integer position:
        ``0`` is the first entry, ``-1`` the most recent.
        """
        manifests = self.read() if manifests is None else manifests
        try:
            index = int(ref)
        except ValueError:
            for seq in range(len(manifests) - 1, -1, -1):
                if manifests[seq].run_id.startswith(ref):
                    return manifests[seq], seq
            return None
        if -len(manifests) <= index < len(manifests):
            seq = index % len(manifests)
            return manifests[seq], seq
        return None

    def gc(self, keep: int) -> int:
        """Rewrite the store with only the last ``keep`` valid entries;
        returns how many entries (including corrupt lines) were dropped."""
        manifests = self.read()
        kept = manifests[-keep:] if keep > 0 else []
        try:
            raw_lines = sum(
                1 for line in
                self.path.read_text(encoding="utf-8").splitlines()
                if line.strip()
            ) if self.path.exists() else 0
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.write_text(
                "".join(canonical_json(m.to_record()) + "\n" for m in kept),
                encoding="utf-8",
            )
        except OSError as exc:
            warnings.warn(
                f"run ledger gc on {self.path} failed: {exc}",
                LedgerWarning,
                stacklevel=2,
            )
            return 0
        return max(0, raw_lines - len(kept))


def record_run(
    command: str | None = None,
    config: dict | None = None,
    *,
    manifest: RunManifest | None = None,
    ledger: RunLedger | None = None,
    **build_kwargs,
) -> RunManifest | None:
    """Build (unless prebuilt) and append one manifest to the ledger.

    The single call every CLI handler makes (the
    ``unledgered-entrypoint`` lint rule checks for it by name). Pass
    ``manifest=`` when the id had to exist *before* the work finished —
    ``repro export`` derives the id first so it can embed provenance
    into the artifact, then records the manifest with the final
    artifact hash attached. Returns the manifest, or None when
    recording is disabled (``REPRO_RUN_LEDGER=off``).
    """
    if os.environ.get("REPRO_RUN_LEDGER", "").lower() in ("off", "0", "false"):
        return None
    if manifest is None:
        if command is None:
            raise ValueError("record_run needs a command or a prebuilt manifest")
        manifest = build_manifest(command, config, **build_kwargs)
    (ledger or RunLedger()).append(manifest)
    return manifest
