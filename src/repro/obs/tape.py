"""Composable autograd tape hooks.

:func:`repro.autograd.set_tape_hook` accepts exactly one hook — the
substrate stays a dumb dispatch point with a single ``None`` check in
``Tensor._from_op``. PR 5 added a second and third consumer of that
point (the numerics health monitor and the memory tracker, next to the
PR-2 op profiler), so this module multiplexes: observers register here,
and the chain installs itself as *the* tensor-level hook while at least
one observer is active.

Hooks compose left-to-right in registration order: each receives
``(data, parents, backward_fn)`` and returns the (possibly wrapped)
backward closure, which becomes the next hook's input. Observers that
only *read* (the memory tracker) return the closure unchanged, so the
op-name derivation from the closure's qualname keeps working for hooks
registered after them.

With zero observers the tensor-level hook is removed entirely, so the
off-mode cost is unchanged from PR 2: one global load and an identity
check per dispatched op.
"""

from __future__ import annotations

from repro.autograd import tensor

__all__ = ["add_tape_hook", "remove_tape_hook", "active_tape_hooks"]

_HOOKS: list = []


def _dispatch(data, parents, backward_fn):
    for hook in _HOOKS:
        backward_fn = hook(data, parents, backward_fn)
    return backward_fn


def add_tape_hook(hook) -> None:
    """Register ``hook`` on the shared chain (installing it if first).

    Raises :class:`RuntimeError` if a foreign hook (one installed
    directly through :func:`repro.autograd.set_tape_hook`, bypassing
    this chain) is already active, and on double registration.
    """
    if hook in _HOOKS:
        raise RuntimeError("tape hook is already registered")
    if not _HOOKS:
        tensor.set_tape_hook(_dispatch)  # raises if a foreign hook is active
    _HOOKS.append(hook)


def remove_tape_hook(hook) -> None:
    """Unregister ``hook``; removes the tensor-level hook when last out."""
    if hook in _HOOKS:
        _HOOKS.remove(hook)
        if not _HOOKS and tensor.get_tape_hook() is _dispatch:
            tensor.set_tape_hook(None)


def active_tape_hooks() -> tuple:
    """The registered hooks, in dispatch order (a snapshot)."""
    return tuple(_HOOKS)
