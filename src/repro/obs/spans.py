"""Nested wall-time spans and the tracer that records them.

A :class:`Span` is one timed region of execution (a search, an epoch,
a forward pass). Spans nest: the tracer keeps a stack, so a span opened
while another is running becomes its child, and a finished trace is a
forest that sinks and reporters can reassemble into trees.

Design constraints, in order:

* **timing is always on** — ``search_time``/``train_time`` fields all
  over the repo come from spans, so entering/leaving a span must be
  cheap enough to wrap every epoch unconditionally (two clock reads and
  one list append);
* **recording is opt-in** — a tracer with no sinks discards finished
  spans; traces/JSONL files only exist while a sink is attached (the
  ``repro profile`` command, a benchmark run, a test);
* **clocks are injectable** — ``Tracer(clock=...)`` lets tests produce
  deterministic durations; the default is ``time.perf_counter``.

This module is the one place in ``src/repro`` (together with the
autograd profiler) that may call ``time.perf_counter`` directly; the
``adhoc-timing`` lint rule enforces that everything else goes through
spans.
"""

from __future__ import annotations

import contextlib
import threading
import time
from typing import Callable, Iterator

__all__ = ["ReplaySpan", "Span", "Tracer", "get_tracer", "span"]


class Span:
    """One timed, attributed region of execution.

    The span doubles as its own context manager::

        with tracer.span("epoch", index=3) as sp:
            ...
        print(sp.duration)

    and supports explicit ``start()``/``finish()`` for regions that do
    not nest lexically (e.g. a lifetime owned by an object).
    ``elapsed()`` reads the clock while the span is still open, which is
    what trajectory histories use for "seconds since the search began".
    """

    __slots__ = (
        "name",
        "kind",
        "attrs",
        "span_id",
        "parent_id",
        "depth",
        "explicit",
        "t_start",
        "t_end",
        "_tracer",
    )

    def __init__(self, tracer: "Tracer", name: str, kind: str, attrs: dict):
        self.name = name
        self.kind = kind
        self.attrs = attrs
        self.span_id: int = -1  # assigned when the span starts
        self.parent_id: int | None = None
        self.depth: int = 0
        self.explicit: bool = False  # started outside the stack
        self.t_start: float = 0.0
        self.t_end: float | None = None
        self._tracer = tracer

    # ------------------------------------------------------------------
    def start(self) -> "Span":
        self._tracer._begin(self)
        return self

    def start_detached(self) -> "Span":
        """Start timing without joining the span tree.

        A detached span is a stopwatch: it never gets an id, never
        parents other spans, and is never dispatched to sinks. Used for
        lifetime measurements (e.g. the NAS evaluator's ``elapsed``
        field) where the region outlives any lexical scope.
        """
        self.t_start = self._tracer.clock()
        return self

    def start_explicit(self, parent_id: int | None = None, depth: int = 0) -> "Span":
        """Start with an explicit parent, outside the tracer's stack.

        Explicit spans are how request tracing crosses thread
        boundaries (:mod:`repro.obs.context`): the parent is named by
        id, not inferred from the calling thread's lexical nesting, so
        concurrent requests build disjoint trees instead of
        interleaving on the shared stack. An explicit span may be
        started on one thread and finished on another; it never
        parents stack spans and the stack never parents it.
        """
        self._tracer._begin_explicit(self, parent_id=parent_id, depth=depth)
        return self

    def finish(self) -> "Span":
        if self.t_end is None:
            if self.span_id < 0:  # detached: just stop the clock
                self.t_end = self._tracer.clock()
            elif self.explicit:  # not on the stack: close and dispatch
                self._tracer._end_explicit(self)
            else:
                self._tracer._end(self)
        return self

    def __enter__(self) -> "Span":
        if self.explicit or self.span_id >= 0:
            return self  # already started (explicit spans reused as CMs)
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.finish()
        return False

    # ------------------------------------------------------------------
    def elapsed(self) -> float:
        """Seconds since the span started (valid while still open)."""
        return self._tracer.clock() - self.t_start

    @property
    def duration(self) -> float:
        """Total seconds; falls back to :meth:`elapsed` if still open."""
        if self.t_end is None:
            return self.elapsed()
        return self.t_end - self.t_start

    def to_dict(self) -> dict:
        """The JSONL trace record for this span (see DESIGN.md schema)."""
        record = {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "depth": self.depth,
            "name": self.name,
            "kind": self.kind,
            "start": self.t_start,
            "end": self.t_end,
            "dur": self.duration,
        }
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        return record

    def __repr__(self) -> str:
        state = f"{self.duration:.6f}s" if self.t_end is not None else "open"
        return f"Span({self.name!r}, {state})"


class ReplaySpan:
    """A finished span re-materialised from its trace record.

    Worker processes ship their spans home as plain dicts (see
    :meth:`Tracer.adopt`); sinks only ever call ``to_dict()`` on what
    they receive, so a thin wrapper around the already-serialised
    record is enough to re-dispatch it through the parent tracer.
    """

    __slots__ = ("record",)

    def __init__(self, record: dict):
        self.record = record

    @property
    def name(self) -> str:
        return self.record.get("name", "")

    @property
    def duration(self) -> float:
        return self.record.get("dur", 0.0)

    def to_dict(self) -> dict:
        return self.record

    def __repr__(self) -> str:
        return f"ReplaySpan({self.name!r}, {self.duration:.6f}s)"


class Tracer:
    """Produces spans, tracks nesting, and fans finished spans to sinks.

    Sinks are objects with a ``record(span)`` method (duck-typed; see
    :mod:`repro.obs.sinks`). With no sinks attached the tracer still
    times spans — it just has nobody to tell.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self.clock = clock
        self._sinks: list = []
        self._stack: list[Span] = []
        self._next_id = 0
        # Span ids are allocated from worker threads too (explicit
        # request spans), so the counter bump must be atomic.
        self._id_lock = threading.Lock()

    # ------------------------------------------------------------------
    def span(self, name: str, kind: str = "span", **attrs) -> Span:
        """Create a span (not yet started); usually used as ``with``."""
        return Span(self, name, kind, attrs)

    def _allocate_id(self) -> int:
        with self._id_lock:
            span_id = self._next_id
            self._next_id += 1
        return span_id

    def _begin(self, span: Span) -> None:
        span.span_id = self._allocate_id()
        if self._stack:
            parent = self._stack[-1]
            span.parent_id = parent.span_id
            span.depth = parent.depth + 1
        else:
            span.parent_id = None
            span.depth = 0
        self._stack.append(span)
        span.t_start = self.clock()

    def _end(self, span: Span) -> None:
        span.t_end = self.clock()
        # Unwind to this span; tolerates a parent finished before a
        # child by closing the abandoned children too.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
            if top.t_end is None:
                top.t_end = span.t_end
                self._dispatch(top)
        self._dispatch(span)

    def _begin_explicit(
        self, span: Span, parent_id: int | None = None, depth: int = 0
    ) -> None:
        span.explicit = True
        span.span_id = self._allocate_id()
        span.parent_id = parent_id
        span.depth = depth
        span.t_start = self.clock()

    def _end_explicit(self, span: Span) -> None:
        span.t_end = self.clock()
        self._dispatch(span)

    def _dispatch(self, span: Span) -> None:
        for sink in self._sinks:
            sink.record(span)

    def adopt(self, records: list[dict], root_name: str, **attrs) -> None:
        """Replay span records from another process under a synthetic root.

        The worker pool collects each job's spans in the worker process
        (as ``to_dict()`` records) and replays them here so per-worker
        trees land in whatever sinks the parent has attached — the
        bench summaries and ``repro report`` then show a
        ``worker-<i>/job/...`` breakdown. Ids are re-allocated from
        this tracer's counter (worker-local ids would collide across
        workers), parents are remapped accordingly, orphan records
        hang off the synthetic root, and times are rebased so the
        replayed tree ends at the adoption instant on the parent
        clock. With no sinks attached this is a no-op.
        """
        if not records or not self._sinks:
            return
        t_last = max(
            (r["end"] if r.get("end") is not None else r["start"])
            for r in records
        )
        offset = self.clock() - t_last
        root = Span(self, root_name, "worker", attrs)
        root.explicit = True
        root.span_id = self._allocate_id()
        root.t_start = min(r["start"] for r in records) + offset
        root.t_end = t_last + offset
        id_map = {r["id"]: self._allocate_id() for r in records}
        for record in records:
            replayed = dict(record)
            replayed["id"] = id_map[record["id"]]
            parent = record.get("parent")
            replayed["parent"] = id_map.get(parent, root.span_id)
            replayed["depth"] = record.get("depth", 0) + 1
            replayed["start"] = record["start"] + offset
            if record.get("end") is not None:
                replayed["end"] = record["end"] + offset
            self._dispatch(ReplaySpan(replayed))
        self._dispatch(root)

    # ------------------------------------------------------------------
    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    @property
    def has_sinks(self) -> bool:
        """True when at least one sink is attached (recording is on)."""
        return bool(self._sinks)

    def add_sink(self, sink) -> None:
        if sink not in self._sinks:
            self._sinks.append(sink)

    def remove_sink(self, sink) -> None:
        if sink in self._sinks:
            self._sinks.remove(sink)

    @contextlib.contextmanager
    def collect(self, *sinks) -> Iterator[None]:
        """Attach ``sinks`` for the duration of the block."""
        for sink in sinks:
            self.add_sink(sink)
        try:
            yield
        finally:
            for sink in sinks:
                self.remove_sink(sink)


# ---------------------------------------------------------------------
# The process-wide default tracer. Library code (trainer, searchers)
# opens spans on this tracer; profiling attaches sinks to it.
# ---------------------------------------------------------------------
_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer all library spans go through."""
    return _TRACER


def span(name: str, kind: str = "span", **attrs) -> Span:
    """Shorthand for ``get_tracer().span(...)``."""
    return _TRACER.span(name, kind, **attrs)
