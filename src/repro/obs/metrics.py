"""Counters, gauges, and histograms — the scalar side of observability.

Spans answer "where does time go"; metrics answer "how much / how many"
(epochs run, candidates evaluated, bytes moved, best score so far). A
:class:`MetricsRegistry` is a named collection of the three instrument
kinds, snapshot-able to a plain dict so sinks and the benchmark emitter
can serialise it without knowing the types.

Everything is dependency-free and deliberately minimal: histograms keep
count/total/min/max/last (enough for hotspot and bench summaries), not
full reservoirs.
"""

from __future__ import annotations

import dataclasses

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


@dataclasses.dataclass
class Counter:
    """Monotonically increasing value (events, epochs, bytes)."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease by {amount}")
        self.value += amount

    def to_dict(self) -> dict:
        return {"value": self.value}


@dataclasses.dataclass
class Gauge:
    """Last-write-wins value (current lr, best validation score)."""

    name: str
    value: float | None = None

    def set(self, value: float) -> None:
        self.value = float(value)

    def to_dict(self) -> dict:
        return {"value": self.value}


@dataclasses.dataclass
class Histogram:
    """Streaming summary of observed values (per-epoch loss, op bytes)."""

    name: str
    count: int = 0
    total: float = 0.0
    minimum: float | None = None
    maximum: float | None = None
    last: float | None = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.last = value
        self.minimum = value if self.minimum is None else min(self.minimum, value)
        self.maximum = value if self.maximum is None else max(self.maximum, value)

    @property
    def mean(self) -> float | None:
        return self.total / self.count if self.count else None

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "last": self.last,
        }


class MetricsRegistry:
    """Named instruments, created on first use with a stable type.

    Asking for an existing name with a different instrument kind is an
    error — silently returning the wrong type would corrupt whichever
    caller came second.
    """

    def __init__(self):
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind: type):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = kind(name)
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def snapshot(self) -> dict:
        """Serialise every instrument, grouped by kind, names sorted."""
        groups: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        kind_key = {Counter: "counters", Gauge: "gauges", Histogram: "histograms"}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            groups[kind_key[type(instrument)]][name] = instrument.to_dict()
        return groups

    def scalars(self) -> dict[str, float]:
        """One scalar per instrument: counter/gauge value, histogram mean.

        The flat name -> value view run manifests and trend queries
        want; instruments that never observed a value are omitted.
        """
        flat: dict[str, float] = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            value = (
                instrument.mean
                if isinstance(instrument, Histogram)
                else instrument.value
            )
            if value is not None:
                flat[name] = float(value)
        return flat
