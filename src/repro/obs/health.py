"""Tape health: numerics anomaly detection with full op provenance.

The third observability pillar (after "where does time go", PR 2, and
"why did the search converge", PR 3): *is the computation healthy*. A
NaN born in one candidate's ``segment_softmax`` poisons the Eq. 2
mixture, then the alpha gradients, then the derived genotype — and
without this layer nothing notices until the final score looks wrong.

:class:`HealthMonitor` plugs into the same ``Tensor._from_op`` dispatch
point as the op profiler (via the :mod:`repro.obs.tape` chain) and
checks every op's forward output, and every gradient its VJP produces,
for NaN / Inf / overflow. On the first anomaly it raises (mode
``"raise"``) or records (mode ``"warn"``) a :class:`NumericsAnomaly`
carrying the op name, the supernet edge / layer the op ran under (from
:func:`op_scope` annotations), the search epoch, and the span path —
enough to name the exact faulty op without a debugger.

Provenance comes from two always-cheap sources:

* **op scopes** — ``SaneSupernet.embed`` wraps each candidate call in
  :func:`op_scope`; while no monitor is installed the function returns
  a shared no-op context manager, so the annotated forward stays
  bit-identical to an unannotated one;
* **the span stack** — the process tracer records nesting whether or
  not sinks are attached, so the epoch index and span path are read
  off ``get_tracer()`` at anomaly time (forward) or captured at
  forward time for the backward check.

The monitor also aggregates per-epoch gradient-health gauges (alpha /
weight grad-norm ratio, update-to-parameter scale, dead-op detection
when a mixture weight underflows :attr:`HealthMonitor.dead_op_eps`)
fed by the searchers, and emits them as ``grad_health`` / ``dead_op``
events when an event recorder is installed (DESIGN section 7).

Like every obs layer: strictly a no-op unless installed, draws nothing
from the seeded RNG stream, and leaves instrumented runs bit-identical.
"""

from __future__ import annotations

import contextlib
from typing import Iterator

import numpy as np

from repro.obs import events
from repro.obs import tape
from repro.obs.spans import get_tracer

__all__ = [
    "NumericsAnomaly",
    "HealthMonitor",
    "op_scope",
    "current_op_scope",
    "install",
    "uninstall",
    "get_monitor",
    "enabled",
    "check_numerics",
]

MODES = ("raise", "warn")


class NumericsAnomaly(RuntimeError):
    """A non-finite (or overflowing) value on the autograd tape.

    Carries full provenance so the failure names itself: which op,
    which supernet edge and layer, which epoch, and the span path the
    dispatch happened under. ``phase`` is ``"forward"`` for op outputs
    and ``"backward"`` for gradients produced by an op's VJP.
    """

    def __init__(
        self,
        kind: str,
        phase: str,
        op: str,
        edge: str | None = None,
        layer: int | None = None,
        epoch: int | None = None,
        span_path: str | None = None,
    ):
        self.kind = kind
        self.phase = phase
        self.op = op
        self.edge = edge
        self.layer = layer
        self.epoch = epoch
        self.span_path = span_path
        where = [f"op={op!r}"]
        if edge is not None:
            where.append(f"edge={edge!r}")
        if layer is not None:
            where.append(f"layer={layer}")
        if epoch is not None:
            where.append(f"epoch={epoch}")
        if span_path:
            where.append(f"span={span_path!r}")
        super().__init__(f"{kind} in {phase} of {', '.join(where)}")

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "phase": self.phase,
            "op": self.op,
            "edge": self.edge,
            "layer": self.layer,
            "epoch": self.epoch,
            "span_path": self.span_path,
        }


# ---------------------------------------------------------------------
# op scopes: supernet-edge provenance for tape-level anomalies
# ---------------------------------------------------------------------
_SCOPES: list[dict] = []


class _OpScope:
    __slots__ = ("attrs",)

    def __init__(self, attrs: dict):
        self.attrs = attrs

    def __enter__(self) -> "_OpScope":
        _SCOPES.append(self.attrs)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        _SCOPES.pop()
        return False


class _NullScope:
    """Shared do-nothing scope returned while no monitor is installed."""

    __slots__ = ()

    def __enter__(self) -> "_NullScope":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SCOPE = _NullScope()


def op_scope(edge: str | None = None, layer: int | None = None, op: str | None = None):
    """Annotate the ops dispatched inside the block with edge provenance.

    While no monitor is installed this returns a shared no-op context
    manager — the annotated code path performs no list mutation, no
    allocation, and no RNG draws, keeping monitor-off runs
    bit-identical.
    """
    if _MONITOR is None:
        return _NULL_SCOPE
    return _OpScope({"edge": edge, "layer": layer, "op": op})


def current_op_scope() -> dict | None:
    """The innermost active op-scope annotation, if any."""
    return _SCOPES[-1] if _SCOPES else None


def _span_provenance() -> tuple[int | None, str]:
    """(epoch index, span path) read off the process tracer's stack."""
    stack = get_tracer()._stack
    epoch = None
    for span in reversed(stack):
        if span.name == "epoch":
            index = span.attrs.get("index")
            epoch = int(index) if index is not None else None
            break
    return epoch, "/".join(span.name for span in stack)


def _op_name(backward_fn) -> str:
    qualname = getattr(backward_fn, "__qualname__", "") or ""
    name = qualname.split(".", 1)[0]
    return name or "<anonymous>"


# ---------------------------------------------------------------------
# the monitor
# ---------------------------------------------------------------------
class HealthMonitor:
    """Checks tape values for NaN/Inf/overflow; aggregates health gauges.

    Parameters
    ----------
    mode:
        ``"raise"`` aborts on the first anomaly; ``"warn"`` records it
        (see :attr:`anomalies`) and keeps going. Warn-mode anomalies are
        also emitted as ``numerics_anomaly`` events when an event
        recorder is installed.
    overflow:
        Absolute magnitude above which a *finite* value counts as an
        overflow anomaly (headroom before float64 saturates to inf).
    dead_op_eps:
        Mixture weights below this are reported as dead ops.
    """

    def __init__(
        self,
        mode: str = "raise",
        overflow: float = 1e100,
        dead_op_eps: float = 1e-6,
    ):
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        self.mode = mode
        self.overflow = float(overflow)
        self.dead_op_eps = float(dead_op_eps)
        self.anomalies: list[NumericsAnomaly] = []
        self.checked_entries = 0
        self.epoch_reports: list[dict] = []
        self.installed = False

    # ------------------------------------------------------------------
    def install(self) -> "HealthMonitor":
        if not self.installed:
            # Claim the singleton before touching the tape chain, so a
            # conflicting install leaves no orphaned hook behind.
            install(self)
            try:
                tape.add_tape_hook(self._tape_hook)
            except Exception:
                uninstall(self)
                raise
            self.installed = True
        return self

    def uninstall(self) -> None:
        if self.installed:
            tape.remove_tape_hook(self._tape_hook)
            self.installed = False
            uninstall(self)

    # ------------------------------------------------------------------
    def _classify(self, array: np.ndarray) -> str | None:
        """Anomaly kind for ``array``, or None when it is healthy."""
        if array.dtype.kind not in "fc":
            return None
        if not np.isfinite(array).all():
            return "NaN" if np.isnan(array).any() else "Inf"
        if array.size and float(np.abs(array).max()) > self.overflow:
            return "overflow"
        return None

    def _report(self, anomaly: NumericsAnomaly) -> None:
        if self.mode == "raise":
            raise anomaly
        self.anomalies.append(anomaly)
        data = anomaly.to_dict()
        events.emit("numerics_anomaly", epoch=data.pop("epoch"), **data)

    def _tape_hook(self, data, parents, backward_fn):
        self.checked_entries += 1
        op = _op_name(backward_fn)
        scope = current_op_scope() or {}
        kind = self._classify(np.asarray(data))
        epoch, span_path = _span_provenance()
        edge = scope.get("edge")
        layer = scope.get("layer")
        if kind is not None:
            self._report(
                NumericsAnomaly(
                    kind, "forward", op,
                    edge=edge, layer=layer, epoch=epoch, span_path=span_path,
                )
            )
        monitor = self

        def checked_backward(grad):
            parent_grads = backward_fn(grad)
            for parent_grad in parent_grads:
                if parent_grad is None:
                    continue
                bad = monitor._classify(np.asarray(parent_grad))
                if bad is not None:
                    monitor._report(
                        NumericsAnomaly(
                            bad, "backward", op,
                            edge=edge, layer=layer, epoch=epoch,
                            span_path=span_path,
                        )
                    )
                    break
            return parent_grads

        checked_backward.__qualname__ = getattr(
            backward_fn, "__qualname__", checked_backward.__qualname__
        )
        return checked_backward

    # ------------------------------------------------------------------
    # per-epoch gradient health (fed by the searchers / trainer)
    # ------------------------------------------------------------------
    def observe_epoch(
        self,
        epoch: int,
        arch_params=(),
        weight_params=(),
        arch_before=None,
        weight_before=None,
        mixtures: dict[str, np.ndarray] | None = None,
        op_names: dict[str, tuple[str, ...]] | None = None,
        arch_grad_norm: float | None = None,
        weight_grad_norm: float | None = None,
    ) -> dict:
        """Record one epoch's gradient-health gauges.

        ``mixtures`` maps edge kind (``node``/``skip``/``layer``) to the
        raw alpha matrix for that kind; rows are softmaxed here (pure
        deterministic numpy, no RNG) to find dead ops. ``*_before`` are
        pre-step parameter copies for the update/param scale gauge.
        Callers that measured grad norms at the right moment (right
        after each step, before ``zero_grad``) pass them via
        ``*_grad_norm``; otherwise they are read off the params' current
        ``.grad`` slots.
        """
        arch_grad = (
            arch_grad_norm if arch_grad_norm is not None else _grad_norm(arch_params)
        )
        weight_grad = (
            weight_grad_norm
            if weight_grad_norm is not None
            else _grad_norm(weight_params)
        )
        report = {
            "epoch": int(epoch),
            "arch_grad_norm": arch_grad,
            "weight_grad_norm": weight_grad,
            "grad_ratio": (
                arch_grad / weight_grad if weight_grad > 0.0 else None
            ),
            "arch_update_scale": _update_scale(arch_params, arch_before),
            "weight_update_scale": _update_scale(weight_params, weight_before),
        }
        dead = _dead_ops(mixtures or {}, op_names or {}, self.dead_op_eps)
        report["dead_ops"] = dead
        self.epoch_reports.append(report)
        events.emit(
            "grad_health",
            epoch=epoch,
            **{k: v for k, v in report.items() if k not in ("epoch", "dead_ops")},
        )
        for entry in dead:
            events.emit("dead_op", epoch=epoch, **entry)
        return report

    def dead_ops(self) -> list[dict]:
        """Every dead-op sighting across the recorded epochs."""
        return [
            dict(entry, epoch=report["epoch"])
            for report in self.epoch_reports
            for entry in report["dead_ops"]
        ]

    def summary(self) -> dict:
        """Roll-up for CLI output: anomaly and dead-op counts."""
        return {
            "mode": self.mode,
            "checked_entries": self.checked_entries,
            "anomalies": [a.to_dict() for a in self.anomalies],
            "epochs_observed": len(self.epoch_reports),
            "dead_ops": self.dead_ops(),
        }


def _grad_norm(params) -> float:
    total = 0.0
    for param in params:
        if param.grad is not None:
            total += float(np.sum(param.grad * param.grad))
    return float(np.sqrt(total))


def _update_scale(params, before) -> float | None:
    """``||p_new - p_old|| / ||p_old||`` aggregated over a param group."""
    if before is None:
        return None
    delta = 0.0
    base = 0.0
    for param, old in zip(params, before):
        diff = param.data - old
        delta += float(np.sum(diff * diff))
        base += float(np.sum(old * old))
    if base <= 0.0:
        return None
    return float(np.sqrt(delta) / np.sqrt(base))


def _dead_ops(
    mixtures: dict[str, np.ndarray],
    op_names: dict[str, tuple[str, ...]],
    eps: float,
) -> list[dict]:
    """Ops whose softmax mixture weight underflowed ``eps``."""
    dead: list[dict] = []
    for kind in sorted(mixtures):
        alpha = np.asarray(mixtures[kind], dtype=np.float64)
        shifted = alpha - alpha.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        weights = exp / exp.sum(axis=-1, keepdims=True)
        names = op_names.get(kind, ())
        for layer, row in enumerate(weights):
            for index in np.flatnonzero(row < eps):
                op = names[int(index)] if int(index) < len(names) else str(int(index))
                dead.append(
                    {
                        "edge": f"{kind}/{layer}",
                        "layer": int(layer),
                        "op": op,
                        "weight": float(row[int(index)]),
                    }
                )
    return dead


# ---------------------------------------------------------------------
# the process-wide monitor (mirrors the events-recorder singleton)
# ---------------------------------------------------------------------
_MONITOR: HealthMonitor | None = None


def install(monitor: HealthMonitor) -> None:
    """Make ``monitor`` the process-wide health monitor."""
    global _MONITOR
    if _MONITOR is not None and _MONITOR is not monitor:
        raise RuntimeError("a HealthMonitor is already installed")
    _MONITOR = monitor


def uninstall(monitor: HealthMonitor | None = None) -> None:
    """Remove the installed monitor (no-op if ``monitor`` is not it)."""
    global _MONITOR
    if monitor is None or _MONITOR is monitor:
        _MONITOR = None


def get_monitor() -> HealthMonitor | None:
    """The installed monitor, if any."""
    return _MONITOR


def enabled() -> bool:
    """True when a health monitor is installed."""
    return _MONITOR is not None


@contextlib.contextmanager
def check_numerics(
    mode: str = "raise",
    overflow: float = 1e100,
    dead_op_eps: float = 1e-6,
) -> Iterator[HealthMonitor]:
    """Install a :class:`HealthMonitor` for the duration of the block."""
    monitor = HealthMonitor(mode=mode, overflow=overflow, dead_op_eps=dead_op_eps)
    monitor.install()
    try:
        yield monitor
    finally:
        monitor.uninstall()
