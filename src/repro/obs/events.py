"""Structured event log v1: what the search *did*, not where time went.

Spans (PR 2) answer "where does time go"; events answer "why did the
search converge to this architecture". An :class:`EventRecorder`
captures a stream of typed records — per-epoch alpha softmax matrices,
per-edge entropies, genotype flips, gradient norms, loss/score curves —
that ``repro report run``/``report diff`` turn into dashboards.

Design constraints (mirroring the span layer):

* **emitting is a no-op unless a recorder is installed** — library code
  calls :func:`emit` unconditionally; with no recorder the call returns
  before touching any payload, so a recorded search is bit-identical to
  an unrecorded one (the PR-2 guarantee extends to events);
* **the sink machinery is shared** — an events file is a v1 JSONL trace
  (``trace-meta`` header via :class:`~repro.obs.sinks.JsonlSink`) whose
  lines carry ``"type": "event"`` records; span records may interleave
  in the same file, so one artifact feeds both the telemetry dashboard
  and the hotspot report;
* **clocks are injectable and optional** — with no clock, events carry
  no wall time and two seeded runs produce byte-identical files; pass a
  clock (real or fake) to stamp events with ``t``.

Event schema (one JSON object per line, inside a v1 trace)::

    {"type": "event", "seq": 0, "event": "<name>",
     "epoch": 3?, "t": 1.25?, "data": {...}?}

PR 5 extends the v1 vocabulary (same record shape, new ``event``
kinds) with the tape-health stream: ``numerics_anomaly`` (a NaN / Inf /
overflow with op/edge/layer/span provenance, warn mode only —
raise mode aborts instead), ``grad_health`` (per-epoch alpha/weight
grad norms, their ratio, and update/param scales), and ``dead_op``
(a mixture weight underflowed the monitor's epsilon). Traces may also
carry a ``"type": "memory_stats"`` record — the
:class:`repro.obs.memory.MemoryTracker` snapshot behind ``repro report
memory``.
"""

from __future__ import annotations

import contextlib
from pathlib import Path
from typing import Callable, Iterator

import numpy as np

from repro.obs.sinks import JsonlSink
from repro.obs.spans import get_tracer

__all__ = [
    "EVENTS_VERSION",
    "EventRecorder",
    "install",
    "uninstall",
    "get_recorder",
    "enabled",
    "emit",
    "record_events",
    "to_jsonable",
]

EVENTS_VERSION = 1


def to_jsonable(value):
    """Recursively convert numpy containers/scalars to JSON-safe types."""
    if isinstance(value, np.ndarray):
        return [to_jsonable(item) for item in value.tolist()]
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return value.item()
    if isinstance(value, dict):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    return value


class EventRecorder:
    """Captures event records in memory and, optionally, to a JSONL file.

    ``path`` opens an owned :class:`JsonlSink` (``trace-meta`` header
    with ``events_version``); ``sink`` shares an already-open sink (the
    way :class:`~repro.obs.session.ProfileSession` interleaves events
    into its trace file). ``clock`` adds a ``t`` wall-time field to
    every record — omit it for byte-identical seeded runs.

    The recorder doubles as a context manager that installs itself as
    the process-wide recorder for the duration of the block.
    """

    def __init__(
        self,
        path: str | Path | None = None,
        label: str = "run",
        clock: Callable[[], float] | None = None,
        meta: dict | None = None,
        sink: JsonlSink | None = None,
    ):
        self.label = label
        self.clock = clock
        self.records: list[dict] = []
        self._seq = 0
        self._shared = sink
        self._owned: JsonlSink | None = None
        if path is not None:
            header = {"label": label, "events_version": EVENTS_VERSION}
            if meta:
                header.update(meta)
            self._owned = JsonlSink(path, meta=header)

    # ------------------------------------------------------------------
    def emit(self, event: str, epoch: int | None = None, **data) -> dict:
        """Append one event record (and stream it to the sink, if any)."""
        record: dict = {"type": "event", "seq": self._seq, "event": event}
        if epoch is not None:
            record["epoch"] = int(epoch)
        if self.clock is not None:
            record["t"] = float(self.clock())
        if data:
            record["data"] = to_jsonable(data)
        self._seq += 1
        self.records.append(record)
        sink = self._owned or self._shared
        if sink is not None:
            sink.write_record(record)
        return record

    def events(self, name: str | None = None) -> list[dict]:
        """Recorded events, optionally filtered by event name."""
        if name is None:
            return list(self.records)
        return [r for r in self.records if r["event"] == name]

    def close(self) -> None:
        if self._owned is not None:
            self._owned.close()

    # ------------------------------------------------------------------
    def __enter__(self) -> "EventRecorder":
        install(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        uninstall(self)
        self.close()
        return False


# ---------------------------------------------------------------------
# The process-wide recorder. Library code (searchers, trainers) emits
# through the module-level emit(); nothing happens until one installs.
# ---------------------------------------------------------------------
_RECORDER: EventRecorder | None = None


def install(recorder: EventRecorder) -> None:
    """Make ``recorder`` the process-wide event recorder."""
    global _RECORDER
    if _RECORDER is not None and _RECORDER is not recorder:
        raise RuntimeError("an EventRecorder is already installed")
    _RECORDER = recorder


def uninstall(recorder: EventRecorder | None = None) -> None:
    """Remove the installed recorder (no-op if ``recorder`` is not it)."""
    global _RECORDER
    if recorder is None or _RECORDER is recorder:
        _RECORDER = None


def get_recorder() -> EventRecorder | None:
    """The installed recorder, if any."""
    return _RECORDER


def enabled() -> bool:
    """True when an event recorder is installed."""
    return _RECORDER is not None


def emit(event: str, epoch: int | None = None, **data) -> None:
    """Emit through the installed recorder; no-op when none is."""
    if _RECORDER is not None:
        _RECORDER.emit(event, epoch=epoch, **data)


@contextlib.contextmanager
def record_events(
    path: str | Path | None = None,
    label: str = "run",
    clock: Callable[[], float] | None = None,
    meta: dict | None = None,
    spans: bool = False,
) -> Iterator[EventRecorder]:
    """Install an :class:`EventRecorder` for the duration of the block.

    With ``spans=True`` (requires ``path``) the underlying JSONL sink is
    also attached to the process tracer, so span records interleave with
    events in one file and ``repro report diff`` can compute hotspot
    deltas from it.
    """
    recorder = EventRecorder(path=path, label=label, clock=clock, meta=meta)
    if spans and recorder._owned is None:
        raise ValueError("spans=True requires a path to write the trace to")
    install(recorder)
    tracer = get_tracer()
    if spans:
        tracer.add_sink(recorder._owned)
    try:
        yield recorder
    finally:
        if spans:
            tracer.remove_sink(recorder._owned)
        uninstall(recorder)
        recorder.close()
