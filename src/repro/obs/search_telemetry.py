"""Search-dynamics instrumentation for the differentiable search.

SANE's contribution *is* the dynamics of the bi-level search: the alpha
softmax distributions (Eq. 2) sharpen epoch by epoch until the argmax
genotype stabilises — or collapse onto a degenerate op, the classic
one-shot NAS failure mode GraphNAS/AutoGNN motivate monitoring for.
:class:`SearchTelemetry` turns one search run into a stream of
:mod:`repro.obs.events` records:

``search_start``   space, mode, seed, epoch budget, key hyper-params
``alpha_snapshot`` per-edge softmax rows and entropies, once per epoch
``epoch_metrics``  val score, train/val loss, alpha/weight grad norms
``genotype``       the initial argmax genotype (flip baseline)
``genotype_flip``  which op on which edge changed under argmax
``search_end``     final derived architecture, epochs run

Everything here is *read-only* on the supernet: softmax/entropy are
computed on copies, the argmax tracker breaks ties deterministically
(first index, no RNG), and every hook early-outs unless a recorder is
installed — so a recorded search stays bit-identical to an unrecorded
one.
"""

from __future__ import annotations

import numpy as np

from repro.obs import events

__all__ = [
    "softmax_rows",
    "row_entropy",
    "argmax_genotype",
    "genotype_flips",
    "grad_l2_norm",
    "describe_genotype",
    "SearchTelemetry",
]


def softmax_rows(matrix: np.ndarray) -> np.ndarray:
    """Numerically stable row-wise softmax of a 2-D alpha matrix."""
    matrix = np.asarray(matrix, dtype=np.float64)
    shifted = matrix - matrix.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def row_entropy(probs: np.ndarray) -> np.ndarray:
    """Shannon entropy (nats) of each row of a probability matrix."""
    clipped = np.clip(np.asarray(probs, dtype=np.float64), 1e-12, 1.0)
    return -np.sum(clipped * np.log(clipped), axis=-1)


def argmax_genotype(space, alphas: dict[str, np.ndarray]) -> dict:
    """Deterministic argmax genotype (first index wins ties).

    This is the *telemetry* view of the derivation — unlike
    :func:`repro.core.search.derive_from_alphas` it never draws from an
    RNG, so tracking the genotype epoch-by-epoch cannot perturb the
    searcher's seeded random stream.
    """
    return {
        "node": tuple(
            space.node_ops[int(np.argmax(alphas["node"][i]))]
            for i in range(space.num_layers)
        ),
        "skip": tuple(
            space.skip_ops[int(np.argmax(alphas["skip"][i]))]
            for i in range(space.num_layers)
        ),
        "layer": space.layer_ops[int(np.argmax(alphas["layer"][0]))],
    }


def genotype_flips(old: dict, new: dict) -> list[dict]:
    """Per-edge differences between two argmax genotypes."""
    flips: list[dict] = []
    for kind in ("node", "skip"):
        for index, (before, after) in enumerate(zip(old[kind], new[kind])):
            if before != after:
                flips.append(
                    {"edge": f"{kind}/{index}", "from": before, "to": after}
                )
    if old["layer"] != new["layer"]:
        flips.append({"edge": "layer/0", "from": old["layer"], "to": new["layer"]})
    return flips


def grad_l2_norm(params) -> float:
    """Global L2 norm over the ``.grad`` arrays of a parameter group."""
    total = 0.0
    for param in params:
        if param.grad is not None:
            total += float(np.sum(param.grad * param.grad))
    return float(np.sqrt(total))


def describe_genotype(genotype: dict) -> str:
    """Figure-2-style one-liner for a telemetry genotype dict."""
    aggs = " -> ".join(genotype["node"])
    skips = "".join("I" if s == "identity" else "Z" for s in genotype["skip"])
    return f"{aggs} | skips={skips} | jk={genotype['layer']}"


class SearchTelemetry:
    """Per-search event emitter; every hook no-ops unless recording."""

    def __init__(self, space):
        self.space = space
        self._genotype: dict | None = None

    # ------------------------------------------------------------------
    def search_start(self, *, mode: str, seed: int, epochs: int, **hparams) -> None:
        if not events.enabled():
            return
        events.emit(
            "search_start",
            mode=mode,
            seed=seed,
            epochs=epochs,
            space={
                "num_layers": self.space.num_layers,
                "node_ops": list(self.space.node_ops),
                "skip_ops": list(self.space.skip_ops),
                "layer_ops": list(self.space.layer_ops),
            },
            **hparams,
        )

    def epoch(
        self,
        epoch: int,
        alphas: dict[str, np.ndarray],
        *,
        val_score: float | None = None,
        train_loss: float | None = None,
        val_loss: float | None = None,
        arch_grad_norm: float | None = None,
        weight_grad_norm: float | None = None,
    ) -> None:
        if not events.enabled():
            return
        probs = {kind: softmax_rows(matrix) for kind, matrix in alphas.items()}
        entropy = {kind: row_entropy(p) for kind, p in probs.items()}
        events.emit("alpha_snapshot", epoch=epoch, probs=probs, entropy=entropy)
        metrics = {
            name: float(value)
            for name, value in (
                ("val_score", val_score),
                ("train_loss", train_loss),
                ("val_loss", val_loss),
                ("arch_grad_norm", arch_grad_norm),
                ("weight_grad_norm", weight_grad_norm),
            )
            if value is not None
        }
        if metrics:
            events.emit("epoch_metrics", epoch=epoch, **metrics)
        genotype = argmax_genotype(self.space, alphas)
        if self._genotype is None:
            events.emit("genotype", epoch=epoch, genotype=genotype)
        else:
            flips = genotype_flips(self._genotype, genotype)
            if flips:
                events.emit(
                    "genotype_flip", epoch=epoch, flips=flips, genotype=genotype
                )
        self._genotype = genotype

    def search_end(self, *, epochs: int, architecture) -> None:
        if not events.enabled():
            return
        events.emit(
            "search_end",
            epochs=epochs,
            architecture={
                "node": list(architecture.node_aggregators),
                "skip": list(architecture.skip_connections),
                "layer": architecture.layer_aggregator,
            },
        )
