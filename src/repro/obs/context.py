"""Request-scoped trace context: explicit parent handoff across threads.

The PR-2 tracer infers span parentage from a process-wide stack, which
is the right model for the search side — one thread, lexically nested
phases. The serving side breaks both assumptions: a request is born on
a client thread, waits in a queue, and is executed and resolved on a
worker thread, so "who is my parent" cannot be read off any stack.
This module adds the missing piece: **explicit context propagation**.

* :class:`TraceContext` — the immutable handoff record (trace id,
  request id, parent span id) that crosses the client→queue→worker
  boundary. It is plain data: serialisable, thread-agnostic, and the
  only thing the inference engine needs to attach its stages to the
  right tree.
* :class:`RequestTrace` — the server-side owner of one request's root
  span (``kind="request"``). Stage spans (``kind="stage"``) hang off
  the root by id, never off the tracer stack, so N concurrent requests
  produce N disjoint trees no matter how their threads interleave.
* :class:`RequestTracer` — the factory that allocates deterministic
  trace ids (a seeded prefix plus a monotonic counter — two identical
  runs name their traces identically) and opens request traces.
* :func:`context_span` — open one stage span from a bare
  :class:`TraceContext`, which is how code on the far side of the
  queue (the engine's forward/slice stages) joins the tree without
  ever seeing the root :class:`~repro.obs.spans.Span` object.

Everything reuses the PR-2 machinery: spans dispatch to whatever sinks
are attached to the tracer (none attached → the tree is timed and
discarded), records carry ``attrs.trace``/``attrs.request`` so trace
files group per request, and clocks stay injectable for deterministic
tests. Creating a request trace reads the clock a handful of times and
draws nothing from any RNG, so traced serving output is bit-identical
to untraced serving output.
"""

from __future__ import annotations

import dataclasses
import threading

from repro.obs.spans import Span, Tracer, get_tracer

__all__ = [
    "TraceContext",
    "RequestTrace",
    "RequestTracer",
    "context_span",
    "mirror_span",
    "REQUEST_SPAN",
    "REQUEST_STAGES",
]

# The root span name every request tree hangs off, and the canonical
# stage vocabulary in pipeline order (reports render stages in this
# order; unknown stage names sort after them).
REQUEST_SPAN = "serve.request"
REQUEST_STAGES = (
    "enqueue",
    "queue_wait",
    "batch_assemble",
    "forward",
    "slice",
    "resolve",
)


@dataclasses.dataclass(frozen=True)
class TraceContext:
    """The handoff record that propagates a trace across a boundary.

    ``parent_span_id`` names the span new stages should attach to —
    for serve requests, the root ``serve.request`` span. The receiving
    side never needs the live span object, only this record.
    """

    trace_id: str
    request_id: int
    parent_span_id: int | None = None

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "request_id": self.request_id,
            "parent_span_id": self.parent_span_id,
        }


def context_span(
    name: str,
    ctx: TraceContext,
    tracer: Tracer | None = None,
    kind: str = "stage",
    **attrs,
) -> Span:
    """Start a stage span as a child of ``ctx``'s parent span.

    Explicit-parent, stack-free: safe to call from any thread, and the
    returned (already started) span may be finished on a different
    thread than the one that started it.
    """
    tracer = tracer if tracer is not None else get_tracer()
    span = tracer.span(
        name, kind=kind, trace=ctx.trace_id, request=ctx.request_id, **attrs
    )
    return span.start_explicit(parent_id=ctx.parent_span_id, depth=1)


def mirror_span(
    name: str,
    ctx: TraceContext,
    t_start: float,
    t_end: float,
    tracer: Tracer | None = None,
    kind: str = "stage",
    **attrs,
) -> Span:
    """Record a stage span that copies an already-measured window.

    The batching engine runs **one** coalesced forward for a whole
    group of requests; each request's tree still deserves a ``forward``
    stage, so every member gets a span mirroring the shared window
    (same start/end, ``shared=N`` attr says how many trees share it).
    The span is recorded fully formed — started and finished with the
    given timestamps — and dispatched to sinks immediately.
    """
    tracer = tracer if tracer is not None else get_tracer()
    span = tracer.span(
        name, kind=kind, trace=ctx.trace_id, request=ctx.request_id, **attrs
    )
    span.explicit = True
    span.span_id = tracer._allocate_id()
    span.parent_id = ctx.parent_span_id
    span.depth = 1
    span.t_start = float(t_start)
    span.t_end = float(t_end)
    tracer._dispatch(span)
    return span


class RequestTrace:
    """One request's span tree: a root span plus stage children.

    Created on the submitting thread, finished on a worker thread; the
    stages in between may come from either side of the queue. The root
    is started immediately (enqueue time is the tree's origin) and
    stays open until :meth:`finish`.
    """

    __slots__ = ("tracer", "context", "root")

    def __init__(
        self, tracer: Tracer, trace_id: str, request_id: int, **attrs
    ):
        self.tracer = tracer
        self.root = tracer.span(
            REQUEST_SPAN, kind="request",
            trace=trace_id, request=request_id, **attrs,
        )
        self.root.start_explicit(parent_id=None, depth=0)
        self.context = TraceContext(
            trace_id=trace_id,
            request_id=request_id,
            parent_span_id=self.root.span_id,
        )

    @property
    def trace_id(self) -> str:
        return self.context.trace_id

    def stage(self, name: str, **attrs) -> Span:
        """Start one stage span under this request's root."""
        return context_span(name, self.context, tracer=self.tracer, **attrs)

    def finish(self, **attrs) -> Span:
        """Close the root span (idempotent); ``attrs`` annotate it."""
        if attrs:
            self.root.attrs.update(attrs)
        return self.root.finish()


class RequestTracer:
    """Allocates request traces with deterministic ids.

    Trace ids are ``<prefix><counter:08x>`` — no RNG, no wall clock —
    so a seeded bench names its traces identically across runs and a
    p99 exemplar recorded today still points at the same logical
    request tomorrow. The counter is the request id; both are
    per-factory (per-server), allocated under a lock because clients
    submit from arbitrary threads.
    """

    def __init__(self, tracer: Tracer | None = None, prefix: str = "t-"):
        self.tracer = tracer if tracer is not None else get_tracer()
        self.prefix = prefix
        self._lock = threading.Lock()
        self._next_request = 0

    def start_request(self, **attrs) -> RequestTrace:
        """Open a new request trace (root span starts now)."""
        with self._lock:
            request_id = self._next_request
            self._next_request += 1
        trace_id = f"{self.prefix}{request_id:08x}"
        return RequestTrace(self.tracer, trace_id, request_id, **attrs)

    @property
    def issued(self) -> int:
        """How many request traces this factory has started."""
        return self._next_request
