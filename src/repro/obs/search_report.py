"""Text dashboards over a recorded event log (``repro report run/diff``).

Input is an events JSONL file (a v1 trace whose lines carry
``"type": "event"`` records, optionally interleaved with spans — see
:mod:`repro.obs.events`). Output is deterministic plain text: with a
fake clock on the recorder, two seeded runs render byte-identical
dashboards, which the tier-1 telemetry test locks down.

* :func:`render_run` — one run's dashboard: per-edge entropy sparkline
  table, genotype-flip timeline, convergence summary, metric curves;
* :func:`render_diff` — two runs compared: final genotype, convergence
  epoch, score curves, and (when span records are present in both
  files) hotspot deltas via the PR-2 span aggregation.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

from repro.obs.report import aggregate_spans, format_table
from repro.obs.sinks import read_trace

__all__ = ["SearchRun", "load_run_records", "split_searches", "render_run", "render_diff"]

_SPARK = "▁▂▃▄▅▆▇█"
_SPARK_WIDTH = 32


def _sparkline(values: list[float]) -> str:
    """Unicode trend line, downsampled to at most ``_SPARK_WIDTH`` cells."""
    if not values:
        return ""
    if len(values) > _SPARK_WIDTH:
        step = (len(values) - 1) / (_SPARK_WIDTH - 1)
        values = [values[round(i * step)] for i in range(_SPARK_WIDTH)]
    low, high = min(values), max(values)
    if high - low < 1e-12:
        return _SPARK[0] * len(values)
    scale = (len(_SPARK) - 1) / (high - low)
    return "".join(_SPARK[int((v - low) * scale)] for v in values)


def _num(value, digits: int = 4) -> str:
    return "-" if value is None else f"{value:.{digits}f}"


@dataclasses.dataclass
class SearchRun:
    """One ``search_start`` .. ``search_end`` block of an event log."""

    meta: dict = dataclasses.field(default_factory=dict)
    start_t: float | None = None
    end_t: float | None = None
    epochs: dict[int, dict] = dataclasses.field(default_factory=dict)
    entropy: dict[str, list[float]] = dataclasses.field(default_factory=dict)
    flips: list[dict] = dataclasses.field(default_factory=list)
    grad_health: dict[int, dict] = dataclasses.field(default_factory=dict)
    dead_ops: list[dict] = dataclasses.field(default_factory=list)
    initial_genotype: dict | None = None
    last_genotype: dict | None = None
    final_architecture: dict | None = None

    # ------------------------------------------------------------------
    @property
    def num_epochs(self) -> int:
        return len(self.epochs)

    @property
    def convergence_epoch(self) -> int | None:
        """Epoch of the last argmax genotype flip (0 when it never flips)."""
        if not self.epochs:
            return None
        if not self.flips:
            return 0
        return max(flip["epoch"] for flip in self.flips)

    @property
    def wall_time(self) -> float | None:
        if self.start_t is None or self.end_t is None:
            return None
        return self.end_t - self.start_t

    def metric_series(self, name: str) -> list[tuple[int, float]]:
        return [
            (epoch, payload[name])
            for epoch, payload in sorted(self.epochs.items())
            if name in payload
        ]

    def final_metric(self, name: str):
        series = self.metric_series(name)
        return series[-1][1] if series else None

    def final_genotype(self) -> dict | None:
        if self.final_architecture is not None:
            return self.final_architecture
        return self.last_genotype


def _describe(genotype: dict | None) -> str:
    if genotype is None:
        return "(unknown)"
    aggs = " -> ".join(genotype["node"])
    skips = "".join("I" if s == "identity" else "Z" for s in genotype["skip"])
    return f"{aggs} | skips={skips} | jk={genotype['layer']}"


def load_run_records(path: str | Path) -> tuple[list[dict], list[dict]]:
    """(event records, all records) of one events/trace JSONL file."""
    records = read_trace(path)
    return [r for r in records if r.get("type") == "event"], records


def split_searches(event_records: list[dict]) -> list[SearchRun]:
    """Group a flat event stream into per-search runs.

    Events outside any ``search_start``..``search_end`` block (training
    runs, candidate probes) are ignored here; callers summarise them
    separately.
    """
    runs: list[SearchRun] = []
    current: SearchRun | None = None
    for record in event_records:
        name = record["event"]
        data = record.get("data", {})
        if name == "search_start":
            current = SearchRun(meta=data, start_t=record.get("t"))
            runs.append(current)
            continue
        if current is None:
            continue
        epoch = record.get("epoch")
        if name == "alpha_snapshot" and epoch is not None:
            for kind, rows in (data.get("entropy") or {}).items():
                for index, value in enumerate(rows):
                    series = current.entropy.setdefault(f"{kind}/{index}", [])
                    series.append(float(value))
            current.epochs.setdefault(epoch, {})
        elif name == "epoch_metrics" and epoch is not None:
            current.epochs.setdefault(epoch, {}).update(data)
        elif name == "genotype":
            current.initial_genotype = data.get("genotype")
            current.last_genotype = data.get("genotype")
        elif name == "genotype_flip":
            for flip in data.get("flips", []):
                current.flips.append({"epoch": epoch, **flip})
            current.last_genotype = data.get("genotype", current.last_genotype)
        elif name == "grad_health" and epoch is not None:
            current.grad_health[epoch] = data
        elif name == "dead_op":
            current.dead_ops.append({"epoch": epoch, **data})
        elif name == "search_end":
            current.final_architecture = data.get("architecture")
            current.end_t = record.get("t")
            current = None
    return runs


# ---------------------------------------------------------------------
# report run
# ---------------------------------------------------------------------
def _render_search_section(run: SearchRun, index: int) -> list[str]:
    meta = run.meta
    header = (
        f"-- search {index}: mode={meta.get('mode', '?')} "
        f"seed={meta.get('seed', '?')} epochs={run.num_epochs}"
    )
    if run.wall_time is not None:
        header += f" wall={run.wall_time:.2f}s"
    header += " --"
    lines = [header]
    lines.append(f"final genotype: {_describe(run.final_genotype())}")
    convergence = run.convergence_epoch
    if convergence is not None and run.num_epochs:
        last_epoch = max(run.epochs)
        stable_for = last_epoch - convergence
        lines.append(
            f"genotype flips: {len(run.flips)} "
            f"(argmax stable since epoch {convergence}, "
            f"{stable_for} epoch(s) unchanged)"
        )

    if run.entropy:
        rows = []
        for edge in sorted(run.entropy, key=_edge_sort_key):
            series = run.entropy[edge]
            rows.append(
                [edge, _num(series[0]), _num(series[-1]), _sparkline(series)]
            )
        lines.append("")
        lines.append("per-edge entropy (nats):")
        lines.extend(format_table(["edge", "first", "last", "trend"], rows))
        collapse_lines = _entropy_collapse_lines(run)
        if collapse_lines:
            lines.append("")
            lines.extend(collapse_lines)

    lines.append("")
    if run.flips:
        lines.append("genotype flip timeline:")
        rows = [
            [f"epoch {flip['epoch']}", flip["edge"], f"{flip['from']} -> {flip['to']}"]
            for flip in run.flips
        ]
        lines.extend(format_table(["when", "edge", "change"], rows))
    else:
        lines.append("genotype flip timeline: (no flips; argmax stable from epoch 0)")

    curve_rows = _curve_rows(run)
    if curve_rows:
        lines.append("")
        lines.append("curves:")
        lines.extend(
            format_table(
                ["epoch", "train_loss", "val_loss", "val_score",
                 "|g_alpha|", "|g_w|"],
                curve_rows,
            )
        )

    # PR-5 tape-health streams: only rendered when the run was recorded
    # with a HealthMonitor installed, so plain event logs keep their
    # byte-identical dashboards.
    grad_lines = _grad_health_lines(run)
    if grad_lines:
        lines.append("")
        lines.extend(grad_lines)
    return lines


# Entropy-collapse detection (the DARTS failure mode): an edge whose
# alpha entropy drops to (and stays at) near-zero in the first half of
# the search has frozen its argmax long before the supernet weights
# converged — exactly the premature-commitment pathology SANE's
# smoother mixture dynamics are supposed to avoid. An edge counts as
# collapsed once its entropy sits at or below
# max(_COLLAPSE_FLOOR, _COLLAPSE_FRAC * initial) for the rest of the
# run; "early" means that happened before _EARLY_FRAC of the snapshots.
_COLLAPSE_FLOOR = 0.05
_COLLAPSE_FRAC = 0.1
_EARLY_FRAC = 0.5


def _collapse_index(series: list[float]) -> int | None:
    """First snapshot index from which entropy stays saturated, if any."""
    if len(series) < 2:
        return None
    threshold = max(_COLLAPSE_FLOOR, _COLLAPSE_FRAC * series[0])
    index = None
    for position, value in enumerate(series):
        if value <= threshold:
            if index is None:
                index = position
        else:
            index = None
    return index


def _entropy_collapse_lines(run: SearchRun) -> list[str]:
    """The entropy-collapse section of one search's dashboard."""
    rows = []
    tracked = 0
    for edge in sorted(run.entropy, key=_edge_sort_key):
        series = run.entropy[edge]
        if len(series) < 2:
            continue
        tracked += 1
        index = _collapse_index(series)
        if index is None:
            continue
        frac = index / (len(series) - 1)
        if frac >= _EARLY_FRAC:
            continue
        rows.append(
            [
                edge,
                f"{index}/{len(series) - 1}",
                f"{100.0 * frac:.0f}%",
                _num(series[0]),
                _num(series[-1]),
            ]
        )
    if not tracked:
        return []
    if not rows:
        return [
            "entropy collapse: none before 50% of the search (mixtures "
            "stayed soft — SANE-like dynamics, not the DARTS failure mode)"
        ]
    lines = [
        f"entropy collapse: {len(rows)}/{tracked} edge(s) saturated before "
        "50% of the search (DARTS-style premature argmax; SANE expects "
        "soft mixtures until late)"
    ]
    lines.extend(
        format_table(["edge", "collapse@", "frac", "first", "last"], rows)
    )
    return lines


def _grad_health_lines(run: SearchRun, max_rows: int = 12) -> list[str]:
    """Gradient-health section: ratio trend table + dead-op sightings."""
    lines: list[str] = []
    if run.grad_health:
        epochs = sorted(run.grad_health)
        ratios = [
            float(run.grad_health[epoch].get("grad_ratio") or 0.0)
            for epoch in epochs
        ]
        lines.append(
            f"gradient health (|g_alpha|/|g_w| trend {_sparkline(ratios)}):"
        )
        if len(epochs) > max_rows:
            head = epochs[: max_rows // 2]
            shown: list[int | None] = [
                *head, None, *epochs[-(max_rows - len(head)):]
            ]
        else:
            shown = list(epochs)
        rows: list[list[str]] = []
        for epoch in shown:
            if epoch is None:
                rows.append(["...", "", "", "", "", ""])
                continue
            payload = run.grad_health[epoch]
            rows.append(
                [
                    str(epoch),
                    _num(payload.get("arch_grad_norm")),
                    _num(payload.get("weight_grad_norm")),
                    _num(payload.get("grad_ratio")),
                    _num(payload.get("arch_update_scale"), 6),
                    _num(payload.get("weight_update_scale"), 6),
                ]
            )
        lines.extend(
            format_table(
                ["epoch", "|g_alpha|", "|g_w|", "ratio",
                 "alpha_step", "w_step"],
                rows,
            )
        )
    if run.dead_ops:
        if lines:
            lines.append("")
        lines.append(f"dead-op sightings: {len(run.dead_ops)}")
        rows = [
            [
                f"epoch {sighting.get('epoch', '?')}",
                str(sighting.get("edge", "?")),
                str(sighting.get("layer", "?")),
                str(sighting.get("op", "?")),
                _num(sighting.get("weight"), 6),
            ]
            for sighting in run.dead_ops
        ]
        lines.extend(
            format_table(["when", "edge", "layer", "op", "weight"], rows)
        )
    return lines


def _edge_sort_key(edge: str) -> tuple[int, int]:
    kind, __, index = edge.partition("/")
    order = {"node": 0, "skip": 1, "layer": 2}
    return (order.get(kind, 3), int(index or 0))


def _curve_rows(run: SearchRun, max_rows: int = 20) -> list[list[str]]:
    epochs = sorted(run.epochs)
    if not epochs:
        return []
    if len(epochs) > max_rows:
        head = epochs[: max_rows // 2]
        tail = epochs[-(max_rows - len(head)) :]
        shown: list[int | None] = [*head, None, *tail]
    else:
        shown = list(epochs)
    rows: list[list[str]] = []
    for epoch in shown:
        if epoch is None:
            rows.append(["...", "", "", "", "", ""])
            continue
        payload = run.epochs[epoch]
        rows.append(
            [
                str(epoch),
                _num(payload.get("train_loss")),
                _num(payload.get("val_loss")),
                _num(payload.get("val_score")),
                _num(payload.get("arch_grad_norm")),
                _num(payload.get("weight_grad_norm")),
            ]
        )
    return rows


def render_run(path: str | Path) -> str:
    """The ``repro report run`` dashboard for one events file."""
    event_records, all_records = load_run_records(path)
    label = all_records[0].get("label", "run")
    runs = split_searches(event_records)
    train_runs = sum(1 for r in event_records if r["event"] == "train_start")
    span_count = sum(1 for r in all_records if r.get("type") == "span")

    lines = [f"== Search telemetry: {label} =="]
    summary = (
        f"searches: {len(runs)}, training runs: {train_runs}, "
        f"events: {len(event_records)}"
    )
    if span_count:
        summary += f", spans: {span_count}"
    lines.append(summary)
    if not runs:
        lines.append("(no search_start events recorded)")
        return "\n".join(lines)
    for index, run in enumerate(runs, start=1):
        lines.append("")
        lines.extend(_render_search_section(run, index))
    pool_lines = _pool_utilization_lines(event_records)
    if pool_lines:
        lines.append("")
        lines.extend(pool_lines)
    return "\n".join(lines)


def _pool_utilization_lines(event_records: list[dict]) -> list[str]:
    """Per-worker utilization table from ``pool_utilization`` events.

    The pool emits one event per job wave; this aggregates across
    waves — tasks summed, busy fraction averaged — so sweeps and
    multi-wave searches render one table. Only constants are emitted
    on the in-process path, so recorded seeded dashboards stay
    byte-identical.
    """
    waves = [
        r.get("data", {})
        for r in event_records
        if r["event"] == "pool_utilization"
    ]
    if not waves:
        return []
    busy: dict[str, float] = {}
    seen: dict[str, int] = {}
    tasks: dict[str, int] = {}
    for wave in waves:
        for wid, stats in (wave.get("per_worker") or {}).items():
            busy[wid] = busy.get(wid, 0.0) + float(stats.get("busy_frac", 0.0))
            seen[wid] = seen.get(wid, 0) + 1
            tasks[wid] = tasks.get(wid, 0) + int(stats.get("tasks", 0))
    utilizations = [float(w.get("utilization", 0.0)) for w in waves]
    overall = sum(utilizations) / len(utilizations)
    lines = [
        f"worker pool utilization: {len(waves)} wave(s), "
        f"mean utilization {overall:.2f}"
    ]
    rows = [
        [
            f"worker-{wid}",
            str(tasks.get(wid, 0)),
            f"{busy[wid] / max(1, seen[wid]):.2f}",
        ]
        for wid in sorted(busy, key=lambda w: int(w) if w.isdigit() else 0)
    ]
    if rows:
        lines.extend(format_table(["worker", "tasks", "busy_frac"], rows))
    return lines


# ---------------------------------------------------------------------
# report diff
# ---------------------------------------------------------------------
def render_diff(path_a: str | Path, path_b: str | Path) -> str:
    """Compare two recorded runs (first search block of each file)."""
    events_a, records_a = load_run_records(path_a)
    events_b, records_b = load_run_records(path_b)
    label_a = records_a[0].get("label", "a")
    label_b = records_b[0].get("label", "b")
    if label_a == label_b:
        label_a, label_b = f"{label_a} (a)", f"{label_b} (b)"
    runs_a = split_searches(events_a)
    runs_b = split_searches(events_b)

    lines = [f"== Run diff: {label_a} vs {label_b} =="]
    if not runs_a or not runs_b:
        missing = label_a if not runs_a else label_b
        lines.append(f"(no search events recorded in {missing})")
        return "\n".join(lines)
    a, b = runs_a[0], runs_b[0]

    genotype_a, genotype_b = a.final_genotype(), b.final_genotype()
    if genotype_a == genotype_b:
        lines.append(f"final genotype: identical — {_describe(genotype_a)}")
    else:
        lines.append("final genotype: DIFFERS")
        lines.append(f"  {label_a}: {_describe(genotype_a)}")
        lines.append(f"  {label_b}: {_describe(genotype_b)}")
        if genotype_a is not None and genotype_b is not None:
            from repro.obs.search_telemetry import genotype_flips

            for flip in genotype_flips(genotype_a, genotype_b):
                lines.append(
                    f"  {flip['edge']}: {flip['from']} -> {flip['to']}"
                )

    rows = []
    for name, getter in (
        ("epochs", lambda r: r.num_epochs),
        ("convergence epoch", lambda r: r.convergence_epoch),
        ("genotype flips", lambda r: len(r.flips)),
        ("final val_score", lambda r: _num(r.final_metric("val_score"))),
        ("final train_loss", lambda r: _num(r.final_metric("train_loss"))),
        ("final val_loss", lambda r: _num(r.final_metric("val_loss"))),
        ("mean final entropy", lambda r: _num(_mean_final_entropy(r))),
    ):
        rows.append([name, str(getter(a)), str(getter(b))])
    lines.append("")
    lines.extend(format_table(["quantity", label_a, label_b], rows))

    curve_lines = _score_curve_diff(a, b, label_a, label_b)
    if curve_lines:
        lines.append("")
        lines.extend(curve_lines)

    hotspot_lines = _hotspot_deltas(records_a, records_b, label_a, label_b)
    if hotspot_lines:
        lines.append("")
        lines.extend(hotspot_lines)

    memory_lines = _memory_deltas(records_a, records_b, label_a, label_b)
    if memory_lines:
        lines.append("")
        lines.extend(memory_lines)
    return "\n".join(lines)


def _mean_final_entropy(run: SearchRun) -> float | None:
    finals = [series[-1] for series in run.entropy.values() if series]
    if not finals:
        return None
    return sum(finals) / len(finals)


def _score_curve_diff(
    a: SearchRun, b: SearchRun, label_a: str, label_b: str
) -> list[str]:
    series_a = dict(a.metric_series("val_score"))
    series_b = dict(b.metric_series("val_score"))
    shared = sorted(set(series_a) & set(series_b))
    if not shared:
        return []
    picks = sorted({shared[0], shared[len(shared) // 2], shared[-1]})
    rows = []
    for epoch in picks:
        delta = series_b[epoch] - series_a[epoch]
        rows.append(
            [str(epoch), _num(series_a[epoch]), _num(series_b[epoch]),
             f"{delta:+.4f}"]
        )
    lines = ["val_score curve (first/mid/last shared epoch):"]
    lines.extend(format_table(["epoch", label_a, label_b, "delta"], rows))
    return lines


def _hotspot_deltas(
    records_a: list[dict],
    records_b: list[dict],
    label_a: str,
    label_b: str,
    top: int = 8,
) -> list[str]:
    spans_a = [r for r in records_a if r.get("type") == "span"]
    spans_b = [r for r in records_b if r.get("type") == "span"]
    if not spans_a or not spans_b:
        return []
    totals_a = {agg.path: agg.total for agg in aggregate_spans(spans_a)}
    totals_b = {agg.path: agg.total for agg in aggregate_spans(spans_b)}
    shared = sorted(
        set(totals_a) & set(totals_b),
        key=lambda path: -abs(totals_b[path] - totals_a[path]),
    )
    if not shared:
        return []
    rows = []
    for path in shared[:top]:
        delta = totals_b[path] - totals_a[path]
        base = totals_a[path]
        pct = f"{100.0 * delta / base:+.1f}%" if base > 1e-12 else "n/a"
        rows.append(
            [path, _num(totals_a[path]), _num(totals_b[path]),
             f"{delta:+.4f}", pct]
        )
    lines = [f"hotspot deltas (cumulative seconds, {label_b} - {label_a}):"]
    lines.extend(
        format_table(["phase", label_a, label_b, "delta", "pct"], rows)
    )
    return lines


def _last_memory_stats(records: list[dict]) -> dict | None:
    stats = None
    for record in records:
        if record.get("type") == "memory_stats":
            stats = record.get("data")
    return stats


def _memory_deltas(
    records_a: list[dict],
    records_b: list[dict],
    label_a: str,
    label_b: str,
    top: int = 8,
) -> list[str]:
    """Per-op retained/peak tape-memory deltas between two recorded runs.

    Only rendered when both traces carry a ``memory_stats`` record
    (i.e. both were captured with ``repro profile --memory``), so
    plain event logs keep their byte-identical dashboards.
    """
    stats_a = _last_memory_stats(records_a)
    stats_b = _last_memory_stats(records_b)
    if stats_a is None or stats_b is None:
        return []
    from repro.obs.memory import _bytes_human

    peak_a = stats_a.get("peak_live_bytes", 0)
    peak_b = stats_b.get("peak_live_bytes", 0)
    sign = "+" if peak_b >= peak_a else "-"
    lines = [
        f"tape memory deltas ({label_b} - {label_a}):",
        f"overall peak live: {_bytes_human(peak_a)} -> {_bytes_human(peak_b)} "
        f"({sign}{_bytes_human(abs(peak_b - peak_a))})",
    ]
    ops_a = stats_a.get("per_op") or {}
    ops_b = stats_b.get("per_op") or {}

    def _delta_key(op: str) -> float:
        entry_a = ops_a.get(op) or {}
        entry_b = ops_b.get(op) or {}
        return -abs(
            entry_b.get("retained_bytes", 0) - entry_a.get("retained_bytes", 0)
        ) - abs(
            entry_b.get("peak_live_bytes", 0) - entry_a.get("peak_live_bytes", 0)
        )

    rows = []
    for op in sorted(set(ops_a) | set(ops_b), key=_delta_key)[:top]:
        entry_a = ops_a.get(op) or {}
        entry_b = ops_b.get(op) or {}
        retained_a = entry_a.get("retained_bytes", 0)
        retained_b = entry_b.get("retained_bytes", 0)
        peak_op_a = entry_a.get("peak_live_bytes", 0)
        peak_op_b = entry_b.get("peak_live_bytes", 0)
        rows.append(
            [
                op,
                _bytes_human(retained_a),
                _bytes_human(retained_b),
                f"{'+' if retained_b >= retained_a else '-'}"
                f"{_bytes_human(abs(retained_b - retained_a))}",
                _bytes_human(peak_op_a),
                _bytes_human(peak_op_b),
                f"{'+' if peak_op_b >= peak_op_a else '-'}"
                f"{_bytes_human(abs(peak_op_b - peak_op_a))}",
            ]
        )
    if rows:
        lines.extend(
            format_table(
                ["op", f"retained {label_a}", f"retained {label_b}", "Δret",
                 f"peak {label_a}", f"peak {label_b}", "Δpeak"],
                rows,
            )
        )
    return lines
