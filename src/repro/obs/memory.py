"""Tape memory accounting: live-set tracking and the hotspot table.

Answers "what does the search cost in memory": every tape entry retains
its output array (and whatever arrays its backward closure captured)
until the backward pass releases the tape, so peak tape memory — not
the model's parameter count — is what bounds the supernet size.

:class:`MemoryTracker` observes ``Tensor._from_op`` through the
:mod:`repro.obs.tape` chain and accounts, per tape entry,

* **output bytes** — the op's result array;
* **input bytes** — the parents' arrays (attributed, not owned: parents
  are counted as their own entries' outputs);
* **retained bytes** — ndarrays captured by the backward closure beyond
  the output and parent arrays (masks, softmax denominators, gathered
  copies). These are the buffers a fused VJP either keeps or recomputes.

An entry is *live* while its backward closure is referenced — i.e.
while the tape can still reach it. A ``weakref.finalize`` on the
closure releases the entry's bytes: ops under ``no_grad`` (and ops
whose inputs need no gradient) are released immediately, which is
exactly the "transient vs retained" distinction DESIGN section 7
documents. The tracker keeps the running live total, the overall and
per-search-epoch peaks, and per-(span path, op) *site* peaks — the
"top retained-buffer sites" of ``repro report memory``.

Zero-overhead-when-off: nothing here runs until a tracker is installed.
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.obs import tape
from repro.obs.report import format_table
from repro.obs.sinks import read_trace
from repro.obs.spans import get_tracer

__all__ = [
    "MemoryTracker",
    "track_memory",
    "render_memory_report",
    "render_memory_report_file",
]


def _op_name(backward_fn) -> str:
    qualname = getattr(backward_fn, "__qualname__", "") or ""
    name = qualname.split(".", 1)[0]
    return name or "<anonymous>"


def _retained_bytes(backward_fn, data, parents) -> int:
    """Bytes of closure-captured ndarrays beyond the output and inputs."""
    cells = getattr(backward_fn, "__closure__", None)
    if not cells:
        return 0
    known = {id(data)}
    for parent in parents:
        known.add(id(parent.data))
    total = 0
    seen: set[int] = set()
    for cell in cells:
        try:
            value = cell.cell_contents
        except ValueError:  # empty cell
            continue
        if isinstance(value, np.ndarray):
            key = id(value)
            if key not in known and key not in seen:
                seen.add(key)
                total += int(value.nbytes)
    return total


class _SiteStats:
    __slots__ = ("entries", "output_bytes", "input_bytes", "retained_bytes",
                 "live", "peak_live")

    def __init__(self):
        self.entries = 0
        self.output_bytes = 0
        self.input_bytes = 0
        self.retained_bytes = 0
        self.live = 0
        self.peak_live = 0

    def to_dict(self) -> dict:
        return {
            "entries": self.entries,
            "output_bytes": self.output_bytes,
            "input_bytes": self.input_bytes,
            "retained_bytes": self.retained_bytes,
            "peak_live_bytes": self.peak_live,
        }


class MemoryTracker:
    """Accounts tape-node bytes per op, per span path, and per epoch.

    Install/uninstall pairs with the :mod:`repro.obs.tape` chain, so the
    tracker composes with the op profiler and the health monitor.
    Cumulative stats survive ``uninstall`` for post-run reporting.
    """

    def __init__(self):
        self.current_live = 0
        self.peak_live = 0
        self.per_op: dict[str, _SiteStats] = {}
        self.per_path: dict[str, _SiteStats] = {}
        self.per_site: dict[tuple[str, str], _SiteStats] = {}
        self.epoch_peaks: dict[int, int] = {}
        self.installed = False

    # ------------------------------------------------------------------
    def install(self) -> "MemoryTracker":
        if not self.installed:
            tape.add_tape_hook(self._tape_hook)
            self.installed = True
        return self

    def uninstall(self) -> None:
        if self.installed:
            tape.remove_tape_hook(self._tape_hook)
            self.installed = False

    def __enter__(self) -> "MemoryTracker":
        return self.install()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.uninstall()
        return False

    # ------------------------------------------------------------------
    def _site(self, table: dict, key) -> _SiteStats:
        stats = table.get(key)
        if stats is None:
            stats = table[key] = _SiteStats()
        return stats

    def _span_context(self) -> tuple[str, int | None]:
        stack = get_tracer()._stack
        epoch = None
        for span in reversed(stack):
            if span.name == "epoch":
                index = span.attrs.get("index")
                epoch = int(index) if index is not None else None
                break
        return "/".join(span.name for span in stack) or "<no-span>", epoch

    def _tape_hook(self, data, parents, backward_fn):
        array = np.asarray(data)
        out_bytes = int(array.nbytes)
        in_bytes = sum(int(p.data.nbytes) for p in parents)
        retained = _retained_bytes(backward_fn, data, parents)
        path, epoch = self._span_context()
        op = _op_name(backward_fn)

        entry_bytes = out_bytes + retained
        self.current_live += entry_bytes
        if self.current_live > self.peak_live:
            self.peak_live = self.current_live
        if epoch is not None:
            previous = self.epoch_peaks.get(epoch, 0)
            if self.current_live > previous:
                self.epoch_peaks[epoch] = self.current_live

        sites = (
            self._site(self.per_op, op),
            self._site(self.per_path, path),
            self._site(self.per_site, (path, op)),
        )
        for stats in sites:
            stats.entries += 1
            stats.output_bytes += out_bytes
            stats.input_bytes += in_bytes
            stats.retained_bytes += retained
            stats.live += entry_bytes
            if stats.live > stats.peak_live:
                stats.peak_live = stats.live
        # The backward closure is created fresh per op call and lives
        # exactly as long as the tape entry does; finalizing it is how
        # the live set learns about releases. no_grad ops (closure
        # dropped before the Tensor is even built) release immediately —
        # those are the *transient* entries.
        weakref.finalize(backward_fn, self._release, entry_bytes, sites)
        return backward_fn

    def _release(self, entry_bytes: int, sites: tuple) -> None:
        self.current_live -= entry_bytes
        for stats in sites:
            stats.live -= entry_bytes

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """JSON-ready snapshot (the ``memory_stats`` trace record body)."""
        return {
            "peak_live_bytes": self.peak_live,
            "current_live_bytes": self.current_live,
            "epoch_peaks": {
                str(epoch): peak
                for epoch, peak in sorted(self.epoch_peaks.items())
            },
            "per_op": {
                op: stats.to_dict() for op, stats in self.per_op.items()
            },
            "per_path": {
                path: stats.to_dict() for path, stats in self.per_path.items()
            },
            "sites": [
                {"path": path, "op": op, **stats.to_dict()}
                for (path, op), stats in self.per_site.items()
            ],
        }


def track_memory() -> MemoryTracker:
    """Fresh tracker as a context manager: ``with track_memory() as mem:``."""
    return MemoryTracker()


# ---------------------------------------------------------------------
# report rendering (`repro report memory`)
# ---------------------------------------------------------------------
def _bytes_human(num: float) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if abs(num) < 1024.0 or unit == "GB":
            return f"{num:.1f}{unit}" if unit != "B" else f"{int(num)}B"
        num /= 1024.0
    return f"{num:.1f}GB"


def render_memory_report(stats: dict, top: int = 10) -> str:
    """Render the per-span peak-memory hotspot table from a stats dict."""
    sections: list[str] = []
    peak = stats.get("peak_live_bytes", 0)
    sections.append(f"== Tape memory: peak live {_bytes_human(peak)} ==")

    paths = sorted(
        (stats.get("per_path") or {}).items(),
        key=lambda item: -item[1].get("peak_live_bytes", 0),
    )[: max(top, 1)]
    if paths:
        rows = [
            [
                path,
                str(entry.get("entries", 0)),
                _bytes_human(entry.get("peak_live_bytes", 0)),
                _bytes_human(entry.get("output_bytes", 0)),
                _bytes_human(entry.get("retained_bytes", 0)),
            ]
            for path, entry in paths
        ]
        lines = [f"-- Top {len(rows)} span paths by peak live bytes --"]
        lines.extend(
            format_table(
                ["span path", "entries", "peak live", "out bytes", "retained"],
                rows,
            )
        )
        sections.append("\n".join(lines))

    sites = sorted(
        stats.get("sites") or [],
        key=lambda site: -site.get("retained_bytes", 0),
    )
    sites = [s for s in sites if s.get("retained_bytes", 0) > 0][: max(top, 1)]
    if sites:
        rows = [
            [
                f"{site.get('path', '?')}:{site.get('op', '?')}",
                str(site.get("entries", 0)),
                _bytes_human(site.get("retained_bytes", 0)),
                _bytes_human(site.get("peak_live_bytes", 0)),
            ]
            for site in sites
        ]
        lines = [f"-- Top {len(rows)} retained-buffer sites --"]
        lines.extend(
            format_table(["site (path:op)", "entries", "retained", "peak live"], rows)
        )
        sections.append("\n".join(lines))

    epochs = stats.get("epoch_peaks") or {}
    if epochs:
        ordered = sorted(epochs.items(), key=lambda item: int(item[0]))
        title = "-- Peak tape memory per epoch --"
        if len(ordered) > max(top, 1):
            # Long runs: keep the heaviest epochs, in epoch order.
            heaviest = sorted(ordered, key=lambda item: -item[1])[: max(top, 1)]
            ordered = sorted(heaviest, key=lambda item: int(item[0]))
            title = (
                f"-- Peak tape memory per epoch (top {len(ordered)} "
                f"of {len(epochs)}) --"
            )
        lines = [title]
        lines.extend(
            format_table(
                ["epoch", "peak live"],
                [[str(e), _bytes_human(peak)] for e, peak in ordered],
            )
        )
        sections.append("\n".join(lines))

    return "\n\n".join(sections)


def render_memory_report_file(path, top: int = 10) -> str:
    """Render ``repro report memory`` from a recorded trace file."""
    records = read_trace(path)
    stats = None
    for record in records:
        if record.get("type") == "memory_stats":
            stats = record.get("data")
    if stats is None:
        raise ValueError(
            f"{path}: no memory_stats record — record the run with "
            "`repro profile --memory`"
        )
    return render_memory_report(stats, top=top)
