"""Algorithm 1 of the paper: differentiable architecture search.

Bi-level optimisation (Eqs. 6–7) with the first-order approximation
(Eq. 8, ``xi = 0``) the paper uses in its experiments: each epoch
updates the architecture parameters ``alpha`` on the *validation*
loss, then the operation weights ``w`` on the *training* loss. After
``T`` epochs the discrete architecture is derived by argmax (top-1).

Works for both task families:

* transductive — a single :class:`~repro.graph.data.Graph` whose
  train/val masks provide the two losses;
* inductive — a :class:`~repro.graph.data.MultiGraphDataset` whose
  train/val graph lists provide them.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import obs
from repro.autograd import functional as F
from repro.autograd import no_grad
from repro.obs import events, health
from repro.obs.search_telemetry import SearchTelemetry, grad_l2_norm
from repro.core.search_space import Architecture, SearchSpace
from repro.core.supernet import SaneSupernet
from repro.graph.data import Graph, MultiGraphDataset
from repro.gnn.common import GraphCache
from repro.nn.optim import Adam, clip_grad_norm
from repro.nn.schedulers import create_scheduler
from repro.train.metrics import accuracy, micro_f1

__all__ = ["SearchConfig", "SearchResult", "SaneSearcher", "derive_from_alphas"]


def derive_from_alphas(
    space: SearchSpace,
    alphas: dict[str, np.ndarray],
    rng: np.random.Generator | None = None,
) -> Architecture:
    """Argmax derivation from raw alpha matrices (ties broken randomly)."""
    rng = rng or np.random.default_rng(0)

    def pick(row: np.ndarray, names: tuple[str, ...]) -> str:
        winners = np.flatnonzero(row >= row.max() - 1e-12)
        return names[int(rng.choice(winners))]

    return Architecture(
        node_aggregators=tuple(
            pick(alphas["node"][i], space.node_ops) for i in range(space.num_layers)
        ),
        skip_connections=tuple(
            pick(alphas["skip"][i], space.skip_ops) for i in range(space.num_layers)
        ),
        layer_aggregator=pick(alphas["layer"][0], space.layer_ops),
    )


@dataclasses.dataclass
class SearchConfig:
    """Hyper-parameters of the search phase (paper Appendix C).

    The paper uses hidden size 32 during search "for sake of
    computational resource", lr 5e-3, dropout 0.6, L2 2e-4 for ``w``;
    ``alpha`` follows the DARTS defaults (Adam, lr 3e-4, L2 1e-3).
    """

    epochs: int = 50
    hidden_dim: int = 32
    dropout: float = 0.6
    activation: str = "relu"
    w_lr: float = 5e-3
    w_weight_decay: float = 2e-4
    alpha_lr: float = 3e-4
    alpha_weight_decay: float = 1e-3
    grad_clip: float = 5.0
    epsilon: float = 0.0
    use_layer_aggregator: bool = True
    # Per-op output normalisation inside the mixture. Helps when op
    # output magnitudes differ wildly (the entity-alignment search uses
    # its own normalised supernet); on the node-classification tasks the
    # raw mixture searches slightly better, so it defaults off. The
    # design-choice ablation bench compares both.
    normalize_ops: bool = False
    # DARTS anneals the weight learning rate with a cosine schedule;
    # options: None/'constant', 'cosine', 'step'.
    w_lr_schedule: str | None = None
    # Eq. 8's xi. The paper sets xi = 0 (first-order approximation,
    # "more efficient and the performance is good enough"); xi > 0
    # enables the full second-order DARTS update via the
    # finite-difference Hessian-vector product of Liu et al. (2019).
    xi: float = 0.0

    def replace(self, **updates) -> "SearchConfig":
        return dataclasses.replace(self, **updates)


@dataclasses.dataclass
class SearchResult:
    """Outcome of one search run."""

    architecture: Architecture
    search_time: float
    # (elapsed seconds, supernet validation score) per epoch — the raw
    # series behind the paper's Figure 3 trajectories.
    history: list[tuple[float, float]]
    supernet: SaneSupernet
    # Per-epoch copies of the alpha matrices, so architectures can be
    # derived retroactively at any checkpoint (Figure 3 needs the
    # anytime behaviour of the search).
    alpha_snapshots: list[dict[str, np.ndarray]] = dataclasses.field(
        default_factory=list
    )

    def derive_at(self, epoch: int, rng: np.random.Generator | None = None) -> Architecture:
        """Architecture the search would have produced after ``epoch``."""
        snapshot = self.alpha_snapshots[epoch]
        return derive_from_alphas(self.supernet.space, snapshot, rng)


class SaneSearcher:
    """Runs Algorithm 1 over a dataset and derives the top architecture."""

    def __init__(
        self,
        space: SearchSpace,
        data: Graph | MultiGraphDataset,
        config: SearchConfig | None = None,
        seed: int = 0,
    ):
        self.space = space
        self.data = data
        self.config = config or SearchConfig()
        self.seed = seed
        self._rng = np.random.default_rng(seed)

        if isinstance(data, Graph):
            self._mode = "transductive"
            in_dim = data.num_features
            num_classes = data.num_classes
        elif isinstance(data, MultiGraphDataset):
            self._mode = "inductive"
            in_dim = data.num_features
            num_classes = data.num_classes
        else:
            raise TypeError(f"cannot search over {type(data).__name__}")

        self.supernet = SaneSupernet(
            space=space,
            in_dim=in_dim,
            hidden_dim=self.config.hidden_dim,
            num_classes=num_classes,
            rng=self._rng,
            dropout=self.config.dropout,
            activation=self.config.activation,
            epsilon=self.config.epsilon,
            use_layer_aggregator=self.config.use_layer_aggregator,
            normalize_ops=self.config.normalize_ops,
        )
        self._w_optimizer = Adam(
            self.supernet.weight_parameters(),
            lr=self.config.w_lr,
            weight_decay=self.config.w_weight_decay,
        )
        self._alpha_optimizer = Adam(
            self.supernet.arch_parameters(),
            lr=self.config.alpha_lr,
            weight_decay=self.config.alpha_weight_decay,
        )
        self._w_scheduler = create_scheduler(
            self.config.w_lr_schedule, self._w_optimizer, self.config.epochs
        )
        if self._mode == "transductive":
            self._caches = {id(data): GraphCache(data)}
        else:
            self._caches = {id(g): GraphCache(g) for g in data.all_graphs}

    # ------------------------------------------------------------------
    def search(self) -> SearchResult:
        """Run the search loop and return the derived architecture."""
        history: list[tuple[float, float]] = []
        snapshots: list[dict[str, np.ndarray]] = []
        telemetry = SearchTelemetry(self.space)
        telemetry.search_start(
            mode=self._mode,
            seed=self.seed,
            epochs=self.config.epochs,
            hidden_dim=self.config.hidden_dim,
            w_lr=self.config.w_lr,
            alpha_lr=self.config.alpha_lr,
            epsilon=self.config.epsilon,
            xi=self.config.xi,
        )
        search_span = obs.span(
            "search", kind="search", algo="sane", mode=self._mode
        ).start()
        monitor = health.get_monitor()
        for epoch in range(self.config.epochs):
            with obs.span("epoch", index=epoch):
                # Health-only pre-step copies for the update/param scale
                # gauges; pure reads, never taken while no monitor is on.
                arch_before = (
                    [p.data.copy() for p in self.supernet.arch_parameters()]
                    if monitor is not None
                    else None
                )
                with obs.span("alpha_step"):
                    val_loss = self._alpha_step()
                # Telemetry-only reads of the post-clip gradients: pure
                # numpy reductions, skipped entirely unless recording,
                # so the seeded search stream is untouched either way.
                arch_grad_norm = (
                    grad_l2_norm(self.supernet.arch_parameters())
                    if events.enabled() or monitor is not None
                    else None
                )
                weight_before = (
                    [p.data.copy() for p in self.supernet.weight_parameters()]
                    if monitor is not None
                    else None
                )
                with obs.span("weight_step"):
                    train_loss = self._weight_step()
                weight_grad_norm = (
                    grad_l2_norm(self.supernet.weight_parameters())
                    if events.enabled() or monitor is not None
                    else None
                )
                if self._w_scheduler is not None:
                    self._w_scheduler.step()
                elapsed = search_span.elapsed()
                with obs.span("validation"):
                    score = self.validation_score()
                history.append((elapsed, score))
                snapshot = {
                    "node": self.supernet.alpha_node.data.copy(),
                    "skip": self.supernet.alpha_skip.data.copy(),
                    "layer": self.supernet.alpha_layer.data.copy(),
                }
                snapshots.append(snapshot)
                if monitor is not None:
                    monitor.observe_epoch(
                        epoch,
                        arch_params=self.supernet.arch_parameters(),
                        weight_params=self.supernet.weight_parameters(),
                        arch_before=arch_before,
                        weight_before=weight_before,
                        arch_grad_norm=arch_grad_norm,
                        weight_grad_norm=weight_grad_norm,
                        mixtures=snapshot,
                        op_names={
                            "node": self.space.node_ops,
                            "skip": self.space.skip_ops,
                            "layer": self.space.layer_ops,
                        },
                    )
                telemetry.epoch(
                    epoch,
                    snapshot,
                    val_score=score,
                    train_loss=train_loss,
                    val_loss=val_loss,
                    arch_grad_norm=arch_grad_norm,
                    weight_grad_norm=weight_grad_norm,
                )
        search_span.finish()
        architecture = self.supernet.derive(self._rng)
        telemetry.search_end(epochs=self.config.epochs, architecture=architecture)
        return SearchResult(
            architecture=architecture,
            search_time=search_span.duration,
            history=history,
            supernet=self.supernet,
            alpha_snapshots=snapshots,
        )

    # ------------------------------------------------------------------
    # the two halves of one Algorithm-1 iteration
    # ------------------------------------------------------------------
    def _alpha_step(self) -> float | None:
        """Update alpha by descending the validation loss (line 3).

        With ``xi = 0`` this is the first-order approximation the paper
        uses; with ``xi > 0`` the validation gradient is taken at the
        virtually-updated weights ``w' = w - xi * grad_w L_tra`` and the
        implicit term is estimated with the standard finite-difference
        Hessian-vector product. Returns the validation loss (first-order
        mode only) for the epoch-metrics telemetry.
        """
        self.supernet.train()
        val_loss = None
        if self.config.xi <= 0.0:
            self.supernet.zero_grad()
            loss = self._loss("val")
            loss.backward()
            val_loss = loss.item()
        else:
            self._second_order_alpha_grads()
        clip_grad_norm(self.supernet.arch_parameters(), self.config.grad_clip)
        self._alpha_optimizer.step()
        return val_loss

    def _second_order_alpha_grads(self) -> None:
        """Populate alpha grads with the xi > 0 update of Eq. 8."""
        xi = self.config.xi
        weights = self.supernet.weight_parameters()
        alphas = self.supernet.arch_parameters()
        saved = [w.data.copy() for w in weights]

        # Virtual step: w' = w - xi * grad_w L_tra(w, alpha).
        self.supernet.zero_grad()
        self._loss("train").backward()
        train_grads = [
            w.grad.copy() if w.grad is not None else np.zeros_like(w.data)
            for w in weights
        ]
        for w, g in zip(weights, train_grads):
            w.data = w.data - xi * g  # lint: disable=tape-mutation -- Eq. 8 virtual step; the next loss rebuilds the tape

        # Validation gradients at w': both d_alpha and d_w'.
        self.supernet.zero_grad()
        self._loss("val").backward()
        dalpha = [
            a.grad.copy() if a.grad is not None else np.zeros_like(a.data)
            for a in alphas
        ]
        dw = [
            w.grad.copy() if w.grad is not None else np.zeros_like(w.data)
            for w in weights
        ]

        # Finite-difference Hessian-vector product:
        # (grad_alpha L_tra(w + eps*dw) - grad_alpha L_tra(w - eps*dw)) / 2eps.
        norm = float(np.sqrt(sum(float(np.sum(g * g)) for g in dw)))
        eps = 0.01 / max(norm, 1e-8)

        for w, original, g in zip(weights, saved, dw):
            w.data = original + eps * g  # lint: disable=tape-mutation -- finite-difference probe; tape rebuilt next loss
        self.supernet.zero_grad()
        self._loss("train").backward()
        alpha_plus = [
            a.grad.copy() if a.grad is not None else np.zeros_like(a.data)
            for a in alphas
        ]

        for w, original, g in zip(weights, saved, dw):
            w.data = original - eps * g  # lint: disable=tape-mutation -- finite-difference probe; tape rebuilt next loss
        self.supernet.zero_grad()
        self._loss("train").backward()
        alpha_minus = [
            a.grad.copy() if a.grad is not None else np.zeros_like(a.data)
            for a in alphas
        ]

        # Restore w and install the combined gradient on alpha.
        for w, original in zip(weights, saved):
            w.data = original  # lint: disable=tape-mutation -- restores the saved weights after the probes
        self.supernet.zero_grad()
        for alpha, first, plus, minus in zip(alphas, dalpha, alpha_plus, alpha_minus):
            hessian_term = (plus - minus) / (2.0 * eps)
            alpha.grad = first - xi * hessian_term

    def _weight_step(self) -> float:
        """Update w by descending the training loss (line 5)."""
        self.supernet.train()
        self.supernet.zero_grad()
        loss = self._loss("train")
        loss.backward()
        clip_grad_norm(self.supernet.weight_parameters(), self.config.grad_clip)
        self._w_optimizer.step()
        return loss.item()

    def _loss(self, split: str):
        if self._mode == "transductive":
            graph = self.data
            mask = graph.mask(split)
            logits = self.supernet(graph.features, self._caches[id(graph)])
            return F.cross_entropy(logits[mask], graph.labels[mask])
        graphs = (
            self.data.train_graphs if split == "train" else self.data.val_graphs
        )
        total = None
        for graph in graphs:
            logits = self.supernet(graph.features, self._caches[id(graph)])
            loss = F.binary_cross_entropy_with_logits(
                logits, graph.labels.astype(np.float64)
            )
            total = loss if total is None else total + loss
        return total / len(graphs)

    # ------------------------------------------------------------------
    def validation_score(self) -> float:
        """Supernet validation accuracy / micro-F1 (progress signal)."""
        self.supernet.eval()
        with no_grad():
            if self._mode == "transductive":
                graph = self.data
                logits = self.supernet(graph.features, self._caches[id(graph)])
                return accuracy(logits.numpy(), graph.labels, graph.mask("val"))
            all_logits = []
            all_labels = []
            for graph in self.data.val_graphs:
                logits = self.supernet(graph.features, self._caches[id(graph)])
                all_logits.append(logits.numpy())
                all_labels.append(graph.labels)
        return micro_f1(np.concatenate(all_logits), np.concatenate(all_labels))
