"""SANE: the paper's primary contribution.

Public API:

>>> from repro.core import SearchSpace, SaneSearcher, SearchConfig
>>> from repro.graph import load_dataset
>>> graph = load_dataset("cora")
>>> searcher = SaneSearcher(SearchSpace(num_layers=3), graph,
...                         SearchConfig(epochs=30), seed=0)
>>> result = searcher.search()
>>> print(result.architecture)
"""

from repro.core.search_space import (
    LAYER_OPS,
    NODE_OPS,
    SKIP_OPS,
    Architecture,
    SearchSpace,
)
from repro.core.supernet import SaneSupernet
from repro.core.search import SaneSearcher, SearchConfig, SearchResult
from repro.core.derive import (
    architecture_to_model,
    evaluate_architecture,
    retrain,
)

__all__ = [
    "NODE_OPS",
    "LAYER_OPS",
    "SKIP_OPS",
    "Architecture",
    "SearchSpace",
    "SaneSupernet",
    "SaneSearcher",
    "SearchConfig",
    "SearchResult",
    "architecture_to_model",
    "evaluate_architecture",
    "retrain",
]
