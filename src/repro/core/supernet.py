"""The SANE supernet: continuous relaxation of the search space.

Implements Eqs. 2–5 of the paper. Every edge of the supernet DAG
(Fig. 1c) holds *all* candidate operations; the forward pass computes
the softmax-weighted mixture

``o_bar(x) = sum_o softmax(alpha)_o * o(x)``            (Eq. 2)

for the node-aggregator edges (Eq. 3), the skip edges (Eq. 4) and the
layer-aggregator edge (Eq. 5). Architecture parameters ``alpha`` and
operation weights ``w`` are disjoint parameter groups so the bi-level
optimiser of :mod:`repro.core.search` can update them on validation
and training loss respectively.

Following the official implementation, node features are first
projected to the hidden size so every candidate op is hidden→hidden,
and each candidate layer aggregator is followed by its own projection
back to the hidden size so the three mixture branches agree in shape.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.autograd import functional as F
from repro.autograd import ops
from repro.autograd.tensor import Tensor, as_tensor
from repro.core.search_space import Architecture, SearchSpace
from repro.gnn.aggregators import create_node_aggregator
from repro.gnn.common import GraphCache, LayerContext
from repro.gnn.layer_aggregators import create_layer_aggregator
from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module, Parameter
from repro.obs import health

__all__ = ["SaneSupernet"]


def _row_normalize(x: Tensor) -> Tensor:
    """Scale rows to unit L2 norm (zero rows stay zero-safe)."""
    squared = ops.clip(ops.sum(x * x, axis=-1, keepdims=True), low=1e-12)
    return x / squared**0.5


class SaneSupernet(Module):
    """Weight-sharing one-shot model over a :class:`SearchSpace`.

    Parameters
    ----------
    epsilon:
        Random-exploration probability of the Section IV-E1 ablation:
        with probability ``epsilon`` an edge uses a uniformly sampled
        single op (one-hot mixture, which passes no gradient to its
        ``alpha``) instead of the softmax mixture. ``epsilon = 0`` is
        Algorithm 1; ``epsilon = 1`` degenerates to random search with
        weight sharing.
    normalize_ops:
        L2-normalise each candidate node-aggregator output (rows) before
        mixing. Without this, unbounded-magnitude ops (e.g. SAGE-SUM)
        dominate the mixture gradient and the alpha competition selects
        for output scale rather than usefulness — a known one-shot NAS
        pathology. Normalisation only affects the *search*; derived
        architectures are retrained from scratch unnormalised.
    """

    def __init__(
        self,
        space: SearchSpace,
        in_dim: int,
        hidden_dim: int,
        num_classes: int,
        rng: np.random.Generator,
        dropout: float = 0.6,
        activation: str = "relu",
        epsilon: float = 0.0,
        use_layer_aggregator: bool = True,
        normalize_ops: bool = False,
    ):
        super().__init__()
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError(f"epsilon must be in [0, 1], got {epsilon}")
        self.space = space
        self.hidden_dim = hidden_dim
        self.epsilon = epsilon
        self.use_layer_aggregator = use_layer_aggregator
        self.normalize_ops = normalize_ops
        self.activation = F.ACTIVATIONS[activation]
        self._rng = rng

        k = space.num_layers
        self.input_proj = Linear(in_dim, hidden_dim, rng)
        self.dropout = Dropout(dropout, rng)

        # Candidate node aggregators: K layers x |O_n| ops, hidden->hidden.
        self.node_candidates = [
            [
                create_node_aggregator(name, hidden_dim, hidden_dim, rng)
                for name in space.node_ops
            ]
            for __ in range(k)
        ]
        # Candidate layer aggregators, each with a projection to hidden_dim.
        if use_layer_aggregator:
            self.layer_candidates = []
            self.layer_projections = []
            for name in space.layer_ops:
                aggregator = create_layer_aggregator(name, k, hidden_dim, rng)
                self.layer_candidates.append(aggregator)
                self.layer_projections.append(
                    Linear(aggregator.output_dim, hidden_dim, rng)
                )
        else:
            self.layer_candidates = []
            self.layer_projections = []

        self.classifier = Linear(hidden_dim, num_classes, rng)

        # Architecture parameters (Eq. 2), initialised near-uniform with
        # slight noise so argmax derivation is never an arbitrary tie.
        def alpha(rows: int, cols: int) -> Parameter:
            return Parameter(1e-3 * rng.normal(size=(rows, cols)))

        self.alpha_node = alpha(k, len(space.node_ops))
        self.alpha_skip = alpha(k, len(space.skip_ops))
        self.alpha_layer = alpha(1, len(space.layer_ops))

    # ------------------------------------------------------------------
    # parameter groups for the bi-level optimiser
    # ------------------------------------------------------------------
    def arch_parameters(self) -> list[Parameter]:
        params = [self.alpha_node, self.alpha_skip]
        if self.use_layer_aggregator:
            params.append(self.alpha_layer)
        return params

    def weight_parameters(self) -> list[Parameter]:
        arch_ids = {id(p) for p in (self.alpha_node, self.alpha_skip, self.alpha_layer)}
        return [p for p in self.parameters() if id(p) not in arch_ids]

    # ------------------------------------------------------------------
    # mixture weights
    # ------------------------------------------------------------------
    def _mixture(self, alpha_row: Tensor, num_ops: int) -> Tensor:
        """Softmax mixture weights, or a sampled one-hot with prob. epsilon."""
        if (
            self.training
            and self.epsilon > 0.0
            and self._rng.random() < self.epsilon
        ):
            choice = int(self._rng.integers(num_ops))
            one_hot = np.zeros(num_ops)
            one_hot[choice] = 1.0
            return Tensor(one_hot)
        return F.softmax(alpha_row, axis=-1)

    # ------------------------------------------------------------------
    # forward (Eqs. 3-5)
    # ------------------------------------------------------------------
    def embed(self, features, cache: GraphCache) -> Tensor:
        h = self.activation(self.input_proj(self.dropout(as_tensor(features))))
        layer_outputs: list[Tensor] = []
        for layer_index, candidates in enumerate(self.node_candidates):
            weights = self._mixture(
                ops.getitem(self.alpha_node, layer_index), len(candidates)
            )
            # One shared context per layer: candidates that gather the
            # raw input features reuse a single tape node, so the
            # gather's adjoint scatter runs once per layer.
            ctx = LayerContext(h, cache)
            outputs = []
            for name, candidate in zip(self.space.node_ops, candidates):
                # Edge provenance for the health monitor; a shared no-op
                # context manager while no monitor is installed.
                with health.op_scope(
                    edge=f"node/{layer_index}", layer=layer_index, op=name
                ):
                    out = candidate(h, cache, ctx)
                    if self.normalize_ops:
                        out = _row_normalize(out)
                outputs.append(out)
            # The Eq. 3 mixture is a tape node too; scope it so an
            # alpha-minted NaN reports the edge instead of op=None.
            with health.op_scope(
                edge=f"node/{layer_index}", layer=layer_index, op="mixture"
            ):
                h = self.activation(ops.weighted_sum(outputs, weights))
            h = self.dropout(h)
            layer_outputs.append(h)

        if not self.use_layer_aggregator:
            return layer_outputs[-1]

        # Skip mixture (Eq. 4): identity keeps the layer, zero drops it,
        # so the mixture reduces to scaling by the identity weight.
        skipped: list[Tensor] = []
        for layer_index, output in enumerate(layer_outputs):
            weights = self._mixture(
                ops.getitem(self.alpha_skip, layer_index), len(self.space.skip_ops)
            )
            identity_index = self.space.skip_ops.index("identity")
            with health.op_scope(
                edge=f"skip/{layer_index}", layer=layer_index, op="identity"
            ):
                skipped.append(output * weights[identity_index])

        # Layer-aggregator mixture (Eq. 5).
        weights = self._mixture(
            ops.getitem(self.alpha_layer, 0), len(self.layer_candidates)
        )
        terms = []
        for name, aggregator, projection in zip(
            self.space.layer_ops, self.layer_candidates, self.layer_projections
        ):
            with health.op_scope(edge="layer/0", layer=None, op=name):
                terms.append(projection(aggregator(skipped)))
        with health.op_scope(edge="layer/0", layer=None, op="mixture"):
            return ops.weighted_sum(terms, weights)

    def forward(self, features, cache: GraphCache) -> Tensor:
        return self.classifier(self.embed(features, cache))

    # ------------------------------------------------------------------
    # discrete architecture derivation
    # ------------------------------------------------------------------
    def derive(self, rng: np.random.Generator | None = None) -> Architecture:
        """Argmax derivation (k = 1 of Algorithm 1, line 7).

        Ties within 1e-12 are broken uniformly at random (relevant for
        the ``epsilon = 1`` ablation, where alphas never move).
        """
        rng = rng or self._rng

        def pick(row: np.ndarray, names: tuple[str, ...]) -> str:
            best = row.max()
            winners = np.flatnonzero(row >= best - 1e-12)
            return names[int(rng.choice(winners))]

        node_choices = tuple(
            pick(self.alpha_node.data[i], self.space.node_ops)
            for i in range(self.space.num_layers)
        )
        skip_choices = tuple(
            pick(self.alpha_skip.data[i], self.space.skip_ops)
            for i in range(self.space.num_layers)
        )
        layer_choice = pick(self.alpha_layer.data[0], self.space.layer_ops)
        return Architecture(node_choices, skip_choices, layer_choice)

    def derive_topk(self, k: int) -> list[Architecture]:
        """Top-k architectures ranked by the product of mixture weights.

        Positions (per-layer node op, per-layer skip, layer aggregator)
        are independent, so the k best joint assignments are found with
        a lazy best-first expansion over per-position ranks — no
        enumeration of the (possibly astronomically large) space.
        """
        if k < 1:
            raise ValueError("k must be >= 1")

        def log_weights(alpha_row: np.ndarray) -> np.ndarray:
            shifted = alpha_row - alpha_row.max()
            return shifted - np.log(np.exp(shifted).sum())

        # One entry per decision position: (sorted log-probs desc, op
        # names in that order, position kind).
        positions: list[tuple[np.ndarray, list[str]]] = []
        kinds: list[tuple[str, int]] = []
        for layer in range(self.space.num_layers):
            row = log_weights(self.alpha_node.data[layer])
            order = np.argsort(-row)
            positions.append((row[order], [self.space.node_ops[i] for i in order]))
            kinds.append(("node", layer))
        for layer in range(self.space.num_layers):
            row = log_weights(self.alpha_skip.data[layer])
            order = np.argsort(-row)
            positions.append((row[order], [self.space.skip_ops[i] for i in order]))
            kinds.append(("skip", layer))
        row = log_weights(self.alpha_layer.data[0])
        order = np.argsort(-row)
        positions.append((row[order], [self.space.layer_ops[i] for i in order]))
        kinds.append(("layer", 0))

        def build(ranks: tuple[int, ...]) -> Architecture:
            nodes = [""] * self.space.num_layers
            skips = [""] * self.space.num_layers
            layer_agg = ""
            for (kind, index), (__, names), rank in zip(kinds, positions, ranks):
                if kind == "node":
                    nodes[index] = names[rank]
                elif kind == "skip":
                    skips[index] = names[rank]
                else:
                    layer_agg = names[rank]
            return Architecture(tuple(nodes), tuple(skips), layer_agg)

        start = tuple(0 for __ in positions)
        start_score = sum(scores[0] for scores, __ in positions)
        heap = [(-start_score, start)]
        seen = {start}
        results: list[Architecture] = []
        while heap and len(results) < k:
            negative_score, ranks = heapq.heappop(heap)
            results.append(build(ranks))
            for p, (scores, __) in enumerate(positions):
                if ranks[p] + 1 >= len(scores):
                    continue
                successor = ranks[:p] + (ranks[p] + 1,) + ranks[p + 1 :]
                if successor in seen:
                    continue
                seen.add(successor)
                score = -negative_score - scores[ranks[p]] + scores[ranks[p] + 1]
                heapq.heappush(heap, (-score, successor))
        return results
