"""Deriving, instantiating and retraining searched architectures.

After Algorithm 1 derives a discrete :class:`Architecture`, the paper
retrains it from scratch and fine-tunes hyper-parameters on the
validation set (Section III-C: SANE "decouples the architecture search
and hyper-parameters tuning"). These helpers implement that stage and
the multi-seed evaluation protocol of Section IV-A3.
"""

from __future__ import annotations

import numpy as np

from repro.core.search_space import Architecture
from repro.gnn.models import GNNModel
from repro.graph.data import Graph, MultiGraphDataset
from repro.train.trainer import TrainConfig, TrainResult, fit

__all__ = ["architecture_to_model", "retrain", "evaluate_architecture"]


def architecture_to_model(
    arch: Architecture,
    in_dim: int,
    num_classes: int,
    rng: np.random.Generator,
    hidden_dim: int = 64,
    dropout: float = 0.6,
    activation: str = "relu",
    heads: int = 1,
) -> GNNModel:
    """Instantiate the discrete GNN a searched architecture describes."""
    return GNNModel(
        in_dim=in_dim,
        hidden_dim=hidden_dim,
        num_classes=num_classes,
        node_aggregators=list(arch.node_aggregators),
        rng=rng,
        skip_connections=list(arch.skip_flags),
        layer_aggregator=arch.layer_aggregator,
        dropout=dropout,
        activation=activation,
        heads=heads,
    )


def retrain(
    arch: Architecture,
    data: Graph | MultiGraphDataset,
    seed: int = 0,
    hidden_dim: int = 64,
    dropout: float = 0.6,
    heads: int = 1,
    activation: str = "relu",
    train_config: TrainConfig | None = None,
) -> TrainResult:
    """Train the derived architecture from scratch once."""
    rng = np.random.default_rng(seed)
    model = architecture_to_model(
        arch,
        in_dim=data.num_features,
        num_classes=data.num_classes,
        rng=rng,
        hidden_dim=hidden_dim,
        dropout=dropout,
        activation=activation,
        heads=heads,
    )
    return fit(model, data, train_config)


def evaluate_architecture(
    arch: Architecture,
    data: Graph | MultiGraphDataset,
    seeds: list[int] | None = None,
    **retrain_kwargs,
) -> tuple[list[float], list[float]]:
    """Retrain over several seeds; returns (val scores, test scores).

    This is the paper's final protocol: "we repeat 5 times the process
    in re-training the best one … and report the test performance".
    """
    seeds = seeds if seeds is not None else [0, 1, 2, 3, 4]
    val_scores = []
    test_scores = []
    for seed in seeds:
        result = retrain(arch, data, seed=seed, **retrain_kwargs)
        val_scores.append(result.val_score)
        test_scores.append(result.test_score)
    return val_scores, test_scores
