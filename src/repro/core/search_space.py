"""The SANE search space (paper Section III-A, Table I).

Three operation sets parameterise a K-layer JK-backbone GNN:

* ``NODE_OPS`` — the 11 node aggregators ``O_n``;
* ``LAYER_OPS`` — the 3 layer aggregators ``O_l``;
* ``SKIP_OPS`` — IDENTITY / ZERO per intermediate layer ``O_s``.

For K = 3 the discrete space therefore holds
``11^3 * 2^3 * 3 = 31,944`` architectures (Section III-C), versus
~2.8e12 for Auto-GNN — the compactness argument of the paper.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Iterator

import numpy as np

from repro.gnn.aggregators import NODE_AGGREGATORS
from repro.gnn.layer_aggregators import LAYER_AGGREGATORS

__all__ = ["NODE_OPS", "LAYER_OPS", "SKIP_OPS", "Architecture", "SearchSpace"]

NODE_OPS: tuple[str, ...] = (
    "sage-sum",
    "sage-mean",
    "sage-max",
    "gcn",
    "gat",
    "gat-sym",
    "gat-cos",
    "gat-linear",
    "gat-gen-linear",
    "gin",
    "geniepath",
)
LAYER_OPS: tuple[str, ...] = ("concat", "max", "lstm")
SKIP_OPS: tuple[str, ...] = ("identity", "zero")

assert set(NODE_OPS) <= set(NODE_AGGREGATORS), "registry drift: node ops"
assert set(LAYER_OPS) <= set(LAYER_AGGREGATORS), "registry drift: layer ops"


@dataclasses.dataclass(frozen=True)
class Architecture:
    """One point of the search space.

    ``skip_connections`` uses the op names (``'identity'``/``'zero'``)
    rather than booleans so an architecture prints exactly like the
    paper's Figure 2 descriptions.
    """

    node_aggregators: tuple[str, ...]
    skip_connections: tuple[str, ...]
    layer_aggregator: str

    def __post_init__(self):
        if len(self.node_aggregators) != len(self.skip_connections):
            raise ValueError("one skip choice is needed per layer")
        unknown = set(self.node_aggregators) - set(NODE_AGGREGATORS)
        if unknown:
            raise ValueError(f"unknown node aggregators: {sorted(unknown)}")
        if self.layer_aggregator not in LAYER_AGGREGATORS:
            raise ValueError(f"unknown layer aggregator {self.layer_aggregator!r}")
        bad_skips = set(self.skip_connections) - set(SKIP_OPS)
        if bad_skips:
            raise ValueError(f"unknown skip ops: {sorted(bad_skips)}")

    @property
    def num_layers(self) -> int:
        return len(self.node_aggregators)

    @property
    def skip_flags(self) -> tuple[bool, ...]:
        return tuple(s == "identity" for s in self.skip_connections)

    def describe(self) -> str:
        aggs = " -> ".join(self.node_aggregators)
        skips = "".join("I" if flag else "Z" for flag in self.skip_flags)
        return f"{aggs} | skips={skips} | jk={self.layer_aggregator}"

    def __str__(self) -> str:
        return self.describe()


class SearchSpace:
    """Factory/enumerator for :class:`Architecture` at a fixed depth.

    ``node_ops``/``layer_ops``/``skip_ops`` default to the full Table I
    sets; experiments can restrict them (e.g. the DB task removes the
    layer aggregator, Table X swaps node ops for MLPs).
    """

    def __init__(
        self,
        num_layers: int = 3,
        node_ops: tuple[str, ...] = NODE_OPS,
        layer_ops: tuple[str, ...] = LAYER_OPS,
        skip_ops: tuple[str, ...] = SKIP_OPS,
    ):
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        if not node_ops or not layer_ops or not skip_ops:
            raise ValueError("operation sets must be non-empty")
        self.num_layers = num_layers
        self.node_ops = tuple(node_ops)
        self.layer_ops = tuple(layer_ops)
        self.skip_ops = tuple(skip_ops)

    def size(self) -> int:
        """Number of discrete architectures (the paper's 31,944 for K=3)."""
        return (
            len(self.node_ops) ** self.num_layers
            * len(self.skip_ops) ** self.num_layers
            * len(self.layer_ops)
        )

    def sample(self, rng: np.random.Generator) -> Architecture:
        """Uniform random architecture (the Random baseline's proposal)."""
        return Architecture(
            node_aggregators=tuple(
                rng.choice(self.node_ops) for __ in range(self.num_layers)
            ),
            skip_connections=tuple(
                rng.choice(self.skip_ops) for __ in range(self.num_layers)
            ),
            layer_aggregator=str(rng.choice(self.layer_ops)),
        )

    def enumerate(self) -> Iterator[Architecture]:
        """Yield every architecture (use only for small spaces/tests)."""
        for nodes in itertools.product(self.node_ops, repeat=self.num_layers):
            for skips in itertools.product(self.skip_ops, repeat=self.num_layers):
                for layer_op in self.layer_ops:
                    yield Architecture(nodes, skips, layer_op)

    def contains(self, arch: Architecture) -> bool:
        return (
            arch.num_layers == self.num_layers
            and set(arch.node_aggregators) <= set(self.node_ops)
            and set(arch.skip_connections) <= set(self.skip_ops)
            and arch.layer_aggregator in self.layer_ops
        )

    def __repr__(self) -> str:
        return (
            f"SearchSpace(K={self.num_layers}, |On|={len(self.node_ops)}, "
            f"|Ol|={len(self.layer_ops)}, |Os|={len(self.skip_ops)}, "
            f"size={self.size()})"
        )
