"""Ablation benchmark: supernet design choices (DESIGN.md §5).

Not a paper table — it audits the implementation decisions this
reproduction had to make where the paper is silent:

* per-op output normalisation in the mixture (on vs. off),
* cosine-annealed vs. constant weight learning rate during search,
* supernet hidden size (16 vs. 32).

Each variant searches once on the Cora analogue and retrains its
derived architecture twice; the printed table records the derived
architecture and its mean test accuracy. Assertions are structural
(valid architectures, sane scores) — the point is the comparison
record, not a winner.
"""

import numpy as np

from repro.core.derive import retrain
from repro.core.search import SaneSearcher, SearchConfig
from repro.core.search_space import SearchSpace
from repro.experiments.results import render_table
from repro.graph.datasets import load_dataset
from repro.train.trainer import TrainConfig

from common import bench_scale, show

VARIANTS = (
    ("baseline", {}),
    ("normalize-ops", {"normalize_ops": True}),
    ("cosine-lr", {"w_lr_schedule": "cosine"}),
    ("hidden-16", {"hidden_dim": 16}),
)


def run_ablation(scale):
    graph = load_dataset("cora", seed=0, scale=scale.dataset_scale)
    train_config = TrainConfig(epochs=scale.train_epochs, patience=scale.train_patience)
    space = SearchSpace(num_layers=3)
    epochs = max(20, scale.search_epochs // 2)

    rows = {}
    for name, overrides in VARIANTS:
        kwargs = {"epochs": epochs, "hidden_dim": scale.search_hidden_dim}
        kwargs.update(overrides)
        config = SearchConfig(**kwargs)
        result = SaneSearcher(space, graph, config, seed=0).search()
        scores = [
            retrain(
                result.architecture,
                graph,
                seed=seed,
                hidden_dim=scale.hidden_dim,
                dropout=0.5,
                train_config=train_config,
            ).test_score
            for seed in range(2)
        ]
        rows[name] = (result.architecture, float(np.mean(scores)), result.search_time)
    return rows


def test_ablation_design_choices(benchmark):
    scale = bench_scale()
    rows = benchmark.pedantic(lambda: run_ablation(scale), rounds=1, iterations=1)

    table = render_table(
        ["variant", "test acc", "search s", "architecture"],
        [
            [name, f"{score:.4f}", f"{seconds:.1f}", str(arch)]
            for name, (arch, score, seconds) in rows.items()
        ],
        title="Design-choice ablation (Cora analogue)",
    )
    show("Ablation — supernet design choices", table)

    space = SearchSpace(num_layers=3)
    chance = 1.0 / 7
    for name, (arch, score, __) in rows.items():
        assert space.contains(arch), name
        assert score > chance + 0.3, f"{name} failed to learn: {score:.3f}"
