"""Benchmark: regenerate Figure 4 (ε-explore and depth-K ablations).

These sweeps run the full SANE pipeline dozens of times, so they use a
reduced single-search-seed variant of the configured scale. Shape
assertions:

* Fig. 4a — pure gradient search (ε=0) beats pure random sampling with
  weight sharing (ε=1) on average across datasets;
* Fig. 4b — accuracy peaks at a small-to-moderate depth: some K in
  2..4 beats both the K=1 and the K=6 extremes on average
  (over-smoothing at depth, underreach at K=1).

Both claims need a real training budget, so they run from ``default``
scale upward; ``smoke`` asserts the structural shape only.
"""

import dataclasses

import numpy as np

from repro.experiments import run_figure4a, run_figure4b

from common import bench_scale, show

DATASETS = ("cora", "citeseer", "pubmed", "ppi")


def ablation_scale():
    scale = bench_scale()
    return dataclasses.replace(
        scale,
        search_seeds=1,
        repeats=min(2, scale.repeats),
        search_epochs=max(10, scale.search_epochs // 2),
        dataset_scale=min(scale.dataset_scale, 0.7),
    )


def test_figure4a_epsilon_ablation(benchmark):
    scale = ablation_scale()
    result = benchmark.pedantic(
        lambda: run_figure4a(scale, datasets=DATASETS, epsilons=(0.0, 0.5, 1.0)),
        rounds=1,
        iterations=1,
    )
    show("Figure 4a — test score vs epsilon", result.render())

    # Structural shape (every scale): a score in [0, 1] per epsilon.
    for dataset in DATASETS:
        means = result.means(dataset)
        assert all(0.0 <= means[e] <= 1.0 for e in (0.0, 0.5, 1.0))
    if scale.name == "smoke":
        return

    gaps = []
    for dataset in DATASETS:
        means = result.means(dataset)
        gaps.append(means[0.0] - means[1.0])
    assert np.mean(gaps) > -0.02, (
        f"epsilon=0 not better than epsilon=1 on average: gaps={gaps}"
    )


def test_figure4b_depth_ablation(benchmark):
    scale = ablation_scale()
    depths = (1, 3, 6)
    result = benchmark.pedantic(
        lambda: run_figure4b(scale, datasets=DATASETS, depths=depths),
        rounds=1,
        iterations=1,
    )
    show("Figure 4b — test score vs K", result.render())

    # Structural shape (every scale): a score in [0, 1] per depth.
    for dataset in DATASETS:
        means = result.means(dataset)
        assert all(0.0 <= means[k] <= 1.0 for k in depths)
    if scale.name == "smoke":
        return

    mid_scores, edge_scores = [], []
    for dataset in DATASETS:
        means = result.means(dataset)
        mid_scores.append(means[3])
        edge_scores.append(max(means[1], means[6]))
    assert np.mean(mid_scores) >= np.mean(edge_scores) - 0.02, (
        f"no interior peak at K=3: mid={mid_scores} edges={edge_scores}"
    )
