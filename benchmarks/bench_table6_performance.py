"""Benchmark: regenerate Table VI (the headline performance comparison).

Shape assertions mirror Section IV-B:
* SANE is at least competitive with the best baseline on every dataset
  (within a small tolerance — synthetic data + reduced budgets add
  noise the paper's 5-seed protocol averages away);
* adding JK-Network improves the base models on average;
* there is no absolute winner among human-designed baselines.

The quality claims need a real training budget, so they run from
``default`` scale upward; ``smoke`` (seconds-long searches, pure
constant overhead) asserts the structural shape of the table only.
"""

import numpy as np

from repro.experiments import HUMAN_BASELINES, run_table6

from common import bench_scale, show

DATASETS = ("cora", "citeseer", "pubmed", "ppi")


def test_table6_performance(benchmark):
    scale = bench_scale()
    result = benchmark.pedantic(
        lambda: run_table6(scale, datasets=DATASETS), rounds=1, iterations=1
    )
    show("Table VI — performance comparison", result.render())
    table = result.table

    # Structural shape (every scale): every method reported on every
    # dataset with a mean in [0, 1].
    for dataset in DATASETS:
        for method in (*HUMAN_BASELINES, "sane"):
            assert 0.0 <= table.mean(method, dataset) <= 1.0
    if scale.name == "smoke":
        return

    for dataset in DATASETS:
        best_human = max(table.mean(m, dataset) for m in HUMAN_BASELINES)
        sane = table.mean("sane", dataset)
        # SANE should match or beat the best human baseline (tolerance
        # for the reduced-budget noise floor).
        assert sane >= best_human - 0.05, (
            f"{dataset}: sane={sane:.3f} vs best human={best_human:.3f}"
        )

    # JK variants improve their bases on average (paper Section IV-B1).
    jk_gains = []
    for dataset in DATASETS:
        for base in ("gcn", "sage", "gat", "gin", "geniepath"):
            jk_gains.append(
                table.mean(f"{base}-jk", dataset) - table.mean(base, dataset)
            )
    assert np.mean(jk_gains) > 0, f"mean JK gain {np.mean(jk_gains):.4f}"

    # No absolute winner among human-designed baselines across datasets.
    winners = {table.best_row("cora"), table.best_row("ppi")}
    assert len(winners) >= 1  # recorded for the report; strict check below
    human_winners = {
        max(HUMAN_BASELINES, key=lambda m: table.mean(m, ds)) for ds in DATASETS
    }
    assert len(human_winners) >= 2, f"single human winner: {human_winners}"
