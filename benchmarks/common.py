"""Shared benchmark plumbing.

Each ``bench_*`` module regenerates one paper table/figure: the heavy
experiment runs exactly once inside ``benchmark.pedantic(rounds=1)``
(so pytest-benchmark reports its wall-clock) and the rendered table is
printed for EXPERIMENTS.md. Scale comes from ``REPRO_SCALE``
(``smoke`` / ``default`` / ``full``; default ``default``).

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import os

from repro.experiments.config import SCALES, Scale

__all__ = ["bench_scale", "show"]


def bench_scale() -> Scale:
    """Scale preset for benchmarks (env-controlled)."""
    name = os.environ.get("REPRO_SCALE", "default")
    return SCALES[name]


def show(title: str, text: str) -> None:
    """Print a regenerated table with a banner (visible with ``-s``)."""
    banner = "=" * 72
    print(f"\n{banner}\n{title}\n{banner}\n{text}\n")
