"""Shared benchmark plumbing.

Each ``bench_*`` module regenerates one paper table/figure: the heavy
experiment runs exactly once inside ``benchmark.pedantic(rounds=1)``
(so pytest-benchmark reports its wall-clock) and the rendered table is
printed for EXPERIMENTS.md. Scale comes from ``REPRO_SCALE``
(``smoke`` / ``default`` / ``full``; default ``default``).

Benchmarks that want machine-readable output wrap the run in
:func:`tracked_run`: the library's ``repro.obs`` spans (search/train/
epoch timings) are collected for the duration and a ``BENCH_<name>.json``
summary — aggregated spans, a metrics snapshot, free-form extras — is
written to ``REPRO_BENCH_DIR`` (default: current directory).

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import os
import time
from pathlib import Path
from typing import Iterator

from repro.autograd.kernels import KernelCounters, count_kernels
from repro.experiments.config import SCALES, Scale
from repro.obs import InMemorySink, MetricsRegistry, TRACE_VERSION, aggregate_spans, get_tracer
from repro.obs.runs import env_fingerprint, record_run

__all__ = [
    "bench_scale", "bench_workers", "show", "BenchRun", "tracked_run",
    "emit_metrics",
]


def bench_scale() -> Scale:
    """Scale preset for benchmarks (env-controlled)."""
    name = os.environ.get("REPRO_SCALE", "default")
    return SCALES[name]


def bench_workers() -> int:
    """Worker processes for benches that fan out (env-controlled).

    ``REPRO_BENCH_WORKERS`` (default 0 = in-process) routes a bench's
    experiment through the same :class:`repro.parallel.WorkerPool` the
    CLI uses. Scores are worker-count-invariant by the deterministic-
    merge contract; only the timings change, so a payload recorded at
    N workers gates cleanly against one recorded at M.
    """
    return int(os.environ.get("REPRO_BENCH_WORKERS", "0"))


def show(title: str, text: str) -> None:
    """Print a regenerated table with a banner (visible with ``-s``)."""
    banner = "=" * 72
    print(f"\n{banner}\n{title}\n{banner}\n{text}\n")


@dataclasses.dataclass
class BenchRun:
    """Handle yielded by :func:`tracked_run`.

    ``metrics`` is a fresh registry the benchmark fills with its
    headline numbers (speedups, scores); ``extra`` takes anything
    that does not fit the counter/gauge/histogram shapes.
    """

    name: str
    sink: InMemorySink
    metrics: MetricsRegistry
    extra: dict = dataclasses.field(default_factory=dict)


@contextlib.contextmanager
def tracked_run(name: str) -> Iterator[BenchRun]:
    """Collect obs spans for one benchmark and emit ``BENCH_<name>.json``.

    Attaches an in-memory sink to the process tracer for the duration
    of the block, so every span the library opens (search epochs,
    training loops, candidate evaluations) lands in the summary. Record
    headline numbers on ``run.metrics`` / ``run.extra`` inside the
    block; the JSON file is written on exit.

    Segment-kernel byte counters ride along: every ``scatter_sum`` /
    ``scatter_max`` / ``index_add`` call inside the block records bytes
    read/written and elements reduced, and the snapshot lands in the
    payload as ``kernel.<name>.bytes_moved`` / ``effective_gbps``
    gauges plus the raw ``extra["kernel_counters"]`` table, so the
    fused-vs-naive comparison is expressible as achieved bandwidth.
    """
    run = BenchRun(name=name, sink=InMemorySink(), metrics=MetricsRegistry())
    counters = KernelCounters(clock=time.perf_counter)
    with get_tracer().collect(run.sink), count_kernels(counters):
        yield run
    for kernel, stats in counters.snapshot().items():
        run.metrics.gauge(f"kernel.{kernel}.bytes_moved").set(stats["bytes_moved"])
        if stats["effective_gbps"] is not None:
            run.metrics.gauge(f"kernel.{kernel}.effective_gbps").set(
                stats["effective_gbps"]
            )
    run.extra.setdefault("kernel_counters", counters.snapshot())
    emit_metrics(name, spans=run.sink.spans, metrics=run.metrics, extra=run.extra)


def emit_metrics(name: str, spans=(), metrics: MetricsRegistry | None = None,
                 extra: dict | None = None) -> Path:
    """Write a ``BENCH_<name>.json`` machine-readable benchmark summary.

    The file carries the per-path span aggregates (count / cumulative /
    self time), a metrics-registry snapshot and free-form extras, under
    the same version number as the trace schema.
    """
    out_dir = Path(os.environ.get("REPRO_BENCH_DIR", "."))
    out_dir.mkdir(parents=True, exist_ok=True)
    payload = {
        "bench": name,
        "version": TRACE_VERSION,
        "scale": os.environ.get("REPRO_SCALE", "default"),
        "spans": [
            {
                "path": agg.path,
                "count": agg.count,
                "total_s": agg.total,
                "self_s": agg.self_time,
                "mean_s": agg.mean,
                "min_s": agg.minimum,
                "max_s": agg.maximum,
            }
            for agg in aggregate_spans(spans)
        ],
        "metrics": (metrics or MetricsRegistry()).snapshot(),
        "extra": extra or {},
    }
    path = out_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    # Benchmarks ride the run ledger alongside the BENCH_*.json they
    # overwrite: the snapshot goes to the gate, the history goes here.
    record_run(
        "bench",
        {"name": name, "scale": payload["scale"]},
        env=env_fingerprint(
            scale=payload["scale"], workers=bench_workers()
        ),
        registry=metrics,
        outputs={"bench": name},
        files=[str(path)],
    )
    return path
