"""Benchmark: serving throughput of an exported SANE genotype.

Trains a representative searched architecture once (no search — the
genotype is fixed so the bench measures serving, not NAS), bundles it
through the artifact round-trip, then drives the batching server with
the deterministic closed-loop load generator across the per-scale
concurrency sweep (1 → 10k simulated clients at ``full``).

Gated numbers: per-level ``serve.c<N>.rps`` (higher-better,
wall-clock tolerance) and ``serve.c<N>.p50/p99_latency_s``
(lower-better, wall-clock tolerance).

Shape assertions at every scale: ≥3 levels swept, every level
completes its request budget, latencies are positive and ordered
(p50 ≤ p99), and the server's batched predictions are bit-identical
to the engine's single-request path.
"""

import numpy as np

from repro.core.search_space import Architecture
from repro.serve import (
    InferenceEngine,
    ServeMetrics,
    ServeServer,
    bench_metrics,
    export_architecture,
    load_artifact,
    render_load_report,
    run_load,
    save_artifact,
    sweep_levels,
)

from common import bench_scale, show, tracked_run

# A fixed searched-like genotype (attention + convolution + sampling
# layers under a concat JK head) so every run serves the same model.
GENOTYPE = Architecture(
    node_aggregators=("gat", "gcn", "sage-mean"),
    skip_connections=("identity", "identity", "identity"),
    layer_aggregator="concat",
)
REQUESTS_PER_LEVEL = {"smoke": 64, "default": 256, "full": 2048}


def test_serve_throughput(benchmark, tmp_path):
    scale = bench_scale()
    levels = sweep_levels(scale.name)
    budget = REQUESTS_PER_LEVEL[scale.name]

    artifact = export_architecture(GENOTYPE, "cora", scale, seed=0)
    path = save_artifact(artifact, tmp_path / "artifact.json")

    with tracked_run("serve_throughput") as run:
        # The engine shares the bench registry so the serve counters and
        # per-stage p50/p99 gauges land in the gated payload.
        engine = InferenceEngine.from_artifact(
            load_artifact(path), metrics=ServeMetrics(registry=run.metrics)
        )
        with ServeServer(engine, max_batch=64) as server:
            results = benchmark.pedantic(
                lambda: run_load(
                    server, levels, requests_per_level=budget, seed=0
                ),
                rounds=1,
                iterations=1,
            )
        engine.metrics.finalize(wall_s=sum(r.wall_s for r in results))
        bench_metrics(results, run.metrics)
        run.extra["levels"] = [
            {
                "concurrency": r.concurrency,
                "requests": r.requests,
                "rps": r.rps,
                "p50_s": r.p50_s,
                "p99_s": r.p99_s,
                "p99_trace": r.p99_trace,
            }
            for r in results
        ]
        run.extra["plan_cache"] = engine.plan_cache.stats()
        run.extra["exemplars"] = dict(engine.metrics.exemplars)

    # Tracing is always on: every request must have produced a complete
    # stage set in the shared metrics (the span trees themselves are
    # asserted in tests/serve/test_tracing.py).
    for stage in ("enqueue", "queue_wait", "batch_assemble",
                  "forward", "slice", "resolve"):
        assert stage in engine.metrics.stages, f"missing stage {stage!r}"
    show("Serve throughput — concurrency sweep", render_load_report(results))

    # Structural shape (every scale).
    assert len(results) >= 3
    for result in results:
        assert result.requests == budget
        assert 0.0 < result.p50_s <= result.p99_s
        assert result.rps > 0.0

    # Batched serving must not change predictions: one request through
    # the server equals the engine's direct single-request answer.
    ids = np.arange(min(8, engine.num_targets))
    direct = engine.predict(node_ids=ids)
    with ServeServer(engine, max_batch=64) as server:
        served = server.submit(node_ids=ids)
    assert np.array_equal(direct, served)
