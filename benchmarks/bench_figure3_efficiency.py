"""Benchmark: regenerate Figure 3 (test score vs. search time).

Shape assertions, scaled to the candidate budget: the SANE anytime
curve finishes earlier on the time axis than every trial-and-error
trajectory while reaching a comparable final score — the "orders of
magnitude" efficiency picture of the paper. The full ordering only
holds near the paper's 200-candidate budget (the ``full`` preset): at
``default``'s 6-candidate budget the supernet's constant cost is not
amortised on the small graphs (a 6-draw random search legitimately
finishes first there — measured in ``benchmarks/baselines/default/``),
but on the largest dataset (ppi) each trial-and-error candidate pays
a full training run and SANE's curve already ends first, so
``default`` asserts that. ``smoke`` asserts the structural shape of
the trajectories only and records the end times for inspection.
``REPRO_BENCH_WORKERS=N`` fans the 16 cells over the parallel runner.
"""

from repro.experiments import run_figure3

from common import bench_scale, bench_workers, show, tracked_run

DATASETS = ("cora", "citeseer", "pubmed", "ppi")


def test_figure3_efficiency_trajectories(benchmark):
    scale = bench_scale()
    workers = bench_workers()
    with tracked_run("figure3_efficiency") as run:
        result = benchmark.pedantic(
            lambda: run_figure3(scale, datasets=DATASETS, workers=workers),
            rounds=1,
            iterations=1,
        )
        run.extra["workers"] = workers
        for dataset in DATASETS:
            for method, score in result.final_scores(dataset).items():
                run.metrics.gauge(f"final_score.{method}.{dataset}").set(score)
            run.extra.setdefault("end_time_s", {})[dataset] = {
                method: traj[-1][0]
                for method, traj in result.trajectories[dataset].items()
            }
    show("Figure 3 — score vs search time", result.render())

    # Structural shape (every scale): non-empty trajectories with
    # monotonically increasing time stamps and scores in [0, 1].
    for dataset in DATASETS:
        for method, trajectory in result.trajectories[dataset].items():
            assert trajectory, f"{dataset}/{method}: empty trajectory"
            times = [t for t, __ in trajectory]
            assert times == sorted(times), f"{dataset}/{method}: time not monotone"
            assert all(0.0 <= s <= 1.0 for __, s in trajectory)
    if scale.name == "smoke":
        return

    # Largest-dataset ordering (default and up): SANE's anytime curve
    # on ppi ends before every trial-and-error trajectory (measured
    # margin >= 1.5x at the 6-candidate budget).
    ppi = result.trajectories["ppi"]
    sane_end = ppi["sane"][-1][0]
    for method in ("random", "bayesian", "graphnas"):
        assert ppi[method][-1][0] > sane_end, (
            f"ppi: {method} finished at {ppi[method][-1][0]:.1f}s, "
            f"sane at {sane_end:.1f}s"
        )
    if scale.name != "full":
        return

    # Aggregate ordering (paper budget only): summed over datasets,
    # each trial-and-error trajectory ends later than SANE's.
    sane_total = sum(
        result.trajectories[ds]["sane"][-1][0] for ds in DATASETS
    )
    for method in ("random", "bayesian", "graphnas"):
        other_total = sum(
            result.trajectories[ds][method][-1][0] for ds in DATASETS
        )
        assert other_total > sane_total, (
            f"{method} trajectories end at {other_total:.1f}s total, "
            f"sane at {sane_total:.1f}s"
        )

    # Per-dataset ordering and a competitive final score.
    for dataset in DATASETS:
        methods = result.trajectories[dataset]
        sane_end = methods["sane"][-1][0]
        for method in ("random", "bayesian", "graphnas"):
            other_end = methods[method][-1][0]
            assert other_end > sane_end, (
                f"{dataset}: {method} finished at {other_end:.1f}s, "
                f"sane at {sane_end:.1f}s"
            )
        # SANE's final score is competitive with the best baseline.
        finals = result.final_scores(dataset)
        best_other = max(v for k, v in finals.items() if k != "sane")
        assert finals["sane"] >= best_other - 0.07, (
            f"{dataset}: sane={finals['sane']:.3f} vs {best_other:.3f}"
        )
