"""Benchmark: regenerate Table IX (search-space efficacy).

Shape assertion (Section IV-E3): at the same candidate budget,
GraphNAS over the compact SANE space achieves accuracy at least close
to GraphNAS over its own (hyper-parameter-mixed) space — averaging
over datasets and the WS/no-WS variants. The comparison needs a real
training budget, so it runs from ``default`` scale upward; ``smoke``
asserts the structural shape of the table only.
"""

import numpy as np

from repro.experiments import run_table9

from common import bench_scale, show

DATASETS = ("cora", "citeseer", "pubmed", "ppi")


def test_table9_search_space_efficacy(benchmark):
    scale = bench_scale()
    result = benchmark.pedantic(
        lambda: run_table9(scale, datasets=DATASETS), rounds=1, iterations=1
    )
    show("Table IX — GraphNAS over two search spaces", result.render())
    table = result.table

    own, sane_space = [], []
    for dataset in DATASETS:
        own.append(table.mean("graphnas", dataset))
        own.append(table.mean("graphnas-ws", dataset))
        sane_space.append(table.mean("graphnas (sane space)", dataset))
        sane_space.append(table.mean("graphnas-ws (sane space)", dataset))
    # Structural shape (every scale): every variant scored in [0, 1].
    assert all(0.0 <= v <= 1.0 for v in own + sane_space)
    if scale.name == "smoke":
        return

    # "better or at least close accuracy" (the paper's wording).
    assert np.mean(sane_space) >= np.mean(own) - 0.03, (
        f"sane-space mean {np.mean(sane_space):.3f} vs own {np.mean(own):.3f}"
    )
