"""Extension benchmark: pooling search for whole-graph classification.

Not a table in the paper — it implements the conclusion's future-work
proposal ("different graph pooling methods can be searched"). Shape
assertion: the searched (encoder, pooling) combination matches or
beats a fixed GCN encoder with every fixed pooling readout.
"""

import numpy as np

from repro.graphclf import (
    GraphClassifier,
    GraphClfConfig,
    GraphSearchConfig,
    generate_graph_dataset,
    search_graph_classifier,
    train_graph_classifier,
)

from common import bench_scale, show


def run_extension(scale):
    dataset = generate_graph_dataset(
        seed=0, graphs_per_class=max(6, int(14 * scale.dataset_scale))
    )
    config = GraphClfConfig(epochs=scale.train_epochs)

    fixed = {}
    for pooling in ("mean", "max", "sum", "attention"):
        scores = []
        for repeat in range(scale.repeats):
            model = GraphClassifier(
                dataset.num_features, 24, dataset.num_classes,
                ["gcn", "gcn"], pooling, np.random.default_rng(repeat),
            )
            scores.append(train_graph_classifier(model, dataset, config).test_score)
        fixed[pooling] = float(np.mean(scores))

    # Paper protocol in miniature: several search seeds, keep the best
    # candidate by validation, report its test score.
    best = None
    for seed in range(2):
        search = search_graph_classifier(
            dataset,
            GraphSearchConfig(epochs=max(30, scale.search_epochs)),
            seed=seed,
        )
        val_scores, test_scores = [], []
        for repeat in range(scale.repeats):
            model = GraphClassifier(
                dataset.num_features, 24, dataset.num_classes,
                list(search.node_aggregators), search.pooling,
                np.random.default_rng(repeat),
            )
            result = train_graph_classifier(model, dataset, config)
            val_scores.append(result.val_score)
            test_scores.append(result.test_score)
        candidate = (float(np.mean(val_scores)), float(np.mean(test_scores)), search)
        if best is None or candidate[0] > best[0]:
            best = candidate
    return fixed, best[1], best[2]


def test_extension_pooling_search(benchmark):
    scale = bench_scale()
    fixed, searched, search = benchmark.pedantic(
        lambda: run_extension(scale), rounds=1, iterations=1
    )

    lines = [f"  gcn+{name:10s} {score:.3f}" for name, score in fixed.items()]
    lines.append(
        f"  searched ({' -> '.join(search.node_aggregators)}, "
        f"{search.pooling})  {searched:.3f}"
    )
    show("Extension — graph classification pooling search", "\n".join(lines))

    # With a dozen-graph test split, "max over four baselines" is an
    # extreme-value statistic of noise; the robust shape claim is that
    # the searched combination beats the *average* fixed readout (i.e.
    # searching the pooling is at least as good as guessing one).
    average_fixed = float(np.mean(list(fixed.values())))
    assert searched >= average_fixed - 0.05, (
        f"searched {searched:.3f} vs average fixed {average_fixed:.3f}"
    )
