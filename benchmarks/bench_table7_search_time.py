"""Benchmark: regenerate Table VII (search wall-clock per method).

Shape assertion, scaled to the candidate budget: the paper's claim —
one-shot SANE search is orders of magnitude faster than every
trial-and-error method — holds at its 200-candidate budget. The
``full`` preset approximates that budget, so the full ordering claims
are asserted there. ``default`` runs a 6-candidate budget where the
supernet's constant cost is not amortised on the small graphs (a
6-draw random search legitimately finishes first on cora/citeseer/
pubmed — measured in ``benchmarks/baselines/default/``), but on the
largest dataset (ppi, where each trial-and-error candidate pays a
full expensive training run) SANE already wins — so ``default``
asserts the ordering there. ``smoke`` runs seconds-long searches that
are pure constant overhead and asserts structural facts only.
``REPRO_BENCH_WORKERS=N`` fans the 16 cells over the parallel runner.
"""

from repro.experiments import run_table7

from common import bench_scale, bench_workers, show, tracked_run

DATASETS = ("cora", "citeseer", "pubmed", "ppi")


def test_table7_search_time(benchmark):
    scale = bench_scale()
    workers = bench_workers()
    with tracked_run("table7_search_time") as run:
        result = benchmark.pedantic(
            lambda: run_table7(scale, datasets=DATASETS, workers=workers),
            rounds=1,
            iterations=1,
        )
        run.extra["workers"] = workers
        for method, times in result.times.items():
            for dataset, seconds in times.items():
                run.metrics.gauge(f"search_time_s.{method}.{dataset}").set(seconds)
        for dataset in DATASETS:
            run.metrics.gauge(f"speedup.{dataset}").set(result.speedup(dataset))
    show("Table VII — search time (seconds)", result.render())

    # Structural shape (every scale): every method timed on every
    # dataset, all times and speedups positive and finite.
    for method in ("sane", "random", "bayesian", "graphnas"):
        for dataset in DATASETS:
            assert result.times[method][dataset] > 0.0
    speedups = [result.speedup(ds) for ds in DATASETS]
    assert all(s > 0.0 for s in speedups)
    if scale.name == "smoke":
        return

    # Largest-dataset ordering (default and up): on ppi every
    # trial-and-error candidate pays a full training run, so SANE's
    # constant supernet cost amortises even at the 6-candidate budget
    # (measured margin >= 1.9x; asserted with slack).
    sane_ppi = result.times["sane"]["ppi"]
    for method in ("random", "bayesian", "graphnas"):
        assert result.times[method]["ppi"] > sane_ppi, (
            f"ppi: {method}={result.times[method]['ppi']:.1f}s not slower "
            f"than sane={sane_ppi:.1f}s"
        )
    assert result.speedup("ppi") > 1.2
    if scale.name != "full":
        return

    # Aggregate ordering (paper budget only): summed over datasets,
    # each trial-and-error method costs more wall-clock than SANE.
    sane_total = sum(result.times["sane"].values())
    for method in ("random", "bayesian", "graphnas"):
        other_total = sum(result.times[method].values())
        assert other_total > sane_total, (
            f"{method} total {other_total:.1f}s not slower than "
            f"sane total {sane_total:.1f}s"
        )

    # Per-dataset ordering: strictly faster on every dataset, by a
    # substantial factor.
    for dataset in DATASETS:
        sane = result.times["sane"][dataset]
        for method in ("random", "bayesian", "graphnas"):
            other = result.times[method][dataset]
            assert other > sane, (
                f"{dataset}: {method}={other:.1f}s not slower than sane={sane:.1f}s"
            )
    assert min(speedups) > 1.5
    assert max(speedups) > 3.0
