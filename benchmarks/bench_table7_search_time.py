"""Benchmark: regenerate Table VII (search wall-clock per method).

Shape assertion: one-shot SANE search is at least several times faster
than every trial-and-error method on every dataset (the paper reports
two orders of magnitude at its 200-candidate budget; the multiple
scales with the candidate budget, so we assert a conservative factor).
"""

from repro.experiments import run_table7

from common import bench_scale, show, tracked_run

DATASETS = ("cora", "citeseer", "pubmed", "ppi")


def test_table7_search_time(benchmark):
    scale = bench_scale()
    with tracked_run("table7_search_time") as run:
        result = benchmark.pedantic(
            lambda: run_table7(scale, datasets=DATASETS), rounds=1, iterations=1
        )
        for method, times in result.times.items():
            for dataset, seconds in times.items():
                run.metrics.gauge(f"search_time_s.{method}.{dataset}").set(seconds)
        for dataset in DATASETS:
            run.metrics.gauge(f"speedup.{dataset}").set(result.speedup(dataset))
    show("Table VII — search time (seconds)", result.render())

    for dataset in DATASETS:
        sane = result.times["sane"][dataset]
        for method in ("random", "bayesian", "graphnas"):
            other = result.times[method][dataset]
            assert other > sane, (
                f"{dataset}: {method}={other:.1f}s not slower than sane={sane:.1f}s"
            )
    # Aggregate speedup is substantial (paper: ~100x at full budget).
    speedups = [result.speedup(ds) for ds in DATASETS]
    assert min(speedups) > 1.5
    assert max(speedups) > 3.0
