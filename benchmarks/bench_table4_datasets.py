"""Benchmark: regenerate Table IV/V (dataset statistics)."""

from repro.experiments import run_table4

from common import bench_scale, show


def test_table4_dataset_statistics(benchmark):
    scale = bench_scale()
    result = benchmark.pedantic(
        lambda: run_table4(scale), rounds=1, iterations=1
    )
    show("Table IV / V — dataset statistics", result.render())

    names = {row["dataset"] for row in result.node_rows}
    assert names == {"cora", "citeseer", "pubmed", "ppi"}
    # Class counts must match the paper's datasets.
    by_name = {row["dataset"]: row for row in result.node_rows}
    assert by_name["cora"]["C"] == 7
    assert by_name["citeseer"]["C"] == 6
    assert by_name["pubmed"]["C"] == 3
    # The EN view is larger than the ZH view, as in DBP15K.
    assert result.kg_stats["kg2"]["entities"] > result.kg_stats["kg1"]["entities"]
