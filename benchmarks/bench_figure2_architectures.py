"""Benchmark: regenerate Figure 2 (searched architectures per dataset).

Shape assertions: the derived architectures are valid members of the
search space and data-dependent (not all identical across datasets —
the paper's central "data-specific architectures" observation).
"""

import dataclasses

from repro.core.search_space import SearchSpace
from repro.experiments import run_figure2

from common import bench_scale, show

DATASETS = ("cora", "citeseer", "pubmed", "ppi")


def test_figure2_searched_architectures(benchmark):
    # One search seed per dataset: this bench visualises architectures;
    # the multi-seed selection protocol is exercised by bench_table6.
    scale = dataclasses.replace(bench_scale(), search_seeds=1)
    result = benchmark.pedantic(
        lambda: run_figure2(scale, datasets=DATASETS), rounds=1, iterations=1
    )
    show("Figure 2 — searched architectures", result.render())

    space = SearchSpace(num_layers=3)
    for arch in result.architectures.values():
        assert space.contains(arch)

    # Data-specific: at least two distinct architectures across datasets.
    distinct = set(result.architectures.values())
    assert len(distinct) >= 2, "search produced one universal architecture"

    # Every dataset's architecture actually trains.
    for dataset, scores in result.test_scores.items():
        assert all(0.0 <= s <= 1.0 for s in scores)
