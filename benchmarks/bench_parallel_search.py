"""Benchmark: multi-process search orchestrator speedup curve.

Runs the same (dataset, method) sweep at worker counts 1, 2 and 4 on
the shared :class:`repro.parallel.WorkerPool` and records the wall
time and speedup of each point. Two claims are checked:

- **Determinism** (every machine): the sweep digest — a SHA-256 over
  every seed-derived output — is identical at all worker counts. This
  is the bit-identical-merge contract of DESIGN.md section 12 at
  benchmark scale, and it gates unconditionally.
- **Speedup** (multi-core machines only): with four real cores the
  4-worker sweep must beat the sequential baseline by >= 2.5x. On
  boxes with fewer cores the spawn/IPC overhead makes that physically
  unreachable, so the assertion is gated on CPU affinity and the
  recorded curve simply documents what the machine did.

The sweep grid is one dataset x (sane, graphnas): SANE fans out its
search seeds and retrain repeats, GraphNAS fans out rollout batches —
together they exercise every job wave the orchestrator schedules.
"""

import dataclasses
import os

from repro.parallel.sweep import run_sweep

from common import bench_scale, show, tracked_run

WORKERS = (1, 2, 4)
DATASETS = ("cora",)
METHODS = ("sane", "graphnas")
ROLLOUT_BATCH = 2  # fixed across worker counts so digests are comparable


def test_parallel_search(benchmark):
    base = bench_scale()
    # At least two search seeds, otherwise the SANE search wave has a
    # single job and the curve only measures retrain fan-out.
    scale = dataclasses.replace(base, search_seeds=max(2, base.search_seeds))
    with tracked_run("parallel_search") as run:
        results = benchmark.pedantic(
            lambda: {
                w: run_sweep(
                    DATASETS,
                    scale,
                    seed=0,
                    methods=METHODS,
                    workers=w,
                    rollout_batch=ROLLOUT_BATCH,
                    metrics=run.metrics,
                )
                for w in WORKERS
            },
            rounds=1,
            iterations=1,
        )
        baseline = results[WORKERS[0]].wall_s
        for w, result in results.items():
            run.metrics.gauge(f"sweep_time_s.w{w}").set(result.wall_s)
            run.metrics.gauge(f"speedup.w{w}").set(baseline / result.wall_s)
        run.extra["digest"] = results[WORKERS[0]].digest()
        run.extra["cores"] = len(os.sched_getaffinity(0))
    for w, result in results.items():
        show(f"Parallel sweep — workers={w}", result.render())

    # Determinism: worker count must be invisible in the output.
    digests = {w: result.digest() for w, result in results.items()}
    assert len(set(digests.values())) == 1, digests

    # Structure: every point timed, the pool actually ran jobs.
    for result in results.values():
        assert result.wall_s > 0.0
        assert len(result.cells) == len(DATASETS) * len(METHODS)
    snapshot = run.metrics.snapshot()
    assert snapshot["counters"]["parallel.jobs"]["value"] > 0

    # Speedup: only meaningful with real cores to spread across.
    if len(os.sched_getaffinity(0)) >= 4:
        assert baseline / results[4].wall_s >= 2.5
