"""Benchmark: regenerate Table X (failure of MLP-aggregator search).

Shape assertion (Section IV-E4): searching MLP aggregators with Random
or Bayesian lands clearly below SANE on every dataset — universality
of MLPs does not compensate for the lost inductive bias. The ordering
needs a real training budget, so it runs from ``default`` scale
upward; ``smoke`` asserts the structural shape of the table only.
"""

import numpy as np

from repro.experiments import run_table10

from common import bench_scale, show

DATASETS = ("cora", "citeseer", "pubmed", "ppi")


def test_table10_mlp_aggregator_search(benchmark):
    scale = bench_scale()
    result = benchmark.pedantic(
        lambda: run_table10(scale, datasets=DATASETS), rounds=1, iterations=1
    )
    show("Table X — MLP aggregator search vs SANE", result.render())
    table = result.table

    # Structural shape (every scale): every method scored in [0, 1].
    for dataset in DATASETS:
        for method in ("sane", "random (mlp)", "bayesian (mlp)"):
            assert 0.0 <= table.mean(method, dataset) <= 1.0
    if scale.name == "smoke":
        return

    gaps = []
    for dataset in DATASETS:
        sane = table.mean("sane", dataset)
        best_mlp = max(
            table.mean("random (mlp)", dataset),
            table.mean("bayesian (mlp)", dataset),
        )
        gaps.append(sane - best_mlp)
    # SANE wins on average and on most datasets individually.
    assert np.mean(gaps) > 0, f"mean gap {np.mean(gaps):.4f}"
    assert sum(g > -0.02 for g in gaps) >= len(DATASETS) - 1
