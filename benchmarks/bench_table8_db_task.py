"""Benchmark: regenerate Table VIII (DB task — entity alignment).

Shape assertions: GNN-based alignment beats the JAPE-like embedding
baseline, and SANE's searched aggregator combination matches or beats
GCN-Align (paper: 42.10 vs 41.25 Hits@1 ZH→EN). The ordering claims
need a real training budget, so they run from ``default`` scale
upward; ``smoke`` asserts the structural shape (monotone Hits@k,
valid searched ops) only.
"""

from repro.experiments import run_table8

from common import bench_scale, show


def test_table8_entity_alignment(benchmark):
    scale = bench_scale()
    result = benchmark.pedantic(lambda: run_table8(scale), rounds=1, iterations=1)
    show("Table VIII — DB task (Hits@k)", result.render())

    hits = result.hits
    # Structural shape (every scale): Hits@k monotone in k, and the
    # searched architecture is a combination of node aggregators.
    for direction in ("zh->en", "en->zh"):
        for method in hits:
            h = hits[method][direction]
            assert h[1] <= h[10] <= h[50]
    assert len(result.searched_ops) == 2
    if scale.name == "smoke":
        return

    for direction in ("zh->en", "en->zh"):
        # GNN propagation beats pure embedding matching at Hits@1.
        assert hits["gcn-align"][direction][1] >= hits["jape"][direction][1]
        # SANE is competitive with GCN-Align (small tolerance at the
        # reduced search budget).
        assert hits["sane"][direction][1] >= hits["gcn-align"][direction][1] - 0.05
