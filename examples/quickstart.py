"""Quickstart: search a GNN architecture for a citation graph.

Runs the full SANE pipeline on the Cora analogue — train the supernet
with the differentiable bi-level search (Algorithm 1 of the paper),
derive the top-1 architecture, retrain it from scratch — and compares
the result against a hand-designed GCN baseline.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import SaneSearcher, SearchConfig, SearchSpace, retrain
from repro.experiments import render_architecture
from repro.gnn import build_baseline
from repro.graph import load_dataset
from repro.train import TrainConfig, fit


def main():
    graph = load_dataset("cora", seed=0)
    print(f"Dataset: {graph} "
          f"({graph.num_classes} classes, splits "
          f"{graph.train_mask.sum()}/{graph.val_mask.sum()}/{graph.test_mask.sum()})")

    # 1. Differentiable architecture search over the full Table I space.
    space = SearchSpace(num_layers=3)
    print(f"Search space: {space}")
    searcher = SaneSearcher(space, graph, SearchConfig(epochs=30), seed=0)
    result = searcher.search()
    print(f"\nSearch finished in {result.search_time:.1f}s")
    print(render_architecture(result.architecture, "searched"))

    # 2. Retrain the derived architecture from scratch.
    train_config = TrainConfig(epochs=200, patience=30)
    sane = retrain(
        result.architecture, graph, seed=0, hidden_dim=32, train_config=train_config
    )
    print(f"\nSANE retrained:  val={sane.val_score:.4f}  test={sane.test_score:.4f}")

    # 3. Compare with a human-designed GCN.
    gcn = build_baseline(
        "gcn", graph.num_features, graph.num_classes,
        np.random.default_rng(0), hidden_dim=32,
    )
    baseline = fit(gcn, graph, train_config)
    print(f"GCN baseline:    val={baseline.val_score:.4f}  test={baseline.test_score:.4f}")
    print(f"\nSANE - GCN test gap: {sane.test_score - baseline.test_score:+.4f}")


if __name__ == "__main__":
    main()
