"""DB task: cross-lingual entity alignment (paper Section IV-D).

Aligns entities between two synthetic language views of one knowledge
base. Compares a JAPE-like joint-embedding baseline, GCN-Align, and a
SANE-searched combination of node aggregators (2-layer encoder, no
layer aggregator — exactly the paper's DB-task configuration).

Run:  python examples/entity_alignment.py
"""

import numpy as np

from repro.kg import (
    AlignConfig,
    AlignSearchConfig,
    EmbeddingAligner,
    GNNAligner,
    generate_alignment_dataset,
    search_alignment,
    train_aligner,
)


def report(name, hits):
    zh = hits["zh->en"]
    en = hits["en->zh"]
    print(
        f"  {name:10s} ZH->EN @1/@10/@50 = "
        f"{100 * zh[1]:5.2f} / {100 * zh[10]:5.2f} / {100 * zh[50]:5.2f}   "
        f"EN->ZH = {100 * en[1]:5.2f} / {100 * en[10]:5.2f} / {100 * en[50]:5.2f}"
    )


def main():
    dataset = generate_alignment_dataset(seed=0)
    stats = dataset.statistics()
    print(f"Bilingual KG pair: {stats['kg1']} / {stats['kg2']}")
    print(f"Alignment links (train/val/test): {stats['links']}")

    config = AlignConfig()
    dim = config.embedding_dim

    print("\nHits@k (percent):")
    jape = EmbeddingAligner(dataset, dim, np.random.default_rng(0))
    report("JAPE-like", train_aligner(jape, dataset, config, seed=0).test_hits)

    gcn_align = GNNAligner(dataset, ["gcn", "gcn"], dim, np.random.default_rng(0))
    report("GCN-Align", train_aligner(gcn_align, dataset, config, seed=0).test_hits)

    # SANE: following the paper's protocol, run the search with several
    # seeds, retrain each derived encoder, and keep the best by
    # validation Hits@1 (with a lightly tuned margin, as the paper
    # tunes hyper-parameters with hyperopt).
    tuned = config.replace(margin=0.5, num_negatives=12)
    best = None
    for seed in range(3):
        searched = search_alignment(dataset, AlignSearchConfig(epochs=40), seed=seed)
        model = GNNAligner(
            dataset, list(searched.node_aggregators), dim, np.random.default_rng(0)
        )
        result = train_aligner(model, dataset, tuned, seed=0)
        print(f"  search seed {seed}: {' -> '.join(searched.node_aggregators)} "
              f"(val Hits@1 = {result.val_hits1:.3f})")
        if best is None or result.val_hits1 > best[0]:
            best = (result.val_hits1, searched.node_aggregators, result)

    print(f"\nSelected encoder: {' -> '.join(best[1])}")
    report("SANE", best[2].test_hits)


if __name__ == "__main__":
    main()
