"""Extension: whole-graph classification with searchable pooling.

The SANE paper's conclusion proposes extending the search to graph
classification, "where different graph pooling methods can be
searched". This example runs that extension on a synthetic structural
benchmark (ring / star / blocks / random graphs): fixed baselines with
each pooling readout, then a supernet search over node aggregators AND
the pooling op.

Run:  python examples/graph_classification.py
"""

import numpy as np

from repro.graphclf import (
    GraphClassifier,
    GraphClfConfig,
    GraphSearchConfig,
    generate_graph_dataset,
    search_graph_classifier,
    train_graph_classifier,
)


def main():
    dataset = generate_graph_dataset(seed=0, graphs_per_class=14)
    print(f"Dataset: {dataset} (classes: ring / star / blocks / random)")
    config = GraphClfConfig(epochs=150)

    print("\nFixed GCN encoder, each pooling readout:")
    for pooling in ("mean", "max", "sum", "attention"):
        model = GraphClassifier(
            dataset.num_features, 24, dataset.num_classes,
            ["gcn", "gcn"], pooling, np.random.default_rng(0),
        )
        result = train_graph_classifier(model, dataset, config)
        print(f"  pool={pooling:10s} test acc = {result.test_score:.3f}")

    search = search_graph_classifier(dataset, GraphSearchConfig(epochs=60), seed=0)
    print(
        f"\nSearched: encoder={' -> '.join(search.node_aggregators)} "
        f"pool={search.pooling} ({search.search_time:.1f}s)"
    )
    model = GraphClassifier(
        dataset.num_features, 24, dataset.num_classes,
        list(search.node_aggregators), search.pooling, np.random.default_rng(0),
    )
    result = train_graph_classifier(model, dataset, config)
    print(f"Searched model test acc = {result.test_score:.3f}")


if __name__ == "__main__":
    main()
