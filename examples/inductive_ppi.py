"""Inductive task: search an architecture that generalises to unseen graphs.

The PPI analogue trains on a set of community graphs and evaluates on
completely unseen graphs (micro-F1, multi-label). This mirrors the
paper's Section IV-B2, where the best architecture differs from the
transductive winners — the "data-specific architectures" motivation.

Run:  python examples/inductive_ppi.py
"""

import numpy as np

from repro.core import SaneSearcher, SearchConfig, SearchSpace, retrain
from repro.experiments import render_architecture
from repro.gnn import build_baseline
from repro.graph import load_dataset
from repro.train import TrainConfig, fit


def main():
    data = load_dataset("ppi", seed=0)
    print(f"Dataset: {data}")
    train_config = TrainConfig(epochs=200, patience=40, lr=1e-2)

    # Human-designed baselines (paper Table XIII settings: ELU, LSTM-JK).
    print("\nHuman-designed baselines:")
    for name in ("gcn", "sage", "gat", "gat-jk"):
        model = build_baseline(
            name, data.num_features, data.num_classes,
            np.random.default_rng(0), hidden_dim=32, dropout=0.1,
            activation="elu", jk_mode="lstm",
        )
        result = fit(model, data, train_config)
        print(f"  {name:8s} test micro-F1 = {result.test_score:.4f}")

    # SANE search on the inductive task.
    space = SearchSpace(num_layers=3)
    searcher = SaneSearcher(
        space, data, SearchConfig(epochs=25, dropout=0.2), seed=0
    )
    search = searcher.search()
    print(f"\nSearch finished in {search.search_time:.1f}s")
    print(render_architecture(search.architecture, "searched"))

    sane = retrain(
        search.architecture, data, seed=0,
        hidden_dim=32, dropout=0.1, activation="elu",
        train_config=train_config,
    )
    print(f"\nSANE test micro-F1 = {sane.test_score:.4f}")


if __name__ == "__main__":
    main()
