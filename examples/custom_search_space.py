"""Customising the search space and comparing search strategies.

Shows the library's extension points: restrict the operation sets,
inspect the space size, and run three searchers over the *same* space —
Random, Bayesian (TPE), and differentiable SANE — reproducing in
miniature the method comparison of the paper's Table VI / Figure 3.

Run:  python examples/custom_search_space.py
"""

import numpy as np

from repro.core import SaneSearcher, SearchConfig, SearchSpace, retrain
from repro.graph import load_dataset
from repro.nas import ArchitectureEvaluator, random_search, sane_decision_space, tpe_search
from repro.train import TrainConfig


def main():
    graph = load_dataset("citeseer", seed=0)
    train_config = TrainConfig(epochs=150, patience=25)

    # A custom, attention-only space with two layers.
    space = SearchSpace(
        num_layers=2,
        node_ops=("gat", "gat-sym", "gat-cos", "gat-linear", "gcn", "sage-mean"),
        layer_ops=("concat", "max"),
    )
    print(f"Custom space: {space}")

    # Trial-and-error searchers share one evaluation budget.
    budget = 8
    results = {}
    dspace = sane_decision_space(space)
    for name, searcher in (("random", random_search), ("bayesian", tpe_search)):
        evaluator = ArchitectureEvaluator(
            dspace, graph, train_config=train_config, hidden_dim=32, seed=0
        )
        outcome = searcher(evaluator, budget, seed=0)
        arch = outcome.decode(dspace)
        results[name] = (arch, outcome.best.test_score, outcome.search_time)

    # Differentiable search over the same space.
    sane = SaneSearcher(space, graph, SearchConfig(epochs=25), seed=0)
    search = sane.search()
    trained = retrain(
        search.architecture, graph, seed=0, hidden_dim=32, train_config=train_config
    )
    results["sane"] = (search.architecture, trained.test_score, search.search_time)

    print(f"\n{'method':10s} {'test':>7s} {'time(s)':>8s}  architecture")
    for name, (arch, score, seconds) in results.items():
        print(f"{name:10s} {score:7.4f} {seconds:8.1f}  {arch}")


if __name__ == "__main__":
    main()
