"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scale_choices(self):
        args = build_parser().parse_args(["--scale", "smoke", "stats"])
        assert args.scale == "smoke"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--scale", "huge", "stats"])

    def test_search_arguments(self):
        args = build_parser().parse_args(
            ["--scale", "smoke", "search", "cora", "--layers", "2"]
        )
        assert args.dataset == "cora"
        assert args.layers == 2

    def test_table_numbers_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "99"])


class TestCommands:
    def test_stats(self, capsys):
        assert main(["--scale", "smoke", "stats"]) == 0
        out = capsys.readouterr().out
        assert "Table IV" in out
        assert "cora" in out

    def test_baseline(self, capsys):
        assert main(["--scale", "smoke", "baseline", "gcn", "cora"]) == 0
        out = capsys.readouterr().out
        assert "gcn on cora" in out

    def test_search(self, capsys):
        assert main(["--scale", "smoke", "search", "cora", "--layers", "2"]) == 0
        out = capsys.readouterr().out
        assert "architecture:" in out
        assert "test score:" in out

    def test_table4_command(self, capsys):
        assert main(["--scale", "smoke", "table", "4"]) == 0
        assert "Table IV" in capsys.readouterr().out

    def test_table6_restricted_datasets(self, capsys):
        code = main(
            ["--scale", "smoke", "table", "6", "--datasets", "cora"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cora" in out
        assert "pubmed" not in out

    def test_figure2_command(self, capsys):
        code = main(["--scale", "smoke", "figure", "2", "--datasets", "cora"])
        assert code == 0
        assert "Figure 2" in capsys.readouterr().out


class TestProfileCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["profile", "search"])
        assert args.command == "profile"
        assert args.target == "search"
        assert args.dataset == "cora"
        assert args.trace is None
        assert args.top == 10
        assert not args.no_autograd

    def test_scale_after_subcommand_does_not_clobber(self):
        args = build_parser().parse_args(["--scale", "smoke", "profile", "search"])
        assert args.scale == "smoke"
        args = build_parser().parse_args(["profile", "search", "--scale", "smoke"])
        assert args.scale == "smoke"

    def test_profile_search_writes_trace_and_report(self, tmp_path, capsys):
        from repro.obs import read_trace

        trace = tmp_path / "trace.jsonl"
        code = main(
            ["--scale", "smoke", "profile", "search", "--dataset", "cora",
             "--layers", "2", "--trace", str(trace), "--top", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "architecture:" in out
        assert "== Phase breakdown (spans) ==" in out
        assert "autograd ops (by self time)" in out
        assert str(trace) in out

        records = read_trace(trace)
        assert records[0]["type"] == "trace-meta"
        assert any(r["type"] == "span" for r in records)
        assert any(r["type"] == "op_stats" for r in records)

    def test_profile_baseline_without_autograd(self, tmp_path, capsys):
        from repro.obs import read_trace

        trace = tmp_path / "trace.jsonl"
        code = main(
            ["--scale", "smoke", "profile", "baseline", "--name", "gcn",
             "--dataset", "cora", "--trace", str(trace), "--no-autograd"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "gcn on cora" in out
        assert "== Phase breakdown (spans) ==" in out
        op_stats = [r for r in read_trace(trace) if r["type"] == "op_stats"]
        assert op_stats[0]["data"] == []


class TestLintCommand:
    def test_parser_accepts_paths_and_format(self):
        args = build_parser().parse_args(["lint", "src/repro", "--format", "json"])
        assert args.command == "lint"
        assert args.paths == ["src/repro"]
        assert args.format == "json"

    def test_default_target_is_the_package_and_it_is_clean(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_json_format_on_clean_tree(self, capsys):
        import json

        assert main(["lint", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 0
        assert payload["findings"] == []

    def test_error_findings_set_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import torch\n")
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "forbidden-import" in out

    def test_warnings_do_not_fail(self, tmp_path, capsys):
        warn_only = tmp_path / "loop.py"
        warn_only.write_text(
            "def fit(model, batches):\n"
            "    for batch in batches:\n"
            "        model(batch).backward()\n"
        )
        assert main(["lint", str(warn_only)]) == 0
        assert "missing-zero-grad" in capsys.readouterr().out
