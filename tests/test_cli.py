"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scale_choices(self):
        args = build_parser().parse_args(["--scale", "smoke", "stats"])
        assert args.scale == "smoke"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--scale", "huge", "stats"])

    def test_search_arguments(self):
        args = build_parser().parse_args(
            ["--scale", "smoke", "search", "cora", "--layers", "2"]
        )
        assert args.dataset == "cora"
        assert args.layers == 2

    def test_table_numbers_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "99"])


class TestCommands:
    def test_stats(self, capsys):
        assert main(["--scale", "smoke", "stats"]) == 0
        out = capsys.readouterr().out
        assert "Table IV" in out
        assert "cora" in out

    def test_baseline(self, capsys):
        assert main(["--scale", "smoke", "baseline", "gcn", "cora"]) == 0
        out = capsys.readouterr().out
        assert "gcn on cora" in out

    def test_search(self, capsys):
        assert main(["--scale", "smoke", "search", "cora", "--layers", "2"]) == 0
        out = capsys.readouterr().out
        assert "architecture:" in out
        assert "test score:" in out

    def test_table4_command(self, capsys):
        assert main(["--scale", "smoke", "table", "4"]) == 0
        assert "Table IV" in capsys.readouterr().out

    def test_table6_restricted_datasets(self, capsys):
        code = main(
            ["--scale", "smoke", "table", "6", "--datasets", "cora"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cora" in out
        assert "pubmed" not in out

    def test_figure2_command(self, capsys):
        code = main(["--scale", "smoke", "figure", "2", "--datasets", "cora"])
        assert code == 0
        assert "Figure 2" in capsys.readouterr().out


class TestLintCommand:
    def test_parser_accepts_paths_and_format(self):
        args = build_parser().parse_args(["lint", "src/repro", "--format", "json"])
        assert args.command == "lint"
        assert args.paths == ["src/repro"]
        assert args.format == "json"

    def test_default_target_is_the_package_and_it_is_clean(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_json_format_on_clean_tree(self, capsys):
        import json

        assert main(["lint", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 0
        assert payload["findings"] == []

    def test_error_findings_set_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import torch\n")
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "forbidden-import" in out

    def test_warnings_do_not_fail(self, tmp_path, capsys):
        warn_only = tmp_path / "loop.py"
        warn_only.write_text(
            "def fit(model, batches):\n"
            "    for batch in batches:\n"
            "        model(batch).backward()\n"
        )
        assert main(["lint", str(warn_only)]) == 0
        assert "missing-zero-grad" in capsys.readouterr().out
